//! Design-space sweep: how do core counts, the big/small split and the
//! small-core frequency affect the reliability/performance trade-off for a
//! fixed workload under reliability-aware scheduling?
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use relsim::evaluate::{evaluate, DEFAULT_IFR};
use relsim::experiments::{Context, Scale};
use relsim::{AppSpec, Objective, SamplingParams, SamplingScheduler, System, SystemConfig};

fn main() {
    let scale = Scale::quick();
    println!("characterizing benchmarks...");
    let ctx = Context::build(scale);

    let benchmarks = ["milc", "zeusmp", "gobmk", "perlbench"];
    let specs: Vec<AppSpec> = benchmarks
        .iter()
        .enumerate()
        .map(|(i, n)| AppSpec::spec(n, 10 + i as u64))
        .collect();

    println!(
        "\nsweeping HCMP configurations for {} under reliability-aware scheduling:\n",
        benchmarks.join("+")
    );
    println!(
        "{:<22} {:>12} {:>8} {:>11}",
        "configuration", "SSER", "STP", "migrations"
    );

    let mut points = Vec::new();
    for (label, cfg) in [
        ("1B3S", SystemConfig::hcmp(1, 3)),
        ("2B2S", SystemConfig::hcmp(2, 2)),
        ("3B1S", SystemConfig::hcmp(3, 1)),
        ("2B2S small@1.33GHz", SystemConfig::hcmp_slow_small(2, 2)),
    ] {
        let mut cfg = cfg;
        cfg.quantum_ticks = scale.quantum_ticks;
        cfg.migration_ticks = scale.quantum_ticks / 50;
        let mut sched = SamplingScheduler::new(
            Objective::Sser,
            cfg.core_kinds(),
            cfg.quantum_ticks,
            SamplingParams::default(),
        );
        let mut system = System::new(cfg, &specs);
        let result = system.run(&mut sched, scale.run_ticks);
        let eval = evaluate(&result, &ctx.refs, DEFAULT_IFR);
        println!(
            "{:<22} {:>12.4e} {:>8.3} {:>11}",
            label, eval.sser, eval.stp, result.migrations
        );
        points.push((label, eval.sser, eval.stp));
    }

    // Report the Pareto-efficient configurations (min SSER, max STP).
    let pareto: Vec<&str> = points
        .iter()
        .filter(|(_, s, t)| {
            !points
                .iter()
                .any(|(_, s2, t2)| s2 < s && t2 >= t || s2 <= s && t2 > t)
        })
        .map(|(l, _, _)| *l)
        .collect();
    println!("\nPareto-efficient configurations: {}", pareto.join(", "));
}
