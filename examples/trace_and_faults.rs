//! Record/replay traces and validate ACE analysis with fault injection.
//!
//! Demonstrates two library features beyond the paper's core experiments:
//! the compact binary trace format (generate once, replay anywhere) and
//! the Monte Carlo fault-injection campaign that cross-checks the ACE
//! counters.
//!
//! ```text
//! cargo run --release --example trace_and_faults
//! ```

use relsim_ace::fault_injection::validate_counters;
use relsim_cpu::{Core, CoreConfig, NullObserver};
use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
use relsim_trace::{record_from_source, spec_profile, RecordedTrace, TraceGenerator};

fn main() {
    // 1. Record 200k instructions of milc to an in-memory trace file.
    let profile = spec_profile("milc").expect("catalog benchmark");
    let mut live = TraceGenerator::new(profile.clone(), 7, 0);
    let mut buf = Vec::new();
    let n = record_from_source(&mut live, 200_000, &mut buf).expect("record");
    println!(
        "recorded {n} milc instructions into {} bytes ({} B/instr)",
        buf.len(),
        buf.len() as u64 / n
    );

    // 2. Replay the trace through the big core and compare against live
    //    generation — bit-identical behaviour.
    let run = |mut src: Box<dyn relsim_trace::InstrSource>| {
        let mut core = Core::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = NullObserver;
        for t in 0..150_000 {
            core.tick(t, src.as_mut(), &mut shared, &mut obs);
        }
        (core.committed(), core.cycles())
    };
    let replayed = RecordedTrace::read(&buf[..]).expect("valid trace");
    let from_replay = run(Box::new(replayed));
    let from_live = run(Box::new(TraceGenerator::new(profile.clone(), 7, 0)));
    println!(
        "replayed run:  {} instructions in {} cycles",
        from_replay.0, from_replay.1
    );
    println!(
        "live run:      {} instructions in {} cycles",
        from_live.0, from_live.1
    );
    assert_eq!(from_replay, from_live, "replay must match live generation");

    // 3. Fault-injection: cross-check the ACE counters.
    println!("\ninjecting 200,000 random single-bit faults against the ACE timeline...");
    for cfg in [CoreConfig::big(), CoreConfig::small()] {
        let kind = cfg.kind;
        let (campaign, counter_avf) = validate_counters(&cfg, &profile, 120_000, 200_000, 3);
        println!(
            "{kind:>6} core: counters say AVF {counter_avf:.4}; {} faults hit ACE state \
             -> AVF {:.4} ± {:.4} ({})",
            campaign.ace_hits,
            campaign.avf_estimate,
            campaign.confidence_95,
            if campaign.consistent_with(counter_avf, 0.005) {
                "consistent"
            } else {
                "INCONSISTENT"
            }
        );
    }
}
