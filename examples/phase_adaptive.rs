//! The Figure 4 scenario: calculix (which has a program phase change) and
//! povray (near-constant behaviour) co-run on a 1-big + 1-small HCMP under
//! the reliability-aware scheduler. Watch the scheduler react to the phase
//! change by migrating the applications.
//!
//! ```text
//! cargo run --release --example phase_adaptive
//! ```

use relsim::experiments::{abc_timeline, Context, Scale};

fn main() {
    let mut scale = Scale::quick();
    scale.run_ticks = 600_000; // long enough for calculix to change phases
    println!("characterizing benchmarks...");
    let ctx = Context::build(scale);

    let t = abc_timeline(&ctx, "calculix", "povray");

    println!("\nisolated big-core ABC per quantum (first 20 quanta):");
    println!("{:>8} {:>12} {:>12}", "quantum", "calculix", "povray");
    for i in 0..t.isolated[0].1.len().min(20) {
        println!(
            "{:>8} {:>12.0} {:>12.0}",
            i, t.isolated[0].1[i], t.isolated[1].1[i]
        );
    }

    println!("\nco-running on 1B1S under reliability-aware scheduling:");
    println!("(ABC rate per tick; `B` marks the application on the big core)");
    println!("{:>10} {:>14} {:>14}", "tick", "calculix", "povray");
    for i in (0..t.corun[0].1.len()).step_by(4) {
        let (tick, a0, b0) = t.corun[0].1[i];
        let (_, a1, b1) = t.corun[1].1[i];
        println!(
            "{:>10} {:>12.0} {} {:>12.0} {}",
            tick,
            a0,
            if b0 { "B" } else { " " },
            a1,
            if b1 { "B" } else { " " },
        );
    }

    let switches = t.corun[0].1.windows(2).filter(|w| w[0].2 != w[1].2).count();
    println!(
        "\ncalculix switched core types {switches} times: the scheduler tracks \
         its ABC through phase changes\nand puts whichever application is \
         currently more vulnerable on the small core."
    );
}
