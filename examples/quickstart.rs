//! Quickstart: build a 2-big + 2-small heterogeneous multicore, run the
//! same four-program workload under the random, performance-optimized and
//! reliability-optimized schedulers, and compare system soft error rate
//! (SSER) and system throughput (STP).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use relsim::experiments::{hcmp_config, run_mix, Context, Scale, SchedKind};
use relsim::mixes::Mix;
use relsim::SamplingParams;

fn main() {
    // Characterize every benchmark in isolation once (reference table for
    // the SSER/STP metrics). `Scale::quick()` keeps this example fast.
    let scale = Scale::quick();
    println!("building isolated reference table (29 benchmarks x 2 core types)...");
    let ctx = Context::build(scale);

    // A reliability-divergent workload: two high-AVF memory streamers plus
    // two low-AVF branchy codes.
    let mix = Mix {
        category: "HHLL".into(),
        benchmarks: vec![
            "milc".into(),
            "lbm".into(),
            "gobmk".into(),
            "perlbench".into(),
        ],
    };
    let cfg = hcmp_config(&ctx, 2, 2);

    println!(
        "\nrunning {} on a 2B2S HCMP for {} ticks under three schedulers:\n",
        mix.benchmarks.join("+"),
        scale.run_ticks
    );
    println!(
        "{:<24} {:>12} {:>8} {:>28}",
        "scheduler", "SSER", "STP", "apps mostly on big cores"
    );
    for sched in SchedKind::ALL {
        let (eval, result) = run_mix(&ctx, &cfg, &mix, sched, SamplingParams::default());
        let mut on_big: Vec<&str> = result
            .apps
            .iter()
            .filter(|a| a.ticks_on_big * 2 > result.duration)
            .map(|a| a.name.as_str())
            .collect();
        on_big.sort();
        println!(
            "{:<24} {:>12.4e} {:>8.3} {:>28}",
            sched.name(),
            eval.sser,
            eval.stp,
            on_big.join("+")
        );
    }
    println!(
        "\nThe reliability-optimized scheduler keeps the vulnerable memory \
         streamers (milc, lbm)\noff the big out-of-order cores, trading a \
         little throughput for a much lower SSER."
    );
}
