//! The hardware ACE counter architecture (Section 4.2): compare the
//! quantized hardware counters against perfect accounting on a real
//! instruction stream, and print the hardware cost table.
//!
//! ```text
//! cargo run --release --example counter_hardware
//! ```

use relsim_ace::hw_cost::{baseline_big, in_order_small, rob_only_big};
use relsim_ace::{AceCounter, CounterKind};
use relsim_cpu::{Core, CoreConfig, RetireObserver};
use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
use relsim_trace::{spec_profile, TraceGenerator};

/// Feed one core three counters at once.
struct Tee<'a>(&'a mut [AceCounter]);

impl RetireObserver for Tee<'_> {
    fn on_retire(&mut self, ev: &relsim_cpu::RetireEvent) {
        for c in self.0.iter_mut() {
            c.on_retire(ev);
        }
    }
}

fn main() {
    println!("# Hardware cost (Section 4.2)");
    for (label, cost, paper) in [
        ("baseline big core", baseline_big(128, 4), 904),
        ("ROB-only big core", rob_only_big(128, 4), 296),
        ("in-order small core", in_order_small(5, 2), 67),
    ] {
        println!(
            "  {label:<20}: {:>5} bits = {:>3} bytes (paper: {paper})",
            cost.total_bits(),
            cost.total_bytes()
        );
    }

    println!("\n# Counter accuracy on a real instruction stream (big core)");
    println!(
        "{:<12} {:>14} {:>14} {:>14} {:>9} {:>9}",
        "benchmark", "perfect ABC", "baseline HW", "ROB-only HW", "HW err", "ROBcover"
    );
    let ticks = 300_000u64;
    for name in ["milc", "hmmer", "gobmk", "mcf", "povray"] {
        let cfg = CoreConfig::big();
        let mut core = Core::new(cfg.clone(), PrivateCacheConfig::default());
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut src = TraceGenerator::new(spec_profile(name).unwrap(), 1, 0);
        let mut counters = [
            AceCounter::new(&cfg, CounterKind::Perfect),
            AceCounter::new(&cfg, CounterKind::HwBaseline),
            AceCounter::new(&cfg, CounterKind::HwRobOnly),
        ];
        for t in 0..ticks {
            let mut tee = Tee(&mut counters);
            core.tick(t, &mut src, &mut shared, &mut tee);
        }
        let perfect = counters[0].abc(ticks);
        let hw = counters[1].abc(ticks);
        let rob = counters[2].abc(ticks);
        println!(
            "{:<12} {:>14.3e} {:>14.3e} {:>14.3e} {:>8.2}% {:>8.2}%",
            name,
            perfect,
            hw,
            rob,
            (hw / perfect - 1.0) * 100.0,
            rob / perfect * 100.0
        );
    }
    println!(
        "\nThe baseline hardware tracks perfect accounting closely despite its \
         wrapped 12-bit\ntimestamps; the ROB-only variant captures a stable share \
         of core ABC, which is why\nrelative scheduling decisions survive the \
         3x cheaper implementation (Figure 10)."
    );
}
