//! Recursive-descent JSON parser.

use crate::Error;
use serde::{Number, Value};

const MAX_DEPTH: usize = 128;

pub(crate) fn parse(bytes: &[u8]) -> Result<Value, Error> {
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::at("trailing data after JSON value", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::at("JSON nesting too deep", self.pos));
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Value::Null),
            Some(b't') => self.keyword("true", Value::Bool(true)),
            Some(b'f') => self.keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::at(
                format!("unexpected byte `{}`", c as char),
                self.pos,
            )),
            None => Err(Error::at("unexpected end of input", self.pos)),
        }
    }

    fn keyword(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(Error::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                // Surrogate pair: expect a low surrogate.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(Error::at("invalid low surrogate", self.pos));
                                }
                                let joined = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(joined)
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(Error::at("invalid unicode escape", self.pos)),
                            }
                            continue;
                        }
                        _ => return Err(Error::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is required UTF-8).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::at("invalid UTF-8 in string", self.pos))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
                None => return Err(Error::at("unterminated string", self.pos)),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::at("truncated unicode escape", self.pos));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::at("invalid unicode escape", self.pos))?;
        let cp = u32::from_str_radix(s, 16)
            .map_err(|_| Error::at("invalid unicode escape", self.pos))?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        let n = if is_float {
            Number::Float(
                text.parse::<f64>()
                    .map_err(|_| Error::at(format!("invalid number `{text}`"), start))?,
            )
        } else if let Some(digits) = text.strip_prefix('-') {
            match text.parse::<i64>() {
                Ok(v) => Number::NegInt(v),
                Err(_) => Number::Float(
                    digits
                        .parse::<f64>()
                        .map(|v| -v)
                        .map_err(|_| Error::at(format!("invalid number `{text}`"), start))?,
                ),
            }
        } else {
            match text.parse::<u64>() {
                Ok(v) => Number::PosInt(v),
                Err(_) => Number::Float(
                    text.parse::<f64>()
                        .map_err(|_| Error::at(format!("invalid number `{text}`"), start))?,
                ),
            }
        };
        Ok(Value::Number(n))
    }
}
