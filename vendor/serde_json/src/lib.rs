//! Offline stand-in for the `serde_json` crate.
//!
//! Provides the subset of the public API this workspace uses — `to_vec`,
//! `to_vec_pretty`, `to_string`, `to_string_pretty`, `from_slice`,
//! `from_str`, `to_value`, `from_value`, and the `Value` type — on top of
//! the vendored `serde` shim's value model.
//!
//! Output is deterministic: object keys keep insertion (declaration) order
//! and floats use Rust's shortest round-trip formatting, so identical data
//! always serializes to identical bytes. This property is load-bearing for
//! the observability layer's byte-identical event logs.

mod read;
mod write;

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::fmt;

pub use serde::{Number, Value};

/// JSON serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    /// Byte offset of a parse error, when known.
    offset: Option<usize>,
}

impl Error {
    pub(crate) fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }

    pub(crate) fn at(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.msg),
            None => f.write_str(&self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serialize to a compact JSON byte vector.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string(value)?.into_bytes())
}

/// Serialize to a pretty-printed (2-space indent) JSON byte vector.
pub fn to_vec_pretty<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    Ok(to_string_pretty(value)?.into_bytes())
}

/// Serialize to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::compact(&value.to_value(), &mut out);
    Ok(out)
}

/// Serialize to a pretty-printed JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write::pretty(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Convert any serializable value into a generic [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Reconstruct a typed value from a generic [`Value`] tree.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::from_value(value).map_err(Error::from)
}

/// Parse a typed value from JSON bytes.
pub fn from_slice<T: DeserializeOwned>(bytes: &[u8]) -> Result<T, Error> {
    let value = read::parse(bytes)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parse a typed value from a JSON string.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
    from_slice(s.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for json in ["null", "true", "false", "0", "-17", "3.5", "\"hi\\n\""] {
            let v: Value = from_str(json).unwrap();
            assert_eq!(to_string(&v).unwrap(), json);
        }
    }

    #[test]
    fn round_trips_nested() {
        let json = r#"{"a":[1,2,{"b":null}],"c":"x","d":-2.5}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn pretty_matches_expected_layout() {
        let v: Value = from_str(r#"{"a":[1,2],"b":{}}"#).unwrap();
        assert_eq!(
            to_string_pretty(&v).unwrap(),
            "{\n  \"a\": [\n    1,\n    2\n  ],\n  \"b\": {}\n}"
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "tab\t quote\" slash\\ nl\n unicode \u{1F600} ctl\u{0001}";
        let encoded = to_string(&String::from(original)).unwrap();
        let back: String = from_str(&encoded).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{\"a\":}").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("tru").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn numbers_keep_integer_identity() {
        let v: Value = from_str("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v: Value = from_str("-9223372036854775808").unwrap();
        assert_eq!(v.as_i64(), Some(i64::MIN));
        let v: Value = from_str("1e3").unwrap();
        assert_eq!(v.as_f64(), Some(1000.0));
    }
}
