//! JSON output, compact and pretty.

use serde::{Number, Value};
use std::fmt::Write as _;

pub(crate) fn compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => number(n, out),
        Value::String(s) => string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                compact(item, out);
            }
            out.push(']');
        }
        Value::Object(pairs) => {
            out.push('{');
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                string(k, out);
                out.push(':');
                compact(item, out);
            }
            out.push('}');
        }
    }
}

pub(crate) fn pretty(v: &Value, indent: usize, out: &mut String) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push(']');
        }
        Value::Object(pairs) if !pairs.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                pad(indent + 1, out);
                string(k, out);
                out.push_str(": ");
                pretty(item, indent + 1, out);
            }
            out.push('\n');
            pad(indent, out);
            out.push('}');
        }
        other => compact(other, out),
    }
}

fn pad(indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn number(n: &Number, out: &mut String) {
    match n {
        Number::PosInt(v) => {
            let _ = write!(out, "{v}");
        }
        Number::NegInt(v) => {
            let _ = write!(out, "{v}");
        }
        // Rust's float Display is the shortest round-trip decimal, which
        // keeps serialization deterministic. JSON has no NaN/Infinity, so
        // non-finite values degrade to null.
        Number::Float(v) if v.is_finite() => {
            let _ = write!(out, "{v}");
        }
        Number::Float(_) => out.push_str("null"),
    }
}

fn string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{0008}' => out.push_str("\\b"),
            '\u{000C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
