//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro (with optional `#![proptest_config(...)]`), range and
//! tuple strategies, `prop_map`, `collection::vec`, `sample::select`,
//! `bool::ANY`, and the `prop_assert!`/`prop_assert_eq!`/`prop_assume!`
//! macros. Cases are generated from a deterministic per-test seed so runs
//! are reproducible; failing inputs are reported but not shrunk.

pub mod bool;
pub mod collection;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(...)` etc. work via the
/// prelude, as in real proptest.
pub mod prop {
    pub use crate::bool;
    pub use crate::collection;
    pub use crate::sample;
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Entry point: expands each `fn name(args in strategies) { body }` into a
/// `#[test]` that draws inputs and checks the body across many cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run(
                &config,
                concat!(module_path!(), "::", stringify!($name)),
                |__proptest_rng| {
                    $(let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __proptest_rng);)+
                    let __proptest_result: ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    __proptest_result
                },
            );
        }
        $crate::__proptest_impl!(($config) $($rest)*);
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
                    l,
                    r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`: {}",
                    l,
                    r,
                    format!($($fmt)+)
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `(left != right)`\n  both: `{:?}`",
                    l
                );
            }
        }
    };
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}
