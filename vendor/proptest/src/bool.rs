//! Boolean strategies.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Either boolean with equal probability.
pub struct Any;

/// The `prop::bool::ANY` strategy.
pub const ANY: Any = Any;

impl Strategy for Any {
    type Value = std::primitive::bool;

    fn generate(&self, rng: &mut SmallRng) -> std::primitive::bool {
        rng.gen_bool(0.5)
    }
}
