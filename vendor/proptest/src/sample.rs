//! Sampling strategies: `select`.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Uniformly pick one of the given options per case.
pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut SmallRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
