//! The `Strategy` trait and the combinators the workspace uses.

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy is simply a deterministic function of the runner's RNG state.
pub trait Strategy {
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut SmallRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut SmallRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut SmallRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut SmallRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A: 0, B: 1);
tuple_strategy!(A: 0, B: 1, C: 2);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8);
tuple_strategy!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7, I: 8, J: 9);
