//! The case-running loop behind the `proptest!` macro.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// How a single drawn case ended, when it did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case did not satisfy a `prop_assume!` precondition; it is
    /// discarded and another input is drawn.
    Reject(String),
    /// A `prop_assert!` failed; the whole test fails.
    Fail(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration. Only `cases` is consulted; the rest of real
/// proptest's knobs are accepted-by-absence.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Run `f` against `config.cases` generated inputs. The RNG seed is a
/// deterministic function of the test's module path and the attempt
/// number, so failures are reproducible run-to-run.
pub fn run<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut SmallRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut attempt = 0u64;
    while passed < config.cases {
        let seed = base ^ attempt.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        let mut rng = SmallRng::seed_from_u64(seed);
        attempt += 1;
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest `{name}`: too many prop_assume! rejections \
                     ({rejects} while trying to reach {} cases)",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed after {passed} passing case(s) \
                     (attempt seed {seed:#x}):\n{msg}"
                );
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}
