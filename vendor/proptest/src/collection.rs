//! Collection strategies: `vec`.

use crate::strategy::Strategy;
use rand::rngs::SmallRng;
use rand::Rng;

/// Length specification for [`vec`]: a fixed size or a half-open range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    start: usize,
    /// Exclusive.
    end: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            start: n,
            end: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            start: r.start,
            end: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            start: *r.start(),
            end: *r.end() + 1,
        }
    }
}

/// Generate a `Vec` whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
        let len = if self.size.start + 1 == self.size.end {
            self.size.start
        } else {
            rng.gen_range(self.size.start..self.size.end)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
