//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// The small, fast generator: xoshiro256++, the same algorithm rand 0.8's
/// `SmallRng` uses on 64-bit platforms.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    /// Expand a 64-bit seed into the full state through SplitMix64, as
    /// recommended by the xoshiro authors (and done by rand 0.8).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        SmallRng {
            s: [next(), next(), next(), next()],
        }
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

/// Alias kept for API compatibility; statistically strong generators are
/// out of scope for the offline shim.
pub type StdRng = SmallRng;
