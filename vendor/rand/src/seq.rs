//! Sequence-related extensions.

use crate::{Rng, RngCore};

/// Slice extensions: the workspace uses `shuffle` only.
pub trait SliceRandom {
    type Item;

    /// Fisher–Yates shuffle, iterating from the end as rand 0.8 does.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// Uniformly pick one element, if any.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements left in place");
    }

    #[test]
    fn shuffle_is_deterministic() {
        let run = |seed| {
            let mut rng = SmallRng::seed_from_u64(seed);
            let mut v: Vec<u32> = (0..20).collect();
            v.shuffle(&mut rng);
            v
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }
}
