//! Offline stand-in for the `rand` crate.
//!
//! Provides the API surface this workspace uses — `rngs::SmallRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{gen, gen_range, gen_bool}`, and
//! `seq::SliceRandom::shuffle` — with the same algorithms rand 0.8 uses on
//! 64-bit platforms: `SmallRng` is xoshiro256++ seeded through SplitMix64,
//! floats are drawn from the high 53 bits, and bounded integers use
//! Lemire's widening-multiply rejection method. All draws are fully
//! deterministic functions of the seed, which the workspace's determinism
//! tests rely on.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of raw 64-bit words.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Extension methods over any `RngCore`.
pub trait Rng: RngCore {
    /// Draw a value of a standard-distribution type (`u64`, `f64`, ...).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Draw a value uniformly from a range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        // Compare against p scaled to the full 64-bit range.
        let p_int = (p * (u64::MAX as f64 + 1.0)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore> Rng for R {}

/// Types drawable from the "standard" distribution via `Rng::gen`.
pub trait SampleStandard {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, range)` by widening multiply with rejection
/// (Lemire); unbiased for every range.
fn uniform_u64<R: RngCore>(rng: &mut R, range: u64) -> u64 {
    debug_assert!(range > 0);
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let wide = (v as u128) * (range as u128);
        let hi = (wide >> 64) as u64;
        let lo = wide as u64;
        if lo <= zone {
            return hi;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let f: f64 = f64::sample_standard(rng);
        let v = self.start + (self.end - self.start) * f;
        // Floating rounding can land exactly on `end`; stay half-open.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
        }
    }

    #[test]
    fn unit_float_is_half_open() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn small_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..7)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
