//! Offline stand-in for the `criterion` crate.
//!
//! Keeps the macro and builder surface the workspace's benches use —
//! `criterion_group!`/`criterion_main!` (both forms), `benchmark_group`,
//! `bench_function`, `bench_with_input`, `Throughput`, `BenchmarkId`,
//! `black_box` — and measures with a simple calibrated loop: warm up,
//! pick an iteration count that makes one sample take a measurable slice
//! of wall time, then report the median over `sample_size` samples.
//! No statistics beyond that; good enough for relative comparisons like
//! the observability layer's overhead check.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark driver. Collects settings; groups do the measuring.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.sample_size;
        run_one(&id.to_string(), sample_size, None, f);
    }
}

/// Units for reporting throughput alongside time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            f,
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{}", self.name, id),
            self.sample_size,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Timing harness handed to each benchmark closure.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    calibrating: bool,
}

impl Bencher {
    /// Run `f` repeatedly and record one sample of `iters_per_sample`
    /// consecutive invocations.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(f());
        }
        self.samples.push(start.elapsed());
    }

    fn is_calibrating(&self) -> bool {
        self.calibrating
    }
}

const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

fn run_one<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration pass: one iteration, to size the per-sample loop.
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: Vec::new(),
        calibrating: true,
    };
    f(&mut b);
    let per_iter = b.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters = if per_iter.is_zero() {
        1000
    } else {
        (TARGET_SAMPLE_TIME.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64
    };

    let mut b = Bencher {
        iters_per_sample: iters,
        samples: Vec::new(),
        calibrating: false,
    };
    for _ in 0..sample_size {
        f(&mut b);
    }
    debug_assert!(!b.is_calibrating());

    let mut per_iter_ns: Vec<f64> = b
        .samples
        .iter()
        .map(|d| d.as_nanos() as f64 / iters as f64)
        .collect();
    per_iter_ns.sort_by(|a, c| a.total_cmp(c));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns.first().copied().unwrap_or(median);
    let hi = per_iter_ns.last().copied().unwrap_or(median);

    print!(
        "{label:<50} time: [{} {} {}]",
        fmt_time(lo),
        fmt_time(median),
        fmt_time(hi)
    );
    if let Some(t) = throughput {
        let (count, unit) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (median * 1e-9);
        print!("  thrpt: {} {unit}", fmt_rate(rate));
    }
    println!();
}

fn fmt_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.2} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(per_sec: f64) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} ")
    }
}

/// Define a benchmark group function. Supports both the positional form
/// `criterion_group!(benches, target_a, target_b)` and the configured form
/// `criterion_group! { name = benches; config = ...; targets = ... }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define the benchmark binary's `main`, invoking each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
