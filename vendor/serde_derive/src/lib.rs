//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored `serde` shim's simplified `to_value`/`from_value` model,
//! without `syn`/`quote`: the input item is parsed directly from the token
//! stream and the impl is emitted as a string.
//!
//! Supported shapes — the complete set this workspace uses:
//! - structs with named fields (serialized as ordered JSON objects),
//! - enums with unit variants (serialized as strings) and struct variants
//!   (serialized as single-key objects),
//! - the container attributes `#[serde(from = "T", into = "T")]`.
//!
//! Generics, tuple structs, and field-level attributes are intentionally
//! unsupported and fail loudly at macro-expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed `#[derive]` input item.
struct Input {
    name: String,
    kind: Kind,
    from_ty: Option<String>,
    into_ty: Option<String>,
}

enum Kind {
    /// Named-field struct: field names in declaration order.
    Struct(Vec<String>),
    /// Enum: variants in declaration order.
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let body = if let Some(into_ty) = &item.into_ty {
        format!(
            "let converted: {into_ty} = \
             ::std::convert::Into::into(::std::clone::Clone::clone(self));\n\
             ::serde::Serialize::to_value(&converted)"
        )
    } else {
        match &item.kind {
            Kind::Struct(fields) => serialize_struct_body(fields),
            Kind::Enum(variants) => serialize_enum_body(&item.name, variants),
        }
    };
    let name = &item.name;
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Serialize impl failed to parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_input(input);
    let body = if let Some(from_ty) = &item.from_ty {
        format!(
            "let converted: {from_ty} = ::serde::Deserialize::from_value(v)?;\n\
             ::std::result::Result::Ok(::std::convert::From::from(converted))"
        )
    } else {
        match &item.kind {
            Kind::Struct(fields) => deserialize_struct_body(&item.name, fields),
            Kind::Enum(variants) => deserialize_enum_body(&item.name, variants),
        }
    };
    let name = &item.name;
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
         {body}\n}}\n}}\n"
    )
    .parse()
    .expect("serde_derive: generated Deserialize impl failed to parse")
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn serialize_struct_body(fields: &[String]) -> String {
    let mut out = String::from(
        "let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
         ::std::vec::Vec::new();\n",
    );
    for f in fields {
        out.push_str(&format!(
            "obj.push((::std::string::String::from(\"{f}\"), \
             ::serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    out.push_str("::serde::Value::Object(obj)");
    out
}

fn serialize_enum_body(name: &str, variants: &[Variant]) -> String {
    let mut out = String::from("match self {\n");
    for v in variants {
        let vname = &v.name;
        match &v.fields {
            None => out.push_str(&format!(
                "{name}::{vname} => \
                 ::serde::Value::String(::std::string::String::from(\"{vname}\")),\n"
            )),
            Some(fields) => {
                let bindings = fields.join(", ");
                out.push_str(&format!("{name}::{vname} {{ {bindings} }} => {{\n"));
                out.push_str(
                    "let mut obj: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n",
                );
                for f in fields {
                    out.push_str(&format!(
                        "obj.push((::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value({f})));\n"
                    ));
                }
                out.push_str(&format!(
                    "::serde::Value::Object(vec![(::std::string::String::from(\"{vname}\"), \
                     ::serde::Value::Object(obj))])\n}}\n"
                ));
            }
        }
    }
    out.push('}');
    out
}

fn deserialize_struct_body(name: &str, fields: &[String]) -> String {
    let mut out = String::from("match v {\n::serde::Value::Object(obj) => ");
    out.push_str(&format!("::std::result::Result::Ok({name} {{\n"));
    for f in fields {
        out.push_str(&format!(
            "{f}: ::serde::__private::field(obj, \"{f}\", \"{name}\")?,\n"
        ));
    }
    out.push_str(&format!(
        "}}),\n_ => ::std::result::Result::Err(::serde::Error::custom(\
         \"expected object for {name}\")),\n}}"
    ));
    out
}

fn deserialize_enum_body(name: &str, variants: &[Variant]) -> String {
    // Unit variants arrive as strings, struct variants as single-key objects.
    let mut out = String::from("match v {\n");
    out.push_str("::serde::Value::String(s) => match s.as_str() {\n");
    for v in variants.iter().filter(|v| v.fields.is_none()) {
        let vname = &v.name;
        out.push_str(&format!(
            "\"{vname}\" => ::std::result::Result::Ok({name}::{vname}),\n"
        ));
    }
    out.push_str(&format!(
        "other => ::std::result::Result::Err(::serde::Error::custom(format!(\
         \"unknown variant `{{other}}` of {name}\"))),\n}},\n"
    ));
    out.push_str("::serde::Value::Object(outer) if outer.len() == 1 => {\n");
    out.push_str("let (tag, inner) = &outer[0];\nmatch tag.as_str() {\n");
    for v in variants.iter() {
        let Some(fields) = &v.fields else { continue };
        let vname = &v.name;
        out.push_str(&format!("\"{vname}\" => match inner {{\n"));
        out.push_str(&format!(
            "::serde::Value::Object(obj) => ::std::result::Result::Ok({name}::{vname} {{\n"
        ));
        for f in fields {
            out.push_str(&format!(
                "{f}: ::serde::__private::field(obj, \"{f}\", \"{name}::{vname}\")?,\n"
            ));
        }
        out.push_str(&format!(
            "}}),\n_ => ::std::result::Result::Err(::serde::Error::custom(\
             \"expected object body for {name}::{vname}\")),\n}},\n"
        ));
    }
    out.push_str(&format!(
        "other => ::std::result::Result::Err(::serde::Error::custom(format!(\
         \"unknown variant `{{other}}` of {name}\"))),\n}}\n}},\n"
    ));
    out.push_str(&format!(
        "_ => ::std::result::Result::Err(::serde::Error::custom(\
         \"expected string or object for {name}\")),\n}}"
    ));
    out
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut iter = input.into_iter().peekable();
    let mut from_ty = None;
    let mut into_ty = None;

    // Leading attributes (doc comments, #[serde(...)], #[derive(...)], ...)
    // and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.next() {
                    scan_serde_attr(g.stream(), &mut from_ty, &mut into_ty);
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }

    let keyword = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected type name, got {other:?}"),
    };
    let body = match iter.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde_derive shim: `{name}` must be a brace-bodied struct or enum \
             without generics (got {other:?})"
        ),
    };

    let kind = match keyword.as_str() {
        "struct" => Kind::Struct(parse_named_fields(body, &name)),
        "enum" => Kind::Enum(parse_variants(body, &name)),
        other => panic!("serde_derive: unsupported item kind `{other}`"),
    };
    Input {
        name,
        kind,
        from_ty,
        into_ty,
    }
}

/// Extract `from`/`into` types out of one attribute's bracket group, if it
/// is a `serde(...)` attribute.
fn scan_serde_attr(
    stream: TokenStream,
    from_ty: &mut Option<String>,
    into_ty: &mut Option<String>,
) {
    let mut iter = stream.into_iter();
    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return,
    }
    let Some(TokenTree::Group(args)) = iter.next() else {
        return;
    };
    let mut key: Option<String> = None;
    for tt in args.stream() {
        match tt {
            TokenTree::Ident(id) => key = Some(id.to_string()),
            TokenTree::Literal(lit) => {
                let raw = lit.to_string();
                let ty = raw.trim_matches('"').to_string();
                match key.as_deref() {
                    Some("from") => *from_ty = Some(ty),
                    Some("into") => *into_ty = Some(ty),
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

/// Parse `name: Type, ...` field lists, returning the names. Types are
/// skipped with angle-bracket depth tracking so commas inside generics do
/// not split fields.
fn parse_named_fields(stream: TokenStream, ty: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip field attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let field = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected field name in `{ty}`, got {other:?}"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!(
                "serde_derive shim: `{ty}` must use named fields \
                 (after `{field}` expected `:`, got {other:?})"
            ),
        }
        fields.push(field);
        // Skip the type up to the next top-level comma.
        let mut angle_depth = 0i32;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

fn parse_variants(stream: TokenStream, ty: &str) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        // Skip variant attributes.
        while let Some(TokenTree::Punct(p)) = iter.peek() {
            if p.as_char() == '#' {
                iter.next();
                iter.next();
            } else {
                break;
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("serde_derive: expected variant name in `{ty}`, got {other:?}"),
            None => break,
        };
        let fields = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                iter.next();
                Some(parse_named_fields(inner, ty))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => panic!(
                "serde_derive shim: tuple variant `{ty}::{name}` is unsupported; \
                 use a struct variant"
            ),
            _ => None,
        };
        variants.push(Variant { name, fields });
        // Skip discriminants (`= expr`) and the trailing comma.
        let mut angle_depth = 0i32;
        while let Some(tt) = iter.peek() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    iter.next();
                    break;
                }
                TokenTree::Punct(p) => {
                    match p.as_char() {
                        '<' => angle_depth += 1,
                        '>' => angle_depth -= 1,
                        _ => {}
                    }
                    iter.next();
                }
                _ => {
                    iter.next();
                }
            }
        }
    }
    variants
}
