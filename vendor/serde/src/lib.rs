//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the workspace vendors a
//! minimal serialization framework under the `serde` name. It keeps the
//! subset of the public API this repository uses — `Serialize`,
//! `Deserialize`, `serde::de::DeserializeOwned`, and the two derive macros
//! (including container-level `#[serde(from = "...", into = "...")]`) — but
//! replaces serde's visitor architecture with a much simpler data model:
//! every type converts to and from a JSON-like [`Value`] tree.
//!
//! The JSON representation produced through this crate matches real serde's
//! `serde_json` output for the constructs the workspace uses: structs as
//! objects in declaration order, unit enum variants as strings, struct
//! variants as single-key objects, `Option::None` as `null`, and missing
//! `Option` fields defaulting to `None`.

pub mod value;

pub use value::{Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::fmt;

/// Serialization/deserialization error: a plain message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Build an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Convert `self` into the generic value representation.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstruct `Self` from the generic value representation.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// The `serde::de` module, kept for `serde::de::DeserializeOwned` bounds.
pub mod de {
    /// Marker for deserializable types that own all their data. In this
    /// simplified model every `Deserialize` type qualifies.
    pub trait DeserializeOwned: crate::Deserialize {}
    impl<T: crate::Deserialize> DeserializeOwned for T {}
}

/// The `serde::ser` module, kept for path compatibility.
pub mod ser {
    pub use crate::Serialize;
}

#[doc(hidden)]
pub mod __private {
    //! Helpers called by the generated derive code. Not a public API.

    use crate::{Deserialize, Error, Value};

    /// Look up `name` in a deserialized object and convert it. Missing
    /// fields fall back to `Null`, which lets `Option` fields default to
    /// `None` exactly like real serde while other types report the miss.
    pub fn field<T: Deserialize>(
        obj: &[(String, Value)],
        name: &str,
        ty: &str,
    ) -> Result<T, Error> {
        match obj.iter().find(|(k, _)| k == name) {
            Some((_, v)) => T::from_value(v)
                .map_err(|e| Error::custom(format!("field `{name}` of `{ty}`: {e}"))),
            None => T::from_value(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field `{name}` in `{ty}`"))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::PosInt(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(Number::PosInt(n)) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range"))),
                    other => Err(Error::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 {
                    Value::Number(Number::PosInt(n as u64))
                } else {
                    Value::Number(Number::NegInt(n))
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n: i64 = match v {
                    Value::Number(Number::PosInt(n)) => i64::try_from(*n)
                        .map_err(|_| Error::custom(format!("integer {n} out of range")))?,
                    Value::Number(Number::NegInt(n)) => *n,
                    other => {
                        return Err(Error::custom(format!(
                            "expected signed integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| Error::custom(format!("integer {n} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::Float(*self as f64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Number(n) => Ok(n.as_f64() as $t),
                    other => Err(Error::custom(format!("expected number, got {other:?}"))),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($($idx:tt : $name:ident),+ ; $len:expr) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array of length {}, got {other:?}",
                        $len
                    ))),
                }
            }
        }
    };
}

impl_tuple!(0: A; 1);
impl_tuple!(0: A, 1: B; 2);
impl_tuple!(0: A, 1: B, 2: C; 3);
impl_tuple!(0: A, 1: B, 2: C, 3: D; 4);
impl_tuple!(0: A, 1: B, 2: C, 3: D, 4: E; 5);
impl_tuple!(0: A, 1: B, 2: C, 3: D, 4: E, 5: F; 6);
impl_tuple!(0: A, 1: B, 2: C, 3: D, 4: E, 5: F, 6: G; 7);
impl_tuple!(0: A, 1: B, 2: C, 3: D, 4: E, 5: F, 6: G, 7: H; 8);
