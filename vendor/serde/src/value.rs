//! The generic value tree both serialization directions pass through.
//!
//! Objects preserve insertion order (a `Vec` of pairs rather than a map) so
//! serialized output is a deterministic function of struct declaration
//! order — the property the observability layer's byte-identical event logs
//! rely on.

/// A JSON-like value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(Number),
    String(String),
    Array(Vec<Value>),
    /// Insertion-ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

/// A JSON number, kept in its narrowest faithful representation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    PosInt(u64),
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// Lossy view of the number as a float.
    pub fn as_f64(&self) -> f64 {
        match self {
            Number::PosInt(n) => *n as f64,
            Number::NegInt(n) => *n as f64,
            Number::Float(f) => *f,
        }
    }

    /// The number as a `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Number::PosInt(n) => Some(*n),
            Number::NegInt(n) if *n >= 0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The number as an `i64` if it fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Number::PosInt(n) => i64::try_from(*n).ok(),
            Number::NegInt(n) => Some(*n),
            Number::Float(_) => None,
        }
    }
}

impl Value {
    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Array element lookup by index.
    pub fn index(&self, i: usize) -> Option<&Value> {
        match self {
            Value::Array(items) => items.get(i),
            _ => None,
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64()),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(pairs) => Some(pairs),
            _ => None,
        }
    }
}
