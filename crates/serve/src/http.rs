//! Just enough HTTP/1.1 for the daemon: blocking request reads with a
//! hard size cap, and fixed-status responses with `Content-Length`.
//! No external dependencies — the workspace is offline — and no
//! chunked encoding, pipelining, or TLS; `loadgen` and `curl` both
//! speak this subset. Connections are keep-alive until the client
//! closes, errors, or idles past the socket read timeout.

use std::io::{Read, Write};

/// One parsed request.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Request target, e.g. `/run`.
    pub path: String,
    /// Request body (empty when there was no `Content-Length`).
    pub body: Vec<u8>,
}

/// Why a request could not be read.
#[derive(Debug)]
pub enum ReadError {
    /// Clean end of stream before any request byte — client is done.
    Closed,
    /// Body or header section exceeds the configured limit.
    TooLarge,
    /// Not parseable as HTTP/1.1.
    Malformed(String),
    /// Socket error or timeout.
    Io(std::io::Error),
}

/// Response statuses the daemon emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// 200 — artifact follows.
    Ok,
    /// 400 — unparseable or invalid request.
    BadRequest,
    /// 404 — unknown path.
    NotFound,
    /// 413 — request body over the size limit.
    PayloadTooLarge,
    /// 429 — admission queue full; retry later.
    TooManyRequests,
    /// 500 — the simulation job panicked.
    Internal,
    /// 503 — draining for shutdown; no new work.
    Unavailable,
}

impl Status {
    /// The HTTP status line for this status.
    pub fn line(self) -> &'static str {
        match self {
            Status::Ok => "200 OK",
            Status::BadRequest => "400 Bad Request",
            Status::NotFound => "404 Not Found",
            Status::PayloadTooLarge => "413 Payload Too Large",
            Status::TooManyRequests => "429 Too Many Requests",
            Status::Internal => "500 Internal Server Error",
            Status::Unavailable => "503 Service Unavailable",
        }
    }

    /// Numeric code (for client-side counters).
    pub fn code(self) -> u16 {
        match self {
            Status::Ok => 200,
            Status::BadRequest => 400,
            Status::NotFound => 404,
            Status::PayloadTooLarge => 413,
            Status::TooManyRequests => 429,
            Status::Internal => 500,
            Status::Unavailable => 503,
        }
    }
}

/// Header-section cap: requests are tiny JSON bodies, so 8 KiB of
/// headers is already generous.
const MAX_HEADER_BYTES: usize = 8 * 1024;

/// Read one request from `stream`. `max_body` caps the declared
/// `Content-Length`; the cap is enforced *before* reading the body, so
/// an oversized upload costs nothing. Respects whatever read timeout
/// the caller set on the socket (a timeout surfaces as `Io`).
pub fn read_request(stream: &mut impl Read, max_body: usize) -> Result<Request, ReadError> {
    // Read byte-wise until the blank line; requests are a few hundred
    // bytes, so simplicity beats buffering here.
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(ReadError::Malformed("eof inside header section".into()));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(ReadError::Io(e)),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEADER_BYTES {
            return Err(ReadError::TooLarge);
        }
    }
    let text = String::from_utf8_lossy(&head);
    let mut lines = text.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| ReadError::Malformed("request line without target".into()))?
        .to_string();
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad content-length".into()))?;
            }
        }
    }
    if content_length > max_body {
        return Err(ReadError::TooLarge);
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(ReadError::Io)?;
    Ok(Request { method, path, body })
}

/// Write one JSON response. `cache` becomes an `X-Cache` header
/// (`hit` / `miss`) so clients can measure warm-hit rates without a
/// second round trip; `None` omits the header (errors, admin routes).
pub fn write_response(
    stream: &mut impl Write,
    status: Status,
    cache: Option<&str>,
    body: &[u8],
) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n",
        status.line(),
        body.len()
    );
    if let Some(c) = cache {
        head.push_str(&format!("X-Cache: {c}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

/// Client-side response reader (used by `loadgen` and the tests):
/// parses the status code, the `X-Cache` header, and the
/// `Content-Length`-framed body.
pub fn read_response(stream: &mut impl Read) -> Result<(u16, Option<String>, Vec<u8>), ReadError> {
    let req_like = read_response_head(stream)?;
    Ok(req_like)
}

fn read_response_head(stream: &mut impl Read) -> Result<(u16, Option<String>, Vec<u8>), ReadError> {
    let mut head = Vec::with_capacity(256);
    let mut byte = [0u8; 1];
    loop {
        match stream.read(&mut byte) {
            Ok(0) => {
                if head.is_empty() {
                    return Err(ReadError::Closed);
                }
                return Err(ReadError::Malformed("eof inside response head".into()));
            }
            Ok(_) => head.push(byte[0]),
            Err(e) => return Err(ReadError::Io(e)),
        }
        if head.ends_with(b"\r\n\r\n") {
            break;
        }
        if head.len() > MAX_HEADER_BYTES {
            return Err(ReadError::TooLarge);
        }
    }
    let text = String::from_utf8_lossy(&head);
    let mut lines = text.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let code: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|c| c.parse().ok())
        .ok_or_else(|| ReadError::Malformed(format!("bad status line {status_line:?}")))?;
    let mut content_length = 0usize;
    let mut cache = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| ReadError::Malformed("bad content-length".into()))?;
            } else if name.eq_ignore_ascii_case("x-cache") {
                cache = Some(value.trim().to_string());
            }
        }
    }
    let mut body = vec![0u8; content_length];
    stream.read_exact(&mut body).map_err(ReadError::Io)?;
    Ok((code, cache, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_post_with_body() {
        let raw = b"POST /run HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let req = read_request(&mut &raw[..], 1024).unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/run");
        assert_eq!(req.body, b"abcd");
    }

    #[test]
    fn parses_a_get_without_body() {
        let raw = b"GET /healthz HTTP/1.1\r\n\r\n";
        let req = read_request(&mut &raw[..], 1024).unwrap();
        assert_eq!(
            (req.method.as_str(), req.path.as_str()),
            ("GET", "/healthz")
        );
        assert!(req.body.is_empty());
    }

    #[test]
    fn rejects_oversized_bodies_before_reading_them() {
        let raw = b"POST /run HTTP/1.1\r\nContent-Length: 999999\r\n\r\n";
        assert!(matches!(
            read_request(&mut &raw[..], 1024),
            Err(ReadError::TooLarge)
        ));
    }

    #[test]
    fn clean_eof_is_closed_not_malformed() {
        let raw: &[u8] = b"";
        assert!(matches!(
            read_request(&mut &raw[..], 1024),
            Err(ReadError::Closed)
        ));
    }

    #[test]
    fn response_round_trips() {
        let mut wire = Vec::new();
        write_response(&mut wire, Status::Ok, Some("hit"), b"{\"x\":1}").unwrap();
        let (code, cache, body) = read_response(&mut &wire[..]).unwrap();
        assert_eq!(code, 200);
        assert_eq!(cache.as_deref(), Some("hit"));
        assert_eq!(body, b"{\"x\":1}");
        let mut wire = Vec::new();
        write_response(&mut wire, Status::TooManyRequests, None, b"{}").unwrap();
        let (code, cache, _) = read_response(&mut &wire[..]).unwrap();
        assert_eq!((code, cache), (429, None));
    }
}
