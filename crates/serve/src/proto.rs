//! Wire types of the relsim-serve protocol, and the one function that
//! turns a request into an artifact.
//!
//! The determinism contract extends to the wire: for a given
//! [`SimRequest`] and reference table, [`run_request`] +
//! [`artifact_bytes`] produce exactly the bytes the batch CLI
//! (`simulate --result-out`) writes. The daemon serves either those
//! bytes freshly computed, or the same bytes replayed from the
//! content-addressed cache — a client can never tell which.

use relsim::evaluate::{evaluate, DEFAULT_IFR};
use relsim::isolated::ReferenceTable;
use relsim::{
    AppSpec, CounterKind, Objective, RandomScheduler, SamplingParams, SamplingScheduler, Scheduler,
    StaticScheduler, System, SystemConfig,
};
use relsim_cache::Key;
use relsim_obs::{Phase, RunObs};
use relsim_power::{PowerModel, SharedActivity};
use serde::{Deserialize, Serialize};

/// One simulation request: "run this mix under this scheduler/config".
/// Mirrors the `simulate` CLI flags one-for-one, so any request the
/// daemon serves can be reproduced offline with the batch tool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimRequest {
    /// Benchmark per core, in placement order (`--benchmarks`).
    pub benchmarks: Vec<String>,
    /// Number of big cores (`--big`).
    pub big: usize,
    /// Number of small cores (`--small`).
    pub small: usize,
    /// `random` | `performance` | `reliability` | `static`.
    pub scheduler: String,
    /// Simulated duration in ticks (`--ticks`).
    pub ticks: u64,
    /// Scheduler quantum in ticks (`--quantum`).
    pub quantum: u64,
    /// Run the small cores at half frequency (`--half-freq-small`).
    pub half_freq_small: bool,
    /// Use the ROB-only hardware counter variant (`--rob-only`).
    pub rob_only: bool,
}

/// Scheduler names a request may carry.
pub const SCHEDULERS: [&str; 4] = ["random", "performance", "reliability", "static"];

impl SimRequest {
    /// Check the request is well-formed and runnable *before* admission,
    /// so malformed input is rejected with a 400 instead of panicking a
    /// pool job. The error string goes back to the client verbatim.
    pub fn validate(&self) -> Result<(), String> {
        if self.big + self.small == 0 {
            return Err("need at least one core".into());
        }
        if self.benchmarks.len() != self.big + self.small {
            return Err(format!(
                "need exactly one benchmark per core ({} cores, {} benchmarks)",
                self.big + self.small,
                self.benchmarks.len()
            ));
        }
        if self.ticks == 0 || self.quantum == 0 {
            return Err("ticks and quantum must be positive".into());
        }
        if !SCHEDULERS.contains(&self.scheduler.as_str()) {
            return Err(format!(
                "unknown scheduler {:?} (expected one of {:?})",
                self.scheduler, SCHEDULERS
            ));
        }
        for name in &self.benchmarks {
            if relsim_trace::spec_profile(name).is_none() {
                return Err(format!("unknown benchmark {name:?}"));
            }
        }
        Ok(())
    }
}

/// Per-application row of a [`SimArtifact`] (one line of the
/// `simulate` table).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppRow {
    /// Benchmark name.
    pub name: String,
    /// Fraction of the run spent on a big core.
    pub big_frac: f64,
    /// Instructions committed.
    pub instructions: u64,
    /// Weighted soft-error rate (Equation 2).
    pub wser: f64,
    /// Slowdown versus the isolated big core.
    pub slowdown: f64,
    /// Migrations this application underwent.
    pub migrations: u64,
}

/// The complete result of one request — everything the `simulate`
/// CLI prints, as one serializable value.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimArtifact {
    /// Simulation model version ([`relsim::cache::MODEL_VERSION`]).
    pub model_version: u32,
    /// The request this artifact answers.
    pub request: SimRequest,
    /// Canonical scheduler name (`Scheduler::name()`).
    pub scheduler: String,
    /// System soft-error rate; lower is better.
    pub sser: f64,
    /// System throughput; higher is better.
    pub stp: f64,
    /// Average normalized turnaround time; lower is better.
    pub antt: f64,
    /// Chip power, watts.
    pub chip_watts: f64,
    /// System (chip + DRAM) power, watts.
    pub system_watts: f64,
    /// Total migrations.
    pub migrations: u64,
    /// Per-application rows, in placement order.
    pub apps: Vec<AppRow>,
}

/// The canonical byte encoding of an artifact — the daemon's response
/// body and the batch CLI's `--result-out` file are both exactly this.
pub fn artifact_bytes(artifact: &SimArtifact) -> Vec<u8> {
    serde_json::to_vec_pretty(artifact).expect("artifact serializes")
}

/// Content key for a request against a given reference table. Includes
/// the table fingerprint and the process-wide sampling/skip defaults
/// (like the batch drivers' cell keys), so entries are shared with
/// nothing that could produce different bytes.
pub fn request_key(fingerprint: &str, req: &SimRequest) -> Key {
    relsim::cache::key(
        "serve-run/v1",
        &(
            fingerprint,
            req,
            relsim::sampling::default_config(),
            relsim::skip::default_enabled(),
        ),
    )
}

/// Run one validated request to completion: build the system, run it
/// under the requested scheduler, evaluate against `refs`, and fold the
/// power report in. Deterministic given `(refs, req)` — the app seeds
/// are fixed (`i + 1`, matching the `simulate` CLI), so two calls
/// anywhere produce identical artifacts.
pub fn run_request(refs: &ReferenceTable, req: &SimRequest, obs: &mut RunObs) -> SimArtifact {
    let mut cfg = if req.half_freq_small {
        SystemConfig::hcmp_slow_small(req.big, req.small)
    } else {
        SystemConfig::hcmp(req.big, req.small)
    };
    cfg.quantum_ticks = req.quantum;
    cfg.migration_ticks = (req.quantum / 50).max(1);
    if req.rob_only {
        cfg.counter_kind = CounterKind::HwRobOnly;
    }
    let kinds = cfg.core_kinds();
    let mut scheduler: Box<dyn Scheduler> = match req.scheduler.as_str() {
        "random" => Box::new(RandomScheduler::new(kinds, req.quantum, 1)),
        "performance" => Box::new(SamplingScheduler::new(
            Objective::Stp,
            kinds,
            req.quantum,
            SamplingParams::default(),
        )),
        "reliability" => Box::new(SamplingScheduler::new(
            Objective::Sser,
            kinds,
            req.quantum,
            SamplingParams::default(),
        )),
        "static" => Box::new(StaticScheduler::new(
            (0..req.benchmarks.len()).collect(),
            req.quantum,
        )),
        other => panic!("unvalidated scheduler {other:?}"),
    };
    let specs: Vec<AppSpec> = req
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, n)| AppSpec::spec(n, i as u64 + 1))
        .collect();
    let mut system = obs
        .timers
        .time(Phase::Setup, || System::new(cfg.clone(), &specs));
    let result = system.run_traced(scheduler.as_mut(), req.ticks, obs);
    let eval = obs
        .timers
        .time(Phase::Metrics, || evaluate(&result, refs, DEFAULT_IFR));
    let power = PowerModel::default().report(
        &result
            .cores
            .iter()
            .map(|c| c.to_activity())
            .collect::<Vec<_>>(),
        &SharedActivity {
            l3_accesses: result.shared.l3_accesses,
            mem_requests: result.shared.mem_requests,
        },
        result.duration,
    );
    let apps = result
        .apps
        .iter()
        .zip(&eval.apps)
        .map(|(a, e)| AppRow {
            name: a.name.clone(),
            big_frac: a.ticks_on_big as f64 / result.duration as f64,
            instructions: a.instructions,
            wser: e.wser,
            slowdown: e.slowdown,
            migrations: a.migrations,
        })
        .collect();
    SimArtifact {
        model_version: relsim::cache::MODEL_VERSION,
        request: req.clone(),
        scheduler: scheduler.name().to_string(),
        sser: eval.sser,
        stp: eval.stp,
        antt: eval.antt,
        chip_watts: power.chip_watts,
        system_watts: power.system_watts(),
        migrations: result.migrations,
        apps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req() -> SimRequest {
        SimRequest {
            benchmarks: vec!["milc".into(), "hmmer".into()],
            big: 1,
            small: 1,
            scheduler: "reliability".into(),
            ticks: 10_000,
            quantum: 2_500,
            half_freq_small: false,
            rob_only: false,
        }
    }

    #[test]
    fn validate_catches_malformed_requests() {
        assert!(req().validate().is_ok());
        let mut r = req();
        r.big = 2;
        assert!(r.validate().unwrap_err().contains("benchmark per core"));
        let mut r = req();
        r.scheduler = "greedy".into();
        assert!(r.validate().unwrap_err().contains("unknown scheduler"));
        let mut r = req();
        r.benchmarks[0] = "nonesuch".into();
        assert!(r.validate().unwrap_err().contains("unknown benchmark"));
        let mut r = req();
        r.ticks = 0;
        assert!(r.validate().is_err());
    }

    #[test]
    fn request_round_trips_as_json() {
        let r = req();
        let bytes = serde_json::to_vec(&r).unwrap();
        let back: SimRequest = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn request_key_separates_requests_and_tables() {
        let a = request_key("fp1", &req());
        assert_eq!(a, request_key("fp1", &req()));
        assert_ne!(a, request_key("fp2", &req()));
        let mut r = req();
        r.ticks += 1;
        assert_ne!(a, request_key("fp1", &r));
    }
}
