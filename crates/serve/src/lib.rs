//! # relsim-serve
//!
//! The always-on simulation daemon (DESIGN.md §14): a std-only
//! TCP/HTTP front end over the pieces the batch CLI already has —
//! the work-stealing pool as execution engine, the content-addressed
//! cache as shared result store, relsim-obs for counters, histograms
//! and per-request manifests.
//!
//! The crate is a library; the `serve` and `loadgen` binaries in
//! `relsim-bench` are thin CLI wrappers. Layout:
//!
//! * [`proto`] — wire types ([`SimRequest`], [`SimArtifact`]) and the
//!   request runner shared with the batch CLI, which is what makes
//!   served responses byte-identical to `simulate --result-out`;
//! * [`http`] — a minimal HTTP/1.1 reader/writer with request-size
//!   caps;
//! * [`server`] — admission queue, warm-path short circuit, exec
//!   workers, graceful drain.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod http;
pub mod proto;
pub mod server;

pub use proto::{artifact_bytes, request_key, run_request, AppRow, SimArtifact, SimRequest};
pub use server::{Engine, Server, ServerConfig, SimEngine};
