//! The daemon: admission → single-flight → pool → cache.
//!
//! Request lifecycle (DESIGN.md §14):
//!
//! 1. a connection-handler thread parses the request and validates it
//!    (`400` before any simulation state is touched);
//! 2. **warm path**: if the process-wide result cache holds the
//!    artifact, it is decoded and returned immediately (`X-Cache: hit`)
//!    — warm requests never consume a queue slot;
//! 3. **admission**: the request enters a bounded queue, or is shed
//!    with `429` when the queue is full, or `503` when the server is
//!    draining;
//! 4. an exec worker runs the job through
//!    [`relsim::pool::scatter_map_cached_into_with_jobs`] — the same
//!    machinery as the batch grid, giving `catch_unwind` panic
//!    isolation and single-flight caching of concurrent duplicates —
//!    and writes the artifact bytes back on the client's socket.
//!
//! Graceful shutdown flips a draining flag (under the queue lock, so
//! no job can slip in after the workers' final empty-queue check),
//! stops accepting, rejects new work with `503`, and joins the workers
//! only after every queued job has been answered.

use crate::http::{self, ReadError, Request, Status};
use crate::proto::{artifact_bytes, request_key, run_request, SimArtifact, SimRequest};
use relsim::isolated::ReferenceTable;
use relsim_cache::Key;
use relsim_obs::{MetricsSnapshot, Recorder, RunManifest, RunObs};
use serde::Serialize;
use std::collections::VecDeque;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Acquire a server mutex, recovering from poisoning: one panicked
/// connection thread must never wedge the daemon.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// What executes requests. The daemon itself only routes; the engine
/// is injected so tests can substitute a controllable fake.
pub trait Engine: Send + Sync + 'static {
    /// Stable identity of the engine's inputs (folded into cache keys).
    fn fingerprint(&self) -> String;
    /// Run one validated request to completion.
    fn run(&self, req: &SimRequest, obs: &mut RunObs) -> SimArtifact;
}

/// The real engine: [`run_request`] against a reference table.
pub struct SimEngine {
    refs: ReferenceTable,
    fp: String,
}

impl SimEngine {
    /// Wrap a built reference table.
    pub fn new(refs: ReferenceTable) -> Self {
        let fp = refs.fingerprint();
        SimEngine { refs, fp }
    }
}

impl Engine for SimEngine {
    fn fingerprint(&self) -> String {
        self.fp.clone()
    }
    fn run(&self, req: &SimRequest, obs: &mut RunObs) -> SimArtifact {
        run_request(&self.refs, req, obs)
    }
}

/// Server tunables; `Default` is sized for tests and smoke runs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port.
    pub addr: String,
    /// Bounded admission-queue depth; beyond it requests shed with 429.
    pub queue_depth: usize,
    /// Exec worker threads draining the queue.
    pub exec_workers: usize,
    /// Per-connection socket read/write timeout.
    pub io_timeout: Duration,
    /// Largest accepted request body, bytes.
    pub max_request_bytes: usize,
    /// Where per-request run manifests go (`None` disables them).
    pub manifest_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_depth: 64,
            exec_workers: 2,
            io_timeout: Duration::from_secs(10),
            max_request_bytes: 64 * 1024,
            manifest_dir: None,
        }
    }
}

/// One admitted job: the validated request, its cache key (when the
/// cache is on), and the channel the worker answers on.
struct Job {
    req: SimRequest,
    key: Option<Key>,
    tx: mpsc::Sender<(Status, Option<&'static str>, Vec<u8>)>,
}

/// Queue state guarded by one mutex: the jobs *and* the draining flag,
/// so "drain started" and "queue empty" are checked atomically.
struct QueueState {
    jobs: VecDeque<Job>,
    draining: bool,
}

struct Shared {
    engine: Arc<dyn Engine>,
    cfg: ServerConfig,
    state: Mutex<QueueState>,
    cv: Condvar,
    /// Mirror of `QueueState::draining` for lock-free reads in the
    /// accept loop and health endpoint.
    draining: AtomicBool,
    rec: Mutex<Recorder>,
    /// Monotonic request number, for manifest names when uncached.
    seq: std::sync::atomic::AtomicU64,
}

impl Shared {
    fn bump(&self, name: &str) {
        let mut rec = lock_recover(&self.rec);
        let id = rec.counter(name);
        rec.inc(id);
    }
    fn observe_ns(&self, name: &str, ns: u64) {
        let mut rec = lock_recover(&self.rec);
        let id = rec.histogram(name);
        rec.observe(id, ns);
    }
}

#[derive(Serialize)]
struct ErrBody {
    error: String,
}

fn err_body(msg: &str) -> Vec<u8> {
    serde_json::to_vec(&ErrBody {
        error: msg.to_string(),
    })
    .unwrap_or_else(|_| b"{\"error\":\"unknown\"}".to_vec())
}

/// A running daemon. Dropping the handle without calling
/// [`Server::shutdown`] leaks the threads (the process is exiting
/// anyway); `shutdown` is the graceful path.
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    acceptor: JoinHandle<()>,
    workers: Vec<JoinHandle<()>>,
    /// Set by `POST /shutdown`; the owning binary polls it.
    shutdown_requested: Arc<AtomicBool>,
}

impl Server {
    /// Bind, spawn the acceptor and exec workers, return immediately.
    pub fn start(engine: Arc<dyn Engine>, cfg: ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        if let Some(dir) = &cfg.manifest_dir {
            let _ = std::fs::create_dir_all(dir);
        }
        let shared = Arc::new(Shared {
            engine,
            cfg,
            state: Mutex::new(QueueState {
                jobs: VecDeque::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            draining: AtomicBool::new(false),
            rec: Mutex::new(Recorder::new()),
            seq: std::sync::atomic::AtomicU64::new(0),
        });
        let shutdown_requested = Arc::new(AtomicBool::new(false));
        let workers = (0..shared.cfg.exec_workers.max(1))
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-exec-{w}"))
                    .spawn(move || exec_worker(&shared))
                    .expect("spawn exec worker")
            })
            .collect();
        let acceptor = {
            let shared = Arc::clone(&shared);
            let sd = Arc::clone(&shutdown_requested);
            std::thread::Builder::new()
                .name("serve-accept".into())
                .spawn(move || accept_loop(listener, &shared, &sd))
                .expect("spawn acceptor")
        };
        Ok(Server {
            shared,
            addr,
            acceptor,
            workers,
            shutdown_requested,
        })
    }

    /// The bound address (real port even when configured with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once a client has POSTed `/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown_requested.load(Ordering::SeqCst)
    }

    /// Snapshot the `serve.*` (and merged per-job) metrics.
    pub fn snapshot(&self) -> MetricsSnapshot {
        lock_recover(&self.shared.rec).snapshot()
    }

    /// Graceful shutdown: stop accepting, shed new work with 503,
    /// answer every already-admitted job, join all threads, and return
    /// the final metrics.
    pub fn shutdown(self) -> MetricsSnapshot {
        {
            let mut state = lock_recover(&self.shared.state);
            state.draining = true;
            self.shared.draining.store(true, Ordering::SeqCst);
        }
        self.shared.cv.notify_all();
        for w in self.workers {
            let _ = w.join();
        }
        let _ = self.acceptor.join();
        lock_recover(&self.shared.rec).snapshot()
    }
}

fn accept_loop(listener: TcpListener, shared: &Arc<Shared>, sd: &Arc<AtomicBool>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                let shared = Arc::clone(shared);
                let sd = Arc::clone(sd);
                // Handlers are detached: they die with their connection
                // (or its timeout); draining only has to answer work
                // that was *admitted*, not hold sockets open.
                let _ = std::thread::Builder::new()
                    .name("serve-conn".into())
                    .spawn(move || handle_conn(stream, &shared, &sd));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn handle_conn(mut stream: TcpStream, shared: &Arc<Shared>, sd: &Arc<AtomicBool>) {
    let _ = stream.set_nonblocking(false);
    // Responses are written as head + body in separate syscalls; without
    // nodelay, Nagle + delayed ACK serializes them into ~40ms stalls.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(shared.cfg.io_timeout));
    let _ = stream.set_write_timeout(Some(shared.cfg.io_timeout));
    loop {
        let req = match http::read_request(&mut stream, shared.cfg.max_request_bytes) {
            Ok(req) => req,
            Err(ReadError::Closed) => return,
            Err(ReadError::TooLarge) => {
                shared.bump("serve.too_large");
                let _ = http::write_response(
                    &mut stream,
                    Status::PayloadTooLarge,
                    None,
                    &err_body("request too large"),
                );
                return;
            }
            Err(ReadError::Malformed(m)) => {
                shared.bump("serve.bad_requests");
                let _ = http::write_response(&mut stream, Status::BadRequest, None, &err_body(&m));
                return;
            }
            Err(ReadError::Io(_)) => return,
        };
        if !respond(&mut stream, shared, sd, req) {
            return;
        }
    }
}

/// Route one request; returns whether the connection stays open.
fn respond(
    stream: &mut TcpStream,
    shared: &Arc<Shared>,
    sd: &Arc<AtomicBool>,
    req: Request,
) -> bool {
    match (req.method.as_str(), req.path.as_str()) {
        ("GET", "/healthz") => {
            let draining = shared.draining.load(Ordering::SeqCst);
            let body = format!("{{\"ok\":true,\"draining\":{draining}}}");
            http::write_response(stream, Status::Ok, None, body.as_bytes()).is_ok()
        }
        ("GET", "/stats") => {
            let snap = lock_recover(&shared.rec).snapshot();
            let body = serde_json::to_vec(&snap).unwrap_or_else(|_| b"{}".to_vec());
            http::write_response(stream, Status::Ok, None, &body).is_ok()
        }
        ("POST", "/shutdown") => {
            sd.store(true, Ordering::SeqCst);
            shared.bump("serve.shutdown_requests");
            http::write_response(stream, Status::Ok, None, b"{\"draining\":true}").is_ok()
        }
        ("POST", "/run") => run_route(stream, shared, &req.body),
        _ => {
            shared.bump("serve.not_found");
            http::write_response(stream, Status::NotFound, None, &err_body("unknown route")).is_ok()
        }
    }
}

fn run_route(stream: &mut TcpStream, shared: &Arc<Shared>, body: &[u8]) -> bool {
    let t0 = Instant::now();
    shared.bump("serve.requests");
    let sim_req: SimRequest = match serde_json::from_slice(body) {
        Ok(r) => r,
        Err(e) => {
            shared.bump("serve.bad_requests");
            return http::write_response(
                stream,
                Status::BadRequest,
                None,
                &err_body(&format!("unparseable request: {e}")),
            )
            .is_ok();
        }
    };
    if let Err(msg) = sim_req.validate() {
        shared.bump("serve.bad_requests");
        return http::write_response(stream, Status::BadRequest, None, &err_body(&msg)).is_ok();
    }

    let key = if relsim_cache::enabled() {
        Some(request_key(&shared.engine.fingerprint(), &sim_req))
    } else {
        None
    };

    // Warm path: a cached artifact short-circuits before admission —
    // hot traffic costs no queue slot and cannot be shed.
    if let (Some(store), Some(k)) = (relsim_cache::global(), key) {
        if let Some((payload, _tier)) = store.peek(k) {
            if let Some((artifact, _events, _metrics)) =
                relsim::cache::decode_bundle::<SimArtifact>(&payload)
            {
                shared.bump("serve.warm_hits");
                shared.observe_ns("serve.request_ns", t0.elapsed().as_nanos() as u64);
                let bytes = artifact_bytes(&artifact);
                return http::write_response(stream, Status::Ok, Some("hit"), &bytes).is_ok();
            }
            // Undecodable entry: fall through; the worker's run_keyed
            // path invalidates and heals it.
        }
    }

    // Admission: bounded queue, checked under the same lock as the
    // draining flag so a job can never be enqueued after the workers'
    // final drain check.
    let (tx, rx) = mpsc::channel();
    {
        let mut state = lock_recover(&shared.state);
        if state.draining {
            drop(state);
            shared.bump("serve.draining_rejects");
            return http::write_response(
                stream,
                Status::Unavailable,
                None,
                &err_body("draining for shutdown"),
            )
            .is_ok();
        }
        if state.jobs.len() >= shared.cfg.queue_depth {
            drop(state);
            shared.bump("serve.shed");
            return http::write_response(
                stream,
                Status::TooManyRequests,
                None,
                &err_body("admission queue full; retry later"),
            )
            .is_ok();
        }
        state.jobs.push_back(Job {
            req: sim_req,
            key,
            tx,
        });
        shared.bump("serve.admitted");
    }
    shared.cv.notify_one();

    // The worker answers exactly once; a dropped sender means the
    // worker died mid-job despite its catch_unwind — answer 500 rather
    // than hanging the client.
    let (status, cache, bytes) = rx
        .recv()
        .unwrap_or_else(|_| (Status::Internal, None, err_body("worker lost")));
    shared.observe_ns("serve.request_ns", t0.elapsed().as_nanos() as u64);
    http::write_response(stream, status, cache, &bytes).is_ok()
}

fn exec_worker(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut state = lock_recover(&shared.state);
            loop {
                if let Some(job) = state.jobs.pop_front() {
                    break job;
                }
                if state.draining {
                    return;
                }
                state = shared.cv.wait(state).unwrap_or_else(|e| e.into_inner());
            }
        };
        // One panicking job must not cost an exec worker: the pool
        // already catches job panics, this guards the bookkeeping
        // around it (manifest I/O, channel sends).
        let shared2 = Arc::clone(shared);
        let _ = catch_unwind(AssertUnwindSafe(move || run_job(&shared2, job)));
    }
}

fn run_job(shared: &Arc<Shared>, job: Job) {
    let t0 = Instant::now();
    let engine = Arc::clone(&shared.engine);
    let mut obs = RunObs::disabled();
    let req = job.req.clone();
    // jobs=1: the request IS the unit of parallelism (many clients,
    // many workers); the scatter is used for its catch_unwind isolation
    // and its single-flight cached execution, not for fan-out.
    let mut results = relsim::pool::scatter_map_cached_into_with_jobs(
        "serve-run",
        vec![(job.key, req)],
        &mut obs,
        1,
        |_, r, job_obs| engine.run(&r, job_obs),
    );
    let reply = match results.pop().flatten() {
        Some(artifact) => {
            let snap = obs.recorder.snapshot();
            let computed = job.key.is_none() || snap.counter("cache.misses").unwrap_or(0) > 0;
            if computed {
                shared.bump("serve.cold_runs");
                write_job_manifest(shared, &job.req, &obs, t0.elapsed().as_secs_f64(), job.key);
            } else {
                // Admitted but resolved warm: a concurrent leader
                // stored the artifact while this job sat in the queue.
                shared.bump("serve.queued_hits");
            }
            let cache = if computed { "miss" } else { "hit" };
            (Status::Ok, Some(cache), artifact_bytes(&artifact))
        }
        None => {
            // The panic is in the pool's failure registry; drain it so
            // a long-lived daemon's registry cannot grow without bound
            // (and so the owning binary's obs_finish does not treat an
            // answered 500 as a fatal batch failure).
            let failures = relsim::pool::take_failures();
            let msg = failures
                .last()
                .map(|f| f.message.clone())
                .unwrap_or_else(|| "job panicked".to_string());
            relsim_obs::warn!("serve: job failed: {msg}");
            shared.bump("serve.failures");
            (
                Status::Internal,
                None,
                err_body(&format!("simulation job panicked: {msg}")),
            )
        }
    };
    {
        let mut rec = lock_recover(&shared.rec);
        rec.merge(&obs.recorder);
    }
    // A dead client (hung up before the answer) is not an error.
    let _ = job.tx.send(reply);
}

fn write_job_manifest(
    shared: &Arc<Shared>,
    req: &SimRequest,
    obs: &RunObs,
    elapsed: f64,
    key: Option<Key>,
) {
    let Some(dir) = &shared.cfg.manifest_dir else {
        return;
    };
    let mut manifest = RunManifest::new(
        "relsim-serve",
        relsim::cache::MODEL_VERSION,
        &req.scheduler,
        1,
    );
    manifest.duration_ticks = req.ticks;
    manifest.config = serde_json::to_value(req).unwrap_or(serde::Value::Null);
    manifest.elapsed_seconds = elapsed;
    manifest.host_profile = obs.timers.profile();
    manifest.cache = relsim_cache::global_stats().map(|s| s.to_value());
    let name = match key {
        Some(k) => k.hex(),
        None => format!(
            "req-{}",
            shared.seq.fetch_add(1, std::sync::atomic::Ordering::SeqCst)
        ),
    };
    let anchor = dir.join(format!("{name}.json"));
    if let Err(e) = relsim_obs::write_manifest(&anchor, &manifest) {
        relsim_obs::warn!("serve: could not write manifest for {name}: {e}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::sync::mpsc::{Receiver, SyncSender};

    /// Engine that blocks each run until the test releases it, and
    /// panics on demand — enough to script queue and drain scenarios.
    struct GatedEngine {
        gate: Mutex<Receiver<()>>,
        started: SyncSender<()>,
    }

    impl GatedEngine {
        fn new() -> (Arc<GatedEngine>, SyncSender<()>, Receiver<()>) {
            let (release_tx, release_rx) = mpsc::sync_channel(64);
            let (started_tx, started_rx) = mpsc::sync_channel(64);
            (
                Arc::new(GatedEngine {
                    gate: Mutex::new(release_rx),
                    started: started_tx,
                }),
                release_tx,
                started_rx,
            )
        }
    }

    impl Engine for GatedEngine {
        fn fingerprint(&self) -> String {
            "gated".into()
        }
        fn run(&self, req: &SimRequest, _obs: &mut RunObs) -> SimArtifact {
            let _ = self.started.send(());
            let _ = lock_recover(&self.gate).recv();
            if req.ticks == 666 {
                panic!("scripted engine failure");
            }
            SimArtifact {
                model_version: relsim::cache::MODEL_VERSION,
                request: req.clone(),
                scheduler: req.scheduler.clone(),
                sser: 1.0,
                stp: 1.0,
                antt: 1.0,
                chip_watts: 1.0,
                system_watts: 2.0,
                migrations: 0,
                apps: Vec::new(),
            }
        }
    }

    fn request(ticks: u64) -> Vec<u8> {
        let req = SimRequest {
            benchmarks: vec!["milc".into(), "hmmer".into()],
            big: 1,
            small: 1,
            scheduler: "reliability".into(),
            ticks,
            quantum: 1000,
            half_freq_small: false,
            rob_only: false,
        };
        serde_json::to_vec(&req).unwrap()
    }

    fn post(addr: SocketAddr, path: &str, body: &[u8]) -> (u16, Option<String>, Vec<u8>) {
        let mut s = TcpStream::connect(addr).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        let head = format!(
            "POST {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            body.len()
        );
        s.write_all(head.as_bytes()).unwrap();
        s.write_all(body).unwrap();
        http::read_response(&mut s).unwrap()
    }

    fn cfg(depth: usize) -> ServerConfig {
        ServerConfig {
            queue_depth: depth,
            exec_workers: 1,
            io_timeout: Duration::from_secs(30),
            ..ServerConfig::default()
        }
    }

    #[test]
    fn queue_full_sheds_with_429() {
        let (engine, release, started) = GatedEngine::new();
        let server = Server::start(engine, cfg(1)).unwrap();
        let addr = server.addr();

        // First request occupies the single worker...
        let a = std::thread::spawn(move || post(addr, "/run", &request(10)));
        started.recv_timeout(Duration::from_secs(10)).unwrap();
        // ...second fills the depth-1 queue...
        let b = std::thread::spawn(move || post(addr, "/run", &request(20)));
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.snapshot().counter("serve.admitted").unwrap_or(0) < 2 {
            assert!(Instant::now() < deadline, "second request never admitted");
            std::thread::sleep(Duration::from_millis(5));
        }
        // ...third must shed immediately.
        let (code, _, _) = post(addr, "/run", &request(30));
        assert_eq!(code, 429);

        release.send(()).unwrap();
        release.send(()).unwrap();
        assert_eq!(a.join().unwrap().0, 200);
        assert_eq!(b.join().unwrap().0, 200);
        let snap = server.shutdown();
        assert_eq!(snap.counter("serve.shed"), Some(1));
        assert_eq!(snap.counter("serve.admitted"), Some(2));
    }

    #[test]
    fn shutdown_drains_admitted_work_and_rejects_new() {
        let (engine, release, started) = GatedEngine::new();
        let server = Server::start(engine, cfg(8)).unwrap();
        let addr = server.addr();

        let clients: Vec<_> = (0..3)
            .map(|i| std::thread::spawn(move || post(addr, "/run", &request(10 + i))))
            .collect();
        started.recv_timeout(Duration::from_secs(10)).unwrap();
        let deadline = Instant::now() + Duration::from_secs(10);
        while server.snapshot().counter("serve.admitted").unwrap_or(0) < 3 {
            assert!(Instant::now() < deadline, "requests never admitted");
            std::thread::sleep(Duration::from_millis(5));
        }

        // Shut down while one job runs and two sit in the queue; the
        // gate stays scripted so jobs finish only after drain begins.
        let shutdown = std::thread::spawn(move || server.shutdown());
        std::thread::sleep(Duration::from_millis(50));
        for _ in 0..3 {
            release.send(()).unwrap();
        }
        for c in clients {
            let (code, _, body) = c.join().unwrap();
            assert_eq!(code, 200, "admitted request dropped during drain");
            assert!(!body.is_empty());
        }
        let snap = shutdown.join().unwrap();
        assert_eq!(snap.counter("serve.admitted"), Some(3));
        // New connections are refused (acceptor gone) or rejected.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut s) => {
                // The accept backlog may still take the connection; any
                // answered request must be a 503, never fresh work.
                s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
                let body = request(40);
                let head = format!(
                    "POST /run HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                    body.len()
                );
                if s.write_all(head.as_bytes())
                    .and_then(|_| s.write_all(&body))
                    .is_ok()
                {
                    if let Ok((code, _, _)) = http::read_response(&mut s) {
                        assert_eq!(code, 503);
                    }
                }
            }
        }
    }

    #[test]
    fn panicking_job_answers_500_and_daemon_survives() {
        let (engine, release, _started) = GatedEngine::new();
        let server = Server::start(engine, cfg(8)).unwrap();
        let addr = server.addr();
        release.send(()).unwrap();
        let (code, _, body) = post(addr, "/run", &request(666));
        assert_eq!(code, 500);
        assert!(String::from_utf8_lossy(&body).contains("scripted engine failure"));
        // The worker survived the panic: a healthy request still runs.
        release.send(()).unwrap();
        let (code, _, _) = post(addr, "/run", &request(10));
        assert_eq!(code, 200);
        let snap = server.shutdown();
        assert_eq!(snap.counter("serve.failures"), Some(1));
        assert!(relsim::pool::take_failures().is_empty(), "registry drained");
    }

    #[test]
    fn bad_requests_and_unknown_routes_are_4xx() {
        let (engine, _release, _started) = GatedEngine::new();
        let server = Server::start(engine, cfg(4)).unwrap();
        let addr = server.addr();
        let (code, _, _) = post(addr, "/run", b"this is not json");
        assert_eq!(code, 400);
        let mut bad = request(10);
        bad.extend_from_slice(b" "); // still JSON...
        let invalid = serde_json::to_vec(&SimRequest {
            benchmarks: vec!["milc".into()],
            big: 1,
            small: 1,
            scheduler: "reliability".into(),
            ticks: 10,
            quantum: 10,
            half_freq_small: false,
            rob_only: false,
        })
        .unwrap();
        let (code, _, body) = post(addr, "/run", &invalid);
        assert_eq!(code, 400);
        assert!(String::from_utf8_lossy(&body).contains("benchmark per core"));
        let (code, _, _) = post(addr, "/nope", b"{}");
        assert_eq!(code, 404);
        let (code, _, _) = post(addr, "/shutdown", b"");
        assert_eq!(code, 200);
        assert!(server.shutdown_requested());
        let snap = server.shutdown();
        assert_eq!(snap.counter("serve.bad_requests"), Some(2));
    }
}
