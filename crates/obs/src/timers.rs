//! Scope timers attributing host wall-time to simulation phases.
//!
//! Timers are scoped per *segment* (quantum), not per tick: wrapping each
//! simulated tick in two `Instant` reads would dwarf the tick itself,
//! while per-segment scoping costs a few dozen nanoseconds per ~20k-tick
//! quantum and still answers "where does the wall time go".

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The simulation phases host time is attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Building systems, resetting generators, warming caches.
    Setup,
    /// Synthetic trace generation outside the core tick loop.
    TraceGen,
    /// The per-tick core + cache/DRAM simulation loop.
    CoreTick,
    /// Scheduler decision making (`next_segment` + `observe`).
    Scheduler,
    /// Applying migrations between quanta.
    Migration,
    /// End-of-run metric evaluation.
    Metrics,
    /// Writing traces, metrics, and result files.
    Io,
}

pub const PHASES: [Phase; 7] = [
    Phase::Setup,
    Phase::TraceGen,
    Phase::CoreTick,
    Phase::Scheduler,
    Phase::Migration,
    Phase::Metrics,
    Phase::Io,
];

impl Phase {
    pub fn name(self) -> &'static str {
        match self {
            Phase::Setup => "setup",
            Phase::TraceGen => "trace_gen",
            Phase::CoreTick => "core_tick",
            Phase::Scheduler => "scheduler",
            Phase::Migration => "migration",
            Phase::Metrics => "metrics",
            Phase::Io => "io",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Setup => 0,
            Phase::TraceGen => 1,
            Phase::CoreTick => 2,
            Phase::Scheduler => 3,
            Phase::Migration => 4,
            Phase::Metrics => 5,
            Phase::Io => 6,
        }
    }
}

/// Accumulated host time per phase.
#[derive(Debug, Clone)]
pub struct PhaseTimers {
    acc: [Duration; PHASES.len()],
    started: Instant,
}

impl Default for PhaseTimers {
    fn default() -> Self {
        Self::new()
    }
}

impl PhaseTimers {
    pub fn new() -> Self {
        PhaseTimers {
            acc: [Duration::ZERO; PHASES.len()],
            started: Instant::now(),
        }
    }

    /// Run `f`, attributing its wall time to `phase`.
    #[inline]
    pub fn time<R>(&mut self, phase: Phase, f: impl FnOnce() -> R) -> R {
        let start = Instant::now();
        let out = f();
        self.acc[phase.index()] += start.elapsed();
        out
    }

    /// Attribute an externally measured duration to `phase`.
    pub fn add(&mut self, phase: Phase, d: Duration) {
        self.acc[phase.index()] += d;
    }

    /// Fold another timer set's attributed time into this one, phase by
    /// phase. Used to roll per-worker timers into the host profile; with
    /// parallel workers the attributed total can exceed wall time (it is
    /// CPU time across threads, not elapsed time).
    pub fn absorb(&mut self, other: &PhaseTimers) {
        for (acc, o) in self.acc.iter_mut().zip(other.acc.iter()) {
            *acc += *o;
        }
    }

    /// Accumulated time for one phase.
    pub fn phase_time(&self, phase: Phase) -> Duration {
        self.acc[phase.index()]
    }

    /// Wall time since this timer set was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// Freeze into a serializable profile. Phases with zero time are
    /// included so the schema is stable across runs.
    pub fn profile(&self) -> HostProfile {
        let attributed: Duration = self.acc.iter().sum();
        HostProfile {
            phases: PHASES
                .iter()
                .map(|&p| (p.name().to_string(), self.acc[p.index()].as_secs_f64()))
                .collect(),
            attributed_seconds: attributed.as_secs_f64(),
            elapsed_seconds: self.elapsed().as_secs_f64(),
        }
    }
}

/// Serializable host-time profile of one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HostProfile {
    /// `(phase name, seconds)` in fixed phase order.
    pub phases: Vec<(String, f64)>,
    /// Sum of the phase times (time inside instrumented scopes).
    pub attributed_seconds: f64,
    /// Wall time from timer creation to snapshot.
    pub elapsed_seconds: f64,
}

impl HostProfile {
    /// Seconds attributed to a phase by name, if present.
    pub fn seconds(&self, name: &str) -> Option<f64> {
        self.phases.iter().find(|(n, _)| n == name).map(|(_, s)| *s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_attributes_to_the_right_phase() {
        let mut t = PhaseTimers::new();
        let v = t.time(Phase::Scheduler, || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(t.phase_time(Phase::Scheduler) >= Duration::from_millis(4));
        assert_eq!(t.phase_time(Phase::CoreTick), Duration::ZERO);
    }

    #[test]
    fn absorb_sums_per_phase() {
        let mut a = PhaseTimers::new();
        a.add(Phase::CoreTick, Duration::from_millis(10));
        let mut b = PhaseTimers::new();
        b.add(Phase::CoreTick, Duration::from_millis(5));
        b.add(Phase::Io, Duration::from_millis(2));
        a.absorb(&b);
        assert_eq!(a.phase_time(Phase::CoreTick), Duration::from_millis(15));
        assert_eq!(a.phase_time(Phase::Io), Duration::from_millis(2));
        assert_eq!(a.phase_time(Phase::Setup), Duration::ZERO);
    }

    #[test]
    fn profile_lists_every_phase_in_fixed_order() {
        let t = PhaseTimers::new();
        let p = t.profile();
        let names: Vec<&str> = p.phases.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(
            names,
            [
                "setup",
                "trace_gen",
                "core_tick",
                "scheduler",
                "migration",
                "metrics",
                "io"
            ]
        );
        assert!(p.seconds("core_tick").is_some());
        assert!(p.seconds("nonexistent").is_none());
    }
}
