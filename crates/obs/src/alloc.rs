//! Heap-allocation counting for the span profiler.
//!
//! [`CountingAlloc`] is a drop-in wrapper around the system allocator
//! that counts every `alloc`/`realloc` call in a process-wide atomic.
//! Install it as the `#[global_allocator]` in a binary or test to make
//! [`alloc_count`] live; without it the counter stays at zero, so the
//! per-stage `self_allocs` metrics in [`crate::span`] are all zero and
//! drop out of the profile entirely — determinism gates never see them.
//!
//! The counter tracks *allocation events*, not bytes: the question the
//! profiler answers is "does this engine stage allocate in steady
//! state?", for which a count of calls is the right unit (a single
//! `Vec` growth and a 1-byte `Box` are equally bugs in a hot loop).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

/// Number of allocation events since process start, or 0 if no
/// [`CountingAlloc`] is installed as the global allocator.
#[inline]
pub fn alloc_count() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

/// A counting wrapper around [`System`]. Frees are not counted: the
/// profiler attributes allocation *pressure* to stages, and a free in
/// steady state is only ever the echo of an earlier alloc.
pub struct CountingAlloc;

// SAFETY: delegates every operation unchanged to `System`, which upholds
// the `GlobalAlloc` contract; the counter increment has no effect on the
// returned memory.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}
