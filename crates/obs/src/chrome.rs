//! Chrome trace-event export for span records.
//!
//! Produces the JSON array format Perfetto and `about://tracing` load
//! natively: one `"ph":"X"` (complete) event per span with `ts`/`dur` in
//! fractional microseconds, plus one `"M"` metadata event naming each
//! thread. Each [`SpanThread`] maps to its own `tid` in input order, and
//! timestamps are re-based per thread (each thread starts at `ts: 0`), so
//! the *structure* of the file — names, nesting, event order, tids — is a
//! deterministic function of the records alone. Wall-clock `ts`/`dur`
//! values naturally vary run to run; determinism gates normalize them
//! before diffing.

use crate::span::SpanThread;
use crate::write_atomic;
use std::io;
use std::path::Path;

/// Fractional microseconds with fixed three decimals, so identical
/// nanosecond inputs always format to identical bytes.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

/// Render span threads as a Chrome trace-event JSON array (a `String` so
/// tests can assert on bytes; see [`write_chrome_trace`] for the file
/// form). Records keep their input order within each thread.
pub fn to_chrome_json(threads: &[SpanThread]) -> String {
    let mut out = String::from("[\n");
    let mut first = true;
    for (i, thread) in threads.iter().enumerate() {
        let tid = i + 1;
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            thread.name
        ));
        let t0 = thread.records.iter().map(|r| r.start_ns).min().unwrap_or(0);
        for r in &thread.records {
            out.push_str(",\n");
            out.push_str(&format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{}\"}}",
                micros(r.start_ns - t0),
                micros(r.dur_ns),
                r.stage.name()
            ));
        }
    }
    out.push_str("\n]\n");
    out
}

/// Atomically write the Chrome trace for `threads` to `path`.
pub fn write_chrome_trace(path: &Path, threads: &[SpanThread]) -> io::Result<()> {
    write_atomic(path, to_chrome_json(threads).as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{SpanRecord, Stage};

    fn thread(name: &str, spans: &[(Stage, u64, u64)]) -> SpanThread {
        SpanThread {
            name: name.to_string(),
            records: spans
                .iter()
                .map(|&(stage, start_ns, dur_ns)| SpanRecord {
                    stage,
                    start_ns,
                    dur_ns,
                })
                .collect(),
        }
    }

    #[test]
    fn export_is_valid_json_with_expected_events() {
        let threads = vec![
            thread(
                "main",
                &[
                    (Stage::Scheduler, 1_500, 250),
                    (Stage::Segment, 1_000, 2_000),
                ],
            ),
            thread("job0", &[(Stage::PoolJob, 9_000, 500)]),
        ];
        let json = to_chrome_json(&threads);
        let v: serde::Value = serde_json::from_str(&json).unwrap();
        let serde::Value::Array(events) = v else {
            panic!("not an array")
        };
        // 2 metadata + 3 spans.
        assert_eq!(events.len(), 5);
        let json_str = json.as_str();
        assert!(json_str.contains("\"name\":\"segment\""));
        assert!(json_str.contains("\"args\":{\"name\":\"job0\"}"));
        // Per-thread re-basing: earliest record in each thread is ts 0.
        assert!(json_str.contains("\"ts\":0.000,\"dur\":2.000,\"name\":\"segment\""));
        assert!(json_str.contains("\"ts\":0.000,\"dur\":0.500,\"name\":\"pool_job\""));
        // And the scheduler span keeps its offset inside the segment.
        assert!(json_str.contains("\"ts\":0.500,\"dur\":0.250,\"name\":\"scheduler\""));
    }

    #[test]
    fn identical_inputs_export_identical_bytes() {
        let t = vec![thread("main", &[(Stage::Segment, 42, 10)])];
        assert_eq!(to_chrome_json(&t), to_chrome_json(&t.clone()));
    }

    #[test]
    fn empty_export_is_an_empty_array() {
        let v: serde::Value = serde_json::from_str(&to_chrome_json(&[])).unwrap();
        assert_eq!(v, serde::Value::Array(Vec::new()));
    }
}
