//! Run manifests: the provenance record written next to every result.

use crate::recorder::MetricsSnapshot;
use crate::span::STAGES;
use crate::timers::HostProfile;
use crate::write_atomic;
use serde::{Deserialize, Serialize, Value};
use std::io;
use std::path::{Path, PathBuf};

/// Everything needed to trace a result file back to its exact
/// configuration and reproduce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Producing binary, e.g. `"simulate"` or `"fig6_sser"`.
    pub tool: String,
    /// The repository's result-schema version (`relsim_bench::MODEL_VERSION`).
    pub model_version: u32,
    /// Scheduler name as reported by `Scheduler::name()`.
    pub scheduler: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Simulated duration in ticks.
    pub duration_ticks: u64,
    /// The experiment `Scale` as generic JSON (kept generic so obs does
    /// not depend on the core crate).
    pub scale: Value,
    /// The full `SystemConfig` as generic JSON.
    pub config: Value,
    /// Host wall time consumed by the run, in seconds.
    pub elapsed_seconds: f64,
    /// Host-time attribution per simulation phase.
    pub host_profile: HostProfile,
    /// Result/trace/metrics files this run produced.
    pub outputs: Vec<String>,
    /// Result-cache traffic during the run (`relsim_cache::CacheStats` as
    /// generic JSON), or `None` when caching was disabled. Manifests
    /// written before the cache existed deserialize with `None`.
    pub cache: Option<Value>,
    /// Stage-level self-profile of the run (see [`crate::span`]), or
    /// `None` when profiling was off. Manifests written before the
    /// profiler existed deserialize with `None`.
    pub stage_profile: Option<StageProfile>,
}

impl RunManifest {
    /// Start a manifest with the identity fields; callers fill in the
    /// timing and output fields as the run completes.
    pub fn new(tool: &str, model_version: u32, scheduler: &str, seed: u64) -> Self {
        RunManifest {
            tool: tool.to_string(),
            model_version,
            scheduler: scheduler.to_string(),
            seed,
            duration_ticks: 0,
            scale: Value::Null,
            config: Value::Null,
            elapsed_seconds: 0.0,
            host_profile: HostProfile {
                phases: Vec::new(),
                attributed_seconds: 0.0,
                elapsed_seconds: 0.0,
            },
            outputs: Vec::new(),
            cache: None,
            stage_profile: None,
        }
    }
}

/// Wall-time attribution for one instrumented stage (see [`crate::span`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageStat {
    /// Stage name, e.g. `"select_issue"`.
    pub stage: String,
    /// Total self-time attributed to the stage, across all cores and
    /// worker threads, in seconds.
    pub self_seconds: f64,
    /// Number of completed spans for the stage.
    pub calls: u64,
    /// Median span duration in nanoseconds (log2-bucket estimate).
    pub p50_ns: u64,
    /// 99th-percentile span duration in nanoseconds (log2-bucket estimate).
    pub p99_ns: u64,
}

/// The stage-level self-profile block of a [`RunManifest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StageProfile {
    /// Per-stage attribution, in fixed stage order, stages with zero
    /// self-time omitted.
    pub stages: Vec<StageStat>,
    /// Sum of all stage self-times in seconds. Because self-times
    /// partition the instrumented region, this equals the wall time spent
    /// inside the outermost spans.
    pub attributed_seconds: f64,
}

impl StageProfile {
    /// Rebuild the profile from the `prof.*` metrics a drained span
    /// profiler leaves in a [`MetricsSnapshot`]. Returns `None` when the
    /// snapshot carries no profiling data (profiling was off).
    pub fn from_snapshot(snap: &MetricsSnapshot) -> Option<StageProfile> {
        let mut stages = Vec::new();
        let mut total_ns = 0u64;
        for stage in STAGES {
            let suffix = format!(".{}.self_ns", stage.name());
            let self_ns: u64 = snap
                .counters
                .iter()
                .filter(|(n, _)| n.starts_with("prof.") && n.ends_with(&suffix))
                .map(|(_, v)| v)
                .sum();
            if self_ns == 0 {
                continue;
            }
            total_ns += self_ns;
            let hist_name = format!("prof.{}.span_ns", stage.name());
            let hist = snap.histograms.iter().find(|h| h.name == hist_name);
            stages.push(StageStat {
                stage: stage.name().to_string(),
                self_seconds: self_ns as f64 / 1e9,
                calls: hist.map(|h| h.count).unwrap_or(0),
                p50_ns: hist.map(|h| h.p50).unwrap_or(0),
                p99_ns: hist.map(|h| h.p99).unwrap_or(0),
            });
        }
        if stages.is_empty() {
            return None;
        }
        Some(StageProfile {
            stages,
            attributed_seconds: total_ns as f64 / 1e9,
        })
    }

    /// Self-seconds for a stage by name, if present.
    pub fn seconds(&self, stage: &str) -> Option<f64> {
        self.stages
            .iter()
            .find(|s| s.stage == stage)
            .map(|s| s.self_seconds)
    }
}

/// The manifest path for a result file: `foo.json` -> `foo.manifest.json`.
pub fn manifest_path(result: &Path) -> PathBuf {
    let stem = result
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "result".to_string());
    result.with_file_name(format!("{stem}.manifest.json"))
}

/// Atomically write `manifest` next to `result`, returning the path.
pub fn write_manifest(result: &Path, manifest: &RunManifest) -> io::Result<PathBuf> {
    let path = manifest_path(result);
    let bytes = serde_json::to_vec_pretty(manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_atomic(&path, &bytes)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_path_is_sibling_with_suffix() {
        assert_eq!(
            manifest_path(Path::new("out/fig6_sser.json")),
            PathBuf::from("out/fig6_sser.manifest.json")
        );
    }

    #[test]
    fn manifest_round_trips() {
        let mut m = RunManifest::new("simulate", 3, "sampling-sser", 2017);
        m.duration_ticks = 1_200_000;
        m.scale = Value::Object(vec![(
            "run_ticks".to_string(),
            Value::Number(serde::Number::PosInt(1_200_000)),
        )]);
        m.outputs = vec!["trace.jsonl".to_string()];
        let bytes = serde_json::to_vec(&m).unwrap();
        let back: RunManifest = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn stage_profile_from_snapshot_sums_cores_in_stage_order() {
        use crate::recorder::Recorder;
        let mut rec = Recorder::new();
        // Register out of stage order and split across cores + host.
        for (name, v) in [
            ("prof.core1.commit.self_ns", 2_000_000_000u64),
            ("prof.host.scheduler.self_ns", 500_000_000),
            ("prof.core0.fetch.self_ns", 1_000_000_000),
            ("prof.core1.fetch.self_ns", 3_000_000_000),
        ] {
            let id = rec.counter(name);
            rec.add(id, v);
        }
        let h = rec.histogram("prof.fetch.span_ns");
        for _ in 0..10 {
            rec.observe(h, 1_000);
        }
        let p = StageProfile::from_snapshot(&rec.snapshot()).unwrap();
        let names: Vec<&str> = p.stages.iter().map(|s| s.stage.as_str()).collect();
        assert_eq!(names, ["fetch", "commit", "scheduler"]);
        assert_eq!(p.seconds("fetch"), Some(4.0));
        assert_eq!(p.stages[0].calls, 10);
        assert!((p.attributed_seconds - 6.5).abs() < 1e-9);
        // No prof metrics at all -> no profile.
        assert_eq!(
            StageProfile::from_snapshot(&Recorder::new().snapshot()),
            None
        );
    }

    #[test]
    fn manifest_without_stage_profile_deserializes_to_none() {
        let mut m = RunManifest::new("simulate", 3, "static", 7);
        m.stage_profile = Some(StageProfile {
            stages: vec![StageStat {
                stage: "fetch".into(),
                self_seconds: 1.5,
                calls: 42,
                p50_ns: 100,
                p99_ns: 900,
            }],
            attributed_seconds: 1.5,
        });
        let bytes = serde_json::to_vec(&m).unwrap();
        let back: RunManifest = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, m);
        // Older manifests lack the key entirely.
        let legacy =
            String::from_utf8(serde_json::to_vec(&RunManifest::new("t", 3, "s", 1)).unwrap())
                .unwrap()
                .replace(",\"stage_profile\":null", "");
        assert!(!legacy.contains("stage_profile"));
        let back: RunManifest = serde_json::from_str(&legacy).unwrap();
        assert_eq!(back.stage_profile, None);
    }

    #[test]
    fn write_manifest_lands_next_to_result() {
        let dir = std::env::temp_dir().join(format!("relsim-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let result = dir.join("fig.json");
        let m = RunManifest::new("t", 3, "static", 1);
        let path = write_manifest(&result, &m).unwrap();
        assert_eq!(path, dir.join("fig.manifest.json"));
        let back: RunManifest = serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
