//! Run manifests: the provenance record written next to every result.

use crate::timers::HostProfile;
use crate::write_atomic;
use serde::{Deserialize, Serialize, Value};
use std::io;
use std::path::{Path, PathBuf};

/// Everything needed to trace a result file back to its exact
/// configuration and reproduce it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Producing binary, e.g. `"simulate"` or `"fig6_sser"`.
    pub tool: String,
    /// The repository's result-schema version (`relsim_bench::MODEL_VERSION`).
    pub model_version: u32,
    /// Scheduler name as reported by `Scheduler::name()`.
    pub scheduler: String,
    /// Master seed of the run.
    pub seed: u64,
    /// Simulated duration in ticks.
    pub duration_ticks: u64,
    /// The experiment `Scale` as generic JSON (kept generic so obs does
    /// not depend on the core crate).
    pub scale: Value,
    /// The full `SystemConfig` as generic JSON.
    pub config: Value,
    /// Host wall time consumed by the run, in seconds.
    pub elapsed_seconds: f64,
    /// Host-time attribution per simulation phase.
    pub host_profile: HostProfile,
    /// Result/trace/metrics files this run produced.
    pub outputs: Vec<String>,
    /// Result-cache traffic during the run (`relsim_cache::CacheStats` as
    /// generic JSON), or `None` when caching was disabled. Manifests
    /// written before the cache existed deserialize with `None`.
    pub cache: Option<Value>,
}

impl RunManifest {
    /// Start a manifest with the identity fields; callers fill in the
    /// timing and output fields as the run completes.
    pub fn new(tool: &str, model_version: u32, scheduler: &str, seed: u64) -> Self {
        RunManifest {
            tool: tool.to_string(),
            model_version,
            scheduler: scheduler.to_string(),
            seed,
            duration_ticks: 0,
            scale: Value::Null,
            config: Value::Null,
            elapsed_seconds: 0.0,
            host_profile: HostProfile {
                phases: Vec::new(),
                attributed_seconds: 0.0,
                elapsed_seconds: 0.0,
            },
            outputs: Vec::new(),
            cache: None,
        }
    }
}

/// The manifest path for a result file: `foo.json` -> `foo.manifest.json`.
pub fn manifest_path(result: &Path) -> PathBuf {
    let stem = result
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "result".to_string());
    result.with_file_name(format!("{stem}.manifest.json"))
}

/// Atomically write `manifest` next to `result`, returning the path.
pub fn write_manifest(result: &Path, manifest: &RunManifest) -> io::Result<PathBuf> {
    let path = manifest_path(result);
    let bytes = serde_json::to_vec_pretty(manifest)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    write_atomic(&path, &bytes)?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_path_is_sibling_with_suffix() {
        assert_eq!(
            manifest_path(Path::new("out/fig6_sser.json")),
            PathBuf::from("out/fig6_sser.manifest.json")
        );
    }

    #[test]
    fn manifest_round_trips() {
        let mut m = RunManifest::new("simulate", 3, "sampling-sser", 2017);
        m.duration_ticks = 1_200_000;
        m.scale = Value::Object(vec![(
            "run_ticks".to_string(),
            Value::Number(serde::Number::PosInt(1_200_000)),
        )]);
        m.outputs = vec!["trace.jsonl".to_string()];
        let bytes = serde_json::to_vec(&m).unwrap();
        let back: RunManifest = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn write_manifest_lands_next_to_result() {
        let dir = std::env::temp_dir().join(format!("relsim-manifest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let result = dir.join("fig.json");
        let m = RunManifest::new("t", 3, "static", 1);
        let path = write_manifest(&result, &m).unwrap();
        assert_eq!(path, dir.join("fig.manifest.json"));
        let back: RunManifest = serde_json::from_slice(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(back, m);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
