//! Structured event log: the `Event` enum and pluggable sinks.
//!
//! Events serialize to one compact JSON object per line (JSONL). Field
//! order is declaration order and floats use shortest round-trip
//! formatting, so the byte stream is a deterministic function of the
//! run's inputs — two same-seed runs produce byte-identical logs.

use serde::{Deserialize, Serialize};
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;

/// One simulation event. Every variant carries `tick`, the global
/// simulated time at which it occurred.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Event {
    /// A traced run began.
    RunStart {
        tick: u64,
        scheduler: String,
        cores: usize,
        apps: usize,
        quantum_ticks: u64,
        duration_ticks: u64,
    },
    /// A scheduling quantum (segment) began.
    QuantumStart {
        tick: u64,
        index: u64,
        mapping: Vec<usize>,
        is_sampling: bool,
    },
    /// The scheduler committed to a mapping, with the objective values
    /// that justified it. `predicted_objective` is the objective the
    /// scheduler expects from the chosen mapping; `baseline_objective` is
    /// the value of keeping the previous mapping (absent for schedulers
    /// that do not predict, e.g. random).
    SchedulerDecision {
        tick: u64,
        mapping: Vec<usize>,
        predicted_objective: Option<f64>,
        baseline_objective: Option<f64>,
        reason: String,
    },
    /// An application moved between cores at a quantum boundary.
    /// `from_core` is `None` when the application enters from the
    /// unscheduled pool rather than from another core.
    Migration {
        tick: u64,
        app: usize,
        from_core: Option<usize>,
        to_core: usize,
    },
    /// A sampling quantum produced fresh per-app measurements.
    SampleTaken {
        tick: u64,
        app: usize,
        core: usize,
        cpi: f64,
        abc_rate: f64,
        instructions: u64,
    },
    /// The interval-sampling engine is active for this run: scheduler
    /// segments alternate `detailed_ticks` of cycle-level simulation with
    /// (nominally) `ff_ticks` of functional fast-forward. Emitted once,
    /// right after `RunStart`.
    SamplingPlan {
        tick: u64,
        detailed_ticks: u64,
        ff_ticks: u64,
        seed: u64,
    },
    /// Per-run summary of the interval-sampling engine: how many ticks ran
    /// in detail vs. fast-forward, and the relative standard error of the
    /// per-window IPC and ABC-rate estimates the extrapolation rests on
    /// (NaN when fewer than two windows were observed). Emitted right
    /// before `RunEnd`.
    SamplingSummary {
        tick: u64,
        detailed_ticks: u64,
        ff_ticks: u64,
        windows: u64,
        ipc_rel_stderr: f64,
        abc_rel_stderr: f64,
    },
    /// A fault-injection campaign injected one fault.
    FaultInjected {
        tick: u64,
        injection: u64,
        structure: String,
        outcome: String,
    },
    /// Outcome totals of a run's active fault campaign under a
    /// reliability mode (DESIGN.md §15). Emitted after the per-fault
    /// `FaultInjected` events, right before `RunEnd`.
    ReliabilitySummary {
        tick: u64,
        mode: String,
        faults: u64,
        masked: u64,
        recovered_rollback: u64,
        recovered_replica: u64,
        sdc: u64,
        overhead_ticks: u64,
    },
    /// A parallel experiment job panicked. The pool catches the panic,
    /// records this event at the job's grid position, and lets the
    /// remaining jobs finish.
    JobFailed {
        tick: u64,
        job: u64,
        label: String,
        error: String,
    },
    /// A grid job was served from the content-addressed result cache
    /// instead of being recomputed. `tier` names where the payload came
    /// from (`"memory"` or `"disk"`); the job's original event stream is
    /// replayed right after this marker, so a warm trace carries the same
    /// simulation events as a cold one.
    CacheHit {
        tick: u64,
        key: String,
        tier: String,
        bytes: u64,
    },
    /// A grid job's key was not in the result cache; the job computed.
    CacheMiss { tick: u64, key: String },
    /// A freshly computed result was written to the result cache (emitted
    /// after the job's own events).
    CacheStore { tick: u64, key: String, bytes: u64 },
    /// A traced run finished.
    RunEnd {
        tick: u64,
        quanta: u64,
        migrations: u64,
        instructions: u64,
    },
}

impl Event {
    /// The simulated tick the event is stamped with.
    pub fn tick(&self) -> u64 {
        match self {
            Event::RunStart { tick, .. }
            | Event::QuantumStart { tick, .. }
            | Event::SchedulerDecision { tick, .. }
            | Event::Migration { tick, .. }
            | Event::SampleTaken { tick, .. }
            | Event::SamplingPlan { tick, .. }
            | Event::SamplingSummary { tick, .. }
            | Event::FaultInjected { tick, .. }
            | Event::ReliabilitySummary { tick, .. }
            | Event::JobFailed { tick, .. }
            | Event::CacheHit { tick, .. }
            | Event::CacheMiss { tick, .. }
            | Event::CacheStore { tick, .. }
            | Event::RunEnd { tick, .. } => *tick,
        }
    }

    /// The variant name, e.g. `"SchedulerDecision"`.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::RunStart { .. } => "RunStart",
            Event::QuantumStart { .. } => "QuantumStart",
            Event::SchedulerDecision { .. } => "SchedulerDecision",
            Event::Migration { .. } => "Migration",
            Event::SampleTaken { .. } => "SampleTaken",
            Event::SamplingPlan { .. } => "SamplingPlan",
            Event::SamplingSummary { .. } => "SamplingSummary",
            Event::FaultInjected { .. } => "FaultInjected",
            Event::ReliabilitySummary { .. } => "ReliabilitySummary",
            Event::JobFailed { .. } => "JobFailed",
            Event::CacheHit { .. } => "CacheHit",
            Event::CacheMiss { .. } => "CacheMiss",
            Event::CacheStore { .. } => "CacheStore",
            Event::RunEnd { .. } => "RunEnd",
        }
    }

    /// The event as one compact JSONL line (no trailing newline).
    pub fn to_jsonl(&self) -> String {
        serde_json::to_string(self).expect("event serialization cannot fail")
    }
}

/// Destination for a stream of events.
pub trait EventSink {
    fn emit(&mut self, event: &Event);

    /// Flush any buffered output. Sinks without buffers ignore this.
    fn flush(&mut self) {}

    /// Whether emitted events are discarded. Lets producers (e.g. the job
    /// pool) skip buffering when nobody will read the stream.
    fn is_null(&self) -> bool {
        false
    }

    /// Hand back the buffered events, if this sink buffers them
    /// ([`MemorySink`] does). Used to replay per-job streams into a shared
    /// sink in deterministic grid order.
    fn take_events(&mut self) -> Option<Vec<Event>> {
        None
    }
}

/// Discards everything. The default for untraced runs.
pub struct NullSink;

impl EventSink for NullSink {
    #[inline]
    fn emit(&mut self, _event: &Event) {}

    fn is_null(&self) -> bool {
        true
    }
}

/// Keeps events in memory, preserving emission order. For tests and for
/// per-job buffering in the parallel experiment pool.
#[derive(Debug, Default)]
pub struct MemorySink {
    pub events: Vec<Event>,
}

impl MemorySink {
    pub fn new() -> Self {
        Self::default()
    }
}

impl EventSink for MemorySink {
    fn emit(&mut self, event: &Event) {
        self.events.push(event.clone());
    }

    fn take_events(&mut self) -> Option<Vec<Event>> {
        Some(std::mem::take(&mut self.events))
    }
}

/// Writes one JSON object per line to any `Write`.
pub struct JsonlSink<W: Write> {
    writer: W,
}

impl<W: Write> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink { writer }
    }

    /// Consume the sink and get the writer back (after flushing).
    pub fn into_inner(mut self) -> W {
        let _ = self.writer.flush();
        self.writer
    }
}

impl<W: Write> EventSink for JsonlSink<W> {
    fn emit(&mut self, event: &Event) {
        let line = event.to_jsonl();
        let _ = self.writer.write_all(line.as_bytes());
        let _ = self.writer.write_all(b"\n");
    }

    fn flush(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Open a buffered JSONL file sink, creating parent directories.
pub fn file_sink(path: &Path) -> io::Result<JsonlSink<BufWriter<File>>> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        vec![
            Event::RunStart {
                tick: 0,
                scheduler: "sampling-sser".into(),
                cores: 4,
                apps: 4,
                quantum_ticks: 20_000,
                duration_ticks: 100_000,
            },
            Event::QuantumStart {
                tick: 0,
                index: 0,
                mapping: vec![0, 1, 2, 3],
                is_sampling: true,
            },
            Event::SamplingPlan {
                tick: 0,
                detailed_ticks: 2_000,
                ff_ticks: 8_000,
                seed: 0,
            },
            Event::CacheMiss {
                tick: 0,
                key: "000000000000000000000000deadbeef".into(),
            },
            Event::CacheStore {
                tick: 0,
                key: "000000000000000000000000deadbeef".into(),
                bytes: 4096,
            },
            Event::CacheHit {
                tick: 0,
                key: "000000000000000000000000deadbeef".into(),
                tier: "memory".into(),
                bytes: 4096,
            },
            Event::SampleTaken {
                tick: 20_000,
                app: 1,
                core: 0,
                cpi: 1.25,
                abc_rate: 0.4,
                instructions: 16_000,
            },
            Event::SchedulerDecision {
                tick: 20_000,
                mapping: vec![1, 0, 2, 3],
                predicted_objective: Some(3.5e-4),
                baseline_objective: Some(4.1e-4),
                reason: "switch apps 0<->1: gain 14.6% over threshold".into(),
            },
            Event::Migration {
                tick: 20_000,
                app: 0,
                from_core: Some(0),
                to_core: 1,
            },
            Event::SamplingSummary {
                tick: 100_000,
                detailed_ticks: 24_000,
                ff_ticks: 76_000,
                windows: 12,
                ipc_rel_stderr: 0.013,
                abc_rel_stderr: 0.021,
            },
            Event::ReliabilitySummary {
                tick: 100_000,
                mode: "checkpoint".into(),
                faults: 1_000,
                masked: 600,
                recovered_rollback: 400,
                recovered_replica: 0,
                sdc: 0,
                overhead_ticks: 12_345,
            },
            Event::RunEnd {
                tick: 100_000,
                quanta: 5,
                migrations: 2,
                instructions: 250_000,
            },
        ]
    }

    #[test]
    fn memory_sink_preserves_emission_order() {
        let events = sample_events();
        let mut sink = MemorySink::new();
        for e in &events {
            sink.emit(e);
        }
        assert_eq!(sink.events, events);
        // Ticks are non-decreasing in a well-formed stream.
        let ticks: Vec<u64> = sink.events.iter().map(Event::tick).collect();
        let mut sorted = ticks.clone();
        sorted.sort_unstable();
        assert_eq!(ticks, sorted);
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        for original in sample_events() {
            let line = original.to_jsonl();
            assert!(!line.contains('\n'), "JSONL line must be single-line");
            let back: Event = serde_json::from_str(&line).unwrap();
            assert_eq!(back, original);
        }
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        let events = sample_events();
        for e in &events {
            sink.emit(e);
        }
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), events.len());
        for (line, original) in lines.iter().zip(&events) {
            let back: Event = serde_json::from_str(line).unwrap();
            assert_eq!(&back, original);
        }
    }

    #[test]
    fn identical_event_streams_serialize_to_identical_bytes() {
        let write = || {
            let mut sink = JsonlSink::new(Vec::new());
            for e in sample_events() {
                sink.emit(&e);
            }
            sink.into_inner()
        };
        assert_eq!(write(), write());
    }
}
