//! relsim-obs: the observability layer threaded through the simulation
//! stack.
//!
//! The simulator used to report results only as end-of-run aggregates and
//! scattered stderr prints. This crate gives every run four structured
//! views instead:
//!
//! 1. a [`Recorder`] — named counters, gauges, and log2-bucketed
//!    histograms, cheap enough to update inside the simulation loop and
//!    snapshotable to JSON ([`MetricsSnapshot`]);
//! 2. a structured JSONL event log — an [`Event`] per scheduler decision,
//!    migration, sample, quantum boundary, or injected fault, each
//!    carrying its simulated-tick timestamp, written through a pluggable
//!    [`EventSink`] (file, in-memory for tests, or null). Event bytes are
//!    a deterministic function of the run's seed, so determinism tests can
//!    assert byte-identical logs;
//! 3. scope timers ([`PhaseTimers`]) that attribute host wall-time to
//!    simulation phases and report a [`HostProfile`] per run;
//! 4. a [`RunManifest`] written next to every result JSON, capturing the
//!    full system configuration, scheduler, seed, scale, and elapsed time
//!    so any figure can be traced back to its exact configuration.
//!
//! Entry points for binaries live in [`ObsArgs`] (`--trace-out`,
//! `--metrics-out`, `--quiet`, `--log-level`) and the [`error!`],
//! [`warn!`], [`info!`], [`debug!`] logging macros, which write progress
//! to stderr so stdout stays machine-parseable.

pub mod alloc;
pub mod chrome;
pub mod cli;
pub mod events;
pub mod log;
pub mod manifest;
pub mod recorder;
pub mod span;
pub mod timers;

pub use chrome::{to_chrome_json, write_chrome_trace};
pub use cli::{ObsArgs, OBS_HELP};
pub use events::{file_sink, Event, EventSink, JsonlSink, MemorySink, NullSink};
pub use manifest::{manifest_path, write_manifest, RunManifest, StageProfile, StageStat};
pub use recorder::{
    CounterId, GaugeId, Histogram, HistogramId, HistogramSnapshot, MetricsSnapshot, Recorder,
};
pub use span::{SpanRecord, SpanThread, Stage};
pub use timers::{HostProfile, Phase, PhaseTimers};

pub use log::{log_level, set_log_level, LogLevel};

use std::io;
use std::path::Path;

/// Everything a traced run carries: the event sink, the metrics
/// recorder, the host-time phase timers, and any span threads drained
/// from the profiler. `RunObs::disabled()` is the zero-overhead default
/// used by untraced runs.
pub struct RunObs {
    pub sink: Box<dyn EventSink>,
    pub recorder: Recorder,
    pub timers: PhaseTimers,
    /// Completed span threads (see [`span`]): one per logical unit of
    /// work, merged in deterministic grid order by the parallel pool.
    pub spans: Vec<SpanThread>,
}

impl RunObs {
    /// A null-sink observer: events are dropped, metrics and timers still
    /// accumulate (both are cheap — a handful of adds per quantum).
    pub fn disabled() -> Self {
        Self::with_sink(Box::new(NullSink))
    }

    /// Observe a run through the given sink.
    pub fn with_sink(sink: Box<dyn EventSink>) -> Self {
        RunObs {
            sink,
            recorder: Recorder::new(),
            timers: PhaseTimers::new(),
            spans: Vec::new(),
        }
    }

    /// An observer that buffers events in memory (a [`MemorySink`]) so
    /// they can be taken back with `sink.take_events()` and replayed into
    /// another sink later. Used for per-job observation in the parallel
    /// experiment pool.
    pub fn buffered() -> Self {
        Self::with_sink(Box::new(MemorySink::new()))
    }

    /// Emit one event to the sink.
    #[inline]
    pub fn emit(&mut self, event: Event) {
        self.sink.emit(&event);
    }

    /// Drain the calling thread's span-profiler state into this observer:
    /// self-times and stage histograms fold into the recorder (as
    /// `prof.*` metrics), and trace records become a [`SpanThread`] named
    /// `thread_name` (only pushed when records were collected). Call once
    /// per unit of work, on the thread that did the work.
    pub fn absorb_spans(&mut self, thread_name: &str) {
        let mut records = Vec::new();
        span::drain_into(&mut self.recorder, &mut records);
        if !records.is_empty() {
            self.spans.push(SpanThread {
                name: thread_name.to_string(),
                records,
            });
        }
    }
}

impl Default for RunObs {
    fn default() -> Self {
        Self::disabled()
    }
}

/// Write `bytes` to `path` atomically: parent directories are created if
/// missing and the content lands via a temp file + rename, so a reader
/// (or a concurrent writer of the same figure) never sees a partial file.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(
        ".{}.tmp-{}",
        file_name.to_string_lossy(),
        std::process::id()
    ));
    std::fs::write(&tmp, bytes)?;
    match std::fs::rename(&tmp, path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_atomic_creates_directories() {
        let dir = std::env::temp_dir().join(format!("relsim-obs-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("deep/nested/out.json");
        write_atomic(&path, b"{}").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"{}");
        // Overwrite works and leaves no temp files behind.
        write_atomic(&path, b"[1]").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"[1]");
        let siblings: Vec<_> = std::fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(siblings.len(), 1, "temp files left behind: {siblings:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
