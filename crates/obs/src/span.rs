//! Hierarchical span tracing and the stage-level self-profiler.
//!
//! The detailed engine is the repo's wall-time sink, but until this module
//! existed nothing could say *which stage* of it dominates. Spans answer
//! that with two coordinated views:
//!
//! 1. **Self-time profile**: every `enter`/`exit` boundary charges the
//!    wall time since the previous boundary to the stage on top of the
//!    thread's span stack. Self-times are therefore an *exact partition*
//!    of the instrumented region — summing the per-stage totals
//!    reconstructs the region's wall time with no double counting, which
//!    is what lets the profiler attribute >95% of detailed-engine time to
//!    named stages. Totals are kept per `(core, stage)` (see
//!    [`set_core`]) plus a log2 histogram of span durations per stage.
//! 2. **Trace records**: coarse stages (segments, sampling windows,
//!    scheduler calls, pool jobs, cache traffic) additionally push a
//!    [`SpanRecord`] on exit, exportable as a Chrome trace-event JSON
//!    (see [`crate::chrome`]). Hot per-tick stages never record
//!    individual spans — a million-tick run would produce an unloadable
//!    trace — instead [`exit_with_rollup`] synthesizes one back-to-back
//!    child span per hot stage when a sampling window closes.
//!
//! # Cost contract
//!
//! Everything is off by default. The disabled path of every entry point
//! is one `Relaxed` atomic load and a predictable branch; hot loops hoist
//! even that by reading [`enabled`] once per tick and branching on the
//! local bool (see [`scoped`]). The enabled path costs one `Instant`
//! read per boundary (~20-25 ns), so profiled runs are expected to be
//! roughly 1.5-2x slower than unprofiled ones — acceptable for a
//! measurement run, never paid by default.
//!
//! State is thread-local; the parallel pool drains each worker's state at
//! job boundaries ([`drain_into`]) and merges the results in grid order,
//! so profiles and traces honour the determinism contract structurally
//! (timestamps are wall times and are normalized on export).

use crate::recorder::{Histogram, Recorder};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// One instrumented stage. Hot stages (`is_hot() == true`) are per-tick
/// engine stages that only accumulate self-time; coarse stages also emit
/// one [`SpanRecord`] per span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    // Hot per-tick engine stages (accumulate only).
    /// Instruction fetch, including the L1I walk it triggers.
    Fetch,
    /// Rename + dispatch into the ROB/IQ (big core only).
    RenameDispatch,
    /// Waking dependents when results finish (big core only).
    Wakeup,
    /// Select + issue to functional units, including load cache access.
    SelectIssue,
    /// Functional-unit completion processing.
    FuExecute,
    /// Memory hierarchy walk (L1/L2/L3/DRAM) for data accesses.
    MemWalk,
    /// In-order commit / writeback, including store drain.
    Commit,
    /// Per-cycle CPI-stack accounting.
    CpiAccount,
    /// Event-horizon bookkeeping: `next_event` scans and `skip_to` jumps.
    SkipBookkeeping,
    /// Residual per-tick loop control in `System::run_traced` (cycle
    /// gating, stall checks, window bookkeeping) outside any finer stage.
    TickLoop,
    /// Functional fast-forward warming between detailed windows.
    FfWarm,
    // Coarse stages (accumulate + one trace record per span).
    /// One scheduling quantum end to end.
    Segment,
    /// One detailed (cycle-level) sampling window.
    DetailedWindow,
    /// One functional fast-forward window.
    FfWindow,
    /// Scheduler work: `next_segment` decisions and `observe` calls.
    Scheduler,
    /// Applying migrations at a quantum boundary.
    Migration,
    /// One job's lifetime inside the parallel experiment pool.
    PoolJob,
    /// Result-cache key lookup (memory + disk tiers).
    CacheLookup,
    /// Writing a freshly computed bundle into the result cache.
    CacheStore,
}

/// Every stage, in the fixed order used for drains and reports.
pub const STAGES: [Stage; 19] = [
    Stage::Fetch,
    Stage::RenameDispatch,
    Stage::Wakeup,
    Stage::SelectIssue,
    Stage::FuExecute,
    Stage::MemWalk,
    Stage::Commit,
    Stage::CpiAccount,
    Stage::SkipBookkeeping,
    Stage::TickLoop,
    Stage::FfWarm,
    Stage::Segment,
    Stage::DetailedWindow,
    Stage::FfWindow,
    Stage::Scheduler,
    Stage::Migration,
    Stage::PoolJob,
    Stage::CacheLookup,
    Stage::CacheStore,
];

const NUM_STAGES: usize = STAGES.len();

impl Stage {
    /// Stable snake_case name used in metrics, manifests, and traces.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Fetch => "fetch",
            Stage::RenameDispatch => "rename_dispatch",
            Stage::Wakeup => "wakeup",
            Stage::SelectIssue => "select_issue",
            Stage::FuExecute => "fu_execute",
            Stage::MemWalk => "mem_walk",
            Stage::Commit => "commit",
            Stage::CpiAccount => "cpi_account",
            Stage::SkipBookkeeping => "skip_bookkeeping",
            Stage::TickLoop => "tick_loop",
            Stage::FfWarm => "ff_warm",
            Stage::Segment => "segment",
            Stage::DetailedWindow => "detailed_window",
            Stage::FfWindow => "ff_window",
            Stage::Scheduler => "scheduler",
            Stage::Migration => "migration",
            Stage::PoolJob => "pool_job",
            Stage::CacheLookup => "cache_lookup",
            Stage::CacheStore => "cache_store",
        }
    }

    /// Whether this is a hot per-tick stage (accumulate-only; no
    /// individual trace records — see [`exit_with_rollup`]).
    pub fn is_hot(self) -> bool {
        (self as usize) <= (Stage::FfWarm as usize)
    }

    fn index(self) -> usize {
        self as usize
    }
}

/// One completed coarse span, ready for Chrome-trace export. Timestamps
/// are nanoseconds relative to the process-wide epoch (first span use).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The stage this span instrumented.
    pub stage: Stage,
    /// Start time, nanoseconds since the span epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
}

/// A named sequence of span records from one logical thread of work (the
/// main run, or one pool job). The Chrome export maps each to a `tid`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanThread {
    /// Display name, e.g. `"main"` or `"job3"`.
    pub name: String,
    /// Records in completion order (children before parents).
    pub records: Vec<SpanRecord>,
}

/// Master switch: true when profiling and/or tracing is on. This is the
/// only thing hot paths read.
static ENABLED: AtomicBool = AtomicBool::new(false);
/// Whether coarse spans should collect trace records (implies profiling).
static TRACING: AtomicBool = AtomicBool::new(false);

/// Process-wide time origin for span timestamps, fixed on first use so
/// records from different threads share one clock.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

#[inline]
fn now_ns() -> u64 {
    epoch().elapsed().as_nanos() as u64
}

/// Turn the stage profiler on or off process-wide. Call before spawning
/// pool workers (like `relsim::pool::set_default_jobs`).
pub fn set_profiling(on: bool) {
    if !on {
        TRACING.store(false, Ordering::SeqCst);
    }
    ENABLED.store(on || TRACING.load(Ordering::SeqCst), Ordering::SeqCst);
}

/// Turn span trace-record collection on or off process-wide. Tracing
/// implies profiling (self-times feed the window rollups).
pub fn set_tracing(on: bool) {
    TRACING.store(on, Ordering::SeqCst);
    if on {
        ENABLED.store(true, Ordering::SeqCst);
    }
}

/// Whether any span work is enabled. Hot loops read this once per tick
/// and pass the bool to [`scoped`].
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether trace records are being collected.
#[inline]
pub fn tracing() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Per-thread span state.
struct ThreadState {
    /// Open spans: (stage, start_ns, rollup base index or usize::MAX).
    stack: Vec<(Stage, u64, usize)>,
    /// Time of the last enter/exit boundary, for self-time charging.
    last_boundary_ns: u64,
    /// Allocation count at the last enter/exit boundary (see
    /// [`crate::alloc::alloc_count`]; stays 0 without an installed
    /// counting allocator).
    last_boundary_allocs: u64,
    /// Current core slot: 0 = no core ("host"), i+1 = core i.
    core_slot: usize,
    /// Self-time ns per (core slot, stage), grown on demand.
    self_ns: Vec<[u64; NUM_STAGES]>,
    /// Heap-allocation events per (core slot, stage), charged at the
    /// same boundaries as `self_ns`. All zero unless the binary installs
    /// [`crate::alloc::CountingAlloc`], in which case each stage's count
    /// answers "does this stage allocate in steady state?".
    self_allocs: Vec<[u64; NUM_STAGES]>,
    /// Span-duration histogram per stage.
    hist: Vec<Histogram>,
    /// Completed coarse-span records, in completion order.
    records: Vec<SpanRecord>,
    /// Rollup snapshots (summed self-time per stage) for open windows.
    rollup_bases: Vec<[u64; NUM_STAGES]>,
}

impl ThreadState {
    fn new() -> Self {
        ThreadState {
            stack: Vec::with_capacity(16),
            last_boundary_ns: 0,
            last_boundary_allocs: 0,
            core_slot: 0,
            self_ns: vec![[0; NUM_STAGES]],
            self_allocs: vec![[0; NUM_STAGES]],
            hist: vec![Histogram::new(); NUM_STAGES],
            records: Vec::new(),
            rollup_bases: Vec::new(),
        }
    }

    #[inline]
    fn charge_to_top(&mut self, now: u64) {
        let allocs = crate::alloc::alloc_count();
        if let Some(&(top, _, _)) = self.stack.last() {
            let dt = now.saturating_sub(self.last_boundary_ns);
            self.self_ns[self.core_slot][top.index()] += dt;
            let da = allocs.saturating_sub(self.last_boundary_allocs);
            self.self_allocs[self.core_slot][top.index()] += da;
        }
        self.last_boundary_ns = now;
        self.last_boundary_allocs = allocs;
    }

    /// Charge elapsed time and allocation events since the last boundary
    /// to `stage` (the span being exited). Reads the allocation counter
    /// before any profiler-internal bookkeeping so the profiler's own
    /// pushes are not charged to the stage.
    #[inline]
    fn charge_exit(&mut self, now: u64, stage: Stage) {
        let allocs = crate::alloc::alloc_count();
        let dt = now.saturating_sub(self.last_boundary_ns);
        let slot = self.core_slot;
        self.self_ns[slot][stage.index()] += dt;
        let da = allocs.saturating_sub(self.last_boundary_allocs);
        self.self_allocs[slot][stage.index()] += da;
        self.last_boundary_ns = now;
        self.last_boundary_allocs = allocs;
    }

    /// Summed self-time per stage across all core slots.
    fn totals(&self) -> [u64; NUM_STAGES] {
        let mut out = [0u64; NUM_STAGES];
        for per_core in &self.self_ns {
            for (o, v) in out.iter_mut().zip(per_core.iter()) {
                *o += v;
            }
        }
        out
    }
}

thread_local! {
    static STATE: std::cell::RefCell<ThreadState> =
        std::cell::RefCell::new(ThreadState::new());
}

/// Set the core the current thread is simulating, so self-times can be
/// attributed per core. Pass `None` between cores (scheduler, windows).
#[inline]
pub fn set_core(core: Option<usize>) {
    if !enabled() {
        return;
    }
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let slot = core.map(|c| c + 1).unwrap_or(0);
        while st.self_ns.len() <= slot {
            st.self_ns.push([0; NUM_STAGES]);
            st.self_allocs.push([0; NUM_STAGES]);
        }
        st.core_slot = slot;
    });
}

/// Open a span for `stage`. Must be paired with [`exit`] on the same
/// thread, in LIFO order.
#[inline]
pub fn enter(stage: Stage) {
    if !enabled() {
        return;
    }
    enter_enabled(stage);
}

fn enter_enabled(stage: Stage) {
    let now = now_ns();
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        st.charge_to_top(now);
        st.stack.push((stage, now, usize::MAX));
    });
}

/// Open a window span (detailed or fast-forward) whose [`exit_with_rollup`]
/// will synthesize child spans for the hot stages that ran inside it.
pub fn enter_window(stage: Stage) {
    if !enabled() {
        return;
    }
    let now = now_ns();
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        st.charge_to_top(now);
        let totals = st.totals();
        st.rollup_bases.push(totals);
        let base = st.rollup_bases.len() - 1;
        st.stack.push((stage, now, base));
    });
}

/// Close the innermost span, which must be for `stage`. Charges the time
/// since the last boundary to `stage`, observes the span duration in the
/// stage histogram, and — for coarse stages when tracing — pushes a
/// [`SpanRecord`].
#[inline]
pub fn exit(stage: Stage) {
    if !enabled() {
        return;
    }
    exit_enabled(stage);
}

fn exit_enabled(stage: Stage) {
    let now = now_ns();
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let Some((top, start_ns, _)) = st.stack.pop() else {
            debug_assert!(false, "span::exit({stage:?}) with empty stack");
            return;
        };
        debug_assert_eq!(top, stage, "span::exit out of order");
        st.charge_exit(now, top);
        st.hist[top.index()].observe(now.saturating_sub(start_ns));
        if !top.is_hot() && tracing() {
            st.records.push(SpanRecord {
                stage: top,
                start_ns,
                dur_ns: now.saturating_sub(start_ns),
            });
        }
    });
}

/// Close a window opened with [`enter_window`]. In addition to the normal
/// [`exit`] work, when tracing it synthesizes one child record per hot
/// stage from the self-time accumulated inside the window, laid
/// back-to-back from the window start (children are appended before the
/// window's own record, preserving completion order). Because self-times
/// partition wall time, the children always fit inside the window span.
pub fn exit_with_rollup(stage: Stage) {
    if !enabled() {
        return;
    }
    let now = now_ns();
    STATE.with(|s| {
        let mut st = s.borrow_mut();
        let Some((top, start_ns, base)) = st.stack.pop() else {
            debug_assert!(false, "span::exit_with_rollup({stage:?}) with empty stack");
            return;
        };
        debug_assert_eq!(top, stage, "span::exit_with_rollup out of order");
        st.charge_exit(now, top);
        st.hist[top.index()].observe(now.saturating_sub(start_ns));
        let baseline = if base != usize::MAX {
            st.rollup_bases.truncate(base + 1);
            st.rollup_bases.pop()
        } else {
            None
        };
        if tracing() {
            if let Some(baseline) = baseline {
                let totals = st.totals();
                let mut cursor = start_ns;
                for st_stage in STAGES.iter().copied().filter(|s| s.is_hot()) {
                    let d = totals[st_stage.index()] - baseline[st_stage.index()];
                    if d == 0 {
                        continue;
                    }
                    st.records.push(SpanRecord {
                        stage: st_stage,
                        start_ns: cursor,
                        dur_ns: d,
                    });
                    cursor += d;
                }
            }
            st.records.push(SpanRecord {
                stage: top,
                start_ns,
                dur_ns: now.saturating_sub(start_ns),
            });
        }
    });
}

/// Run `f` inside a span for `stage` iff `active` — the hot-loop form:
/// read [`enabled`] once per tick, then branch on the local bool here.
#[inline(always)]
pub fn scoped<R>(active: bool, stage: Stage, f: impl FnOnce() -> R) -> R {
    if active {
        enter_enabled(stage);
    }
    let out = f();
    if active {
        exit_enabled(stage);
    }
    out
}

/// Run `f` inside a span for `stage`, checking the global flag itself.
/// For coarse, infrequent call sites (scheduler, cache, pool).
#[inline]
pub fn scope<R>(stage: Stage, f: impl FnOnce() -> R) -> R {
    scoped(enabled(), stage, f)
}

/// Clear the calling thread's span state (open stack, accumulators,
/// records). The pool calls this at job start so a panicked predecessor
/// can't leak half-open spans into the next job's profile.
pub fn reset_thread() {
    STATE.with(|s| {
        *s.borrow_mut() = ThreadState::new();
    });
}

/// Drain the calling thread's span state: fold self-times and duration
/// histograms into `recorder` under `prof.*` names, and append the
/// collected trace records to `records`. The thread state is reset.
///
/// Metric names: `prof.host.<stage>.self_ns` for time outside any core
/// context, `prof.core<i>.<stage>.self_ns` for time attributed to core
/// `i`, `prof.<slot>.<stage>.self_allocs` for heap-allocation events
/// charged at the same boundaries (nonzero only under an installed
/// [`crate::alloc::CountingAlloc`]), and one `prof.<stage>.span_ns`
/// histogram per stage. Only nonzero entries are registered, in fixed
/// (slot, stage) order, so merged registries stay deterministic.
pub fn drain_into(recorder: &mut Recorder, records: &mut Vec<SpanRecord>) {
    let st = STATE.with(|s| std::mem::replace(&mut *s.borrow_mut(), ThreadState::new()));
    debug_assert!(
        st.stack.is_empty(),
        "draining with open spans: {:?}",
        st.stack
    );
    for (slot, per_core) in st.self_ns.iter().enumerate() {
        for stage in STAGES {
            let ns = per_core[stage.index()];
            if ns == 0 {
                continue;
            }
            let name = if slot == 0 {
                format!("prof.host.{}.self_ns", stage.name())
            } else {
                format!("prof.core{}.{}.self_ns", slot - 1, stage.name())
            };
            let id = recorder.counter(&name);
            recorder.add(id, ns);
        }
    }
    // Allocation counts, in the same fixed (slot, stage) order. These are
    // all zero — and hence absent — unless the binary installed
    // `crate::alloc::CountingAlloc` as its global allocator.
    for (slot, per_core) in st.self_allocs.iter().enumerate() {
        for stage in STAGES {
            let count = per_core[stage.index()];
            if count == 0 {
                continue;
            }
            let name = if slot == 0 {
                format!("prof.host.{}.self_allocs", stage.name())
            } else {
                format!("prof.core{}.{}.self_allocs", slot - 1, stage.name())
            };
            let id = recorder.counter(&name);
            recorder.add(id, count);
        }
    }
    for stage in STAGES {
        let h = &st.hist[stage.index()];
        if h.count() == 0 {
            continue;
        }
        let id = recorder.histogram(&format!("prof.{}.span_ns", stage.name()));
        recorder.fold_histogram(id, h);
    }
    records.extend(st.records);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialize the tests that flip the process-global flags.
    fn flag_guard() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn drained() -> (Recorder, Vec<SpanRecord>) {
        let mut rec = Recorder::new();
        let mut records = Vec::new();
        drain_into(&mut rec, &mut records);
        (rec, records)
    }

    #[test]
    fn disabled_spans_are_free_and_stateless() {
        let _g = flag_guard();
        set_profiling(false);
        reset_thread();
        enter(Stage::Fetch);
        exit(Stage::Fetch);
        let v = scoped(enabled(), Stage::Commit, || 7);
        assert_eq!(v, 7);
        let (rec, records) = drained();
        assert!(rec.snapshot().counters.is_empty());
        assert!(records.is_empty());
    }

    #[test]
    fn self_time_partitions_nested_spans() {
        let _g = flag_guard();
        set_profiling(true);
        reset_thread();
        enter(Stage::Segment);
        std::thread::sleep(std::time::Duration::from_millis(2));
        enter(Stage::Scheduler);
        std::thread::sleep(std::time::Duration::from_millis(2));
        exit(Stage::Scheduler);
        std::thread::sleep(std::time::Duration::from_millis(2));
        exit(Stage::Segment);
        set_profiling(false);
        let (rec, _) = drained();
        let snap = rec.snapshot();
        let seg = snap.counter("prof.host.segment.self_ns").unwrap();
        let sched = snap.counter("prof.host.scheduler.self_ns").unwrap();
        // Each stage saw ~2ms (segment: 2 x 2ms) of *self* time; the
        // scheduler time must not be double counted into the segment.
        assert!(sched >= 1_000_000, "scheduler self {sched}ns");
        assert!(seg >= 2_000_000, "segment self {seg}ns");
        // The segment span duration covers everything.
        let h = snap
            .histograms
            .iter()
            .find(|h| h.name == "prof.segment.span_ns")
            .unwrap();
        assert_eq!(h.count, 1);
        assert!(h.max >= seg + sched, "span {} >= {}", h.max, seg + sched);
    }

    #[test]
    fn per_core_attribution_follows_set_core() {
        let _g = flag_guard();
        set_profiling(true);
        reset_thread();
        set_core(Some(2));
        enter(Stage::Fetch);
        std::thread::sleep(std::time::Duration::from_millis(1));
        exit(Stage::Fetch);
        set_core(None);
        enter(Stage::Scheduler);
        exit(Stage::Scheduler);
        set_profiling(false);
        let (rec, _) = drained();
        let snap = rec.snapshot();
        assert!(snap.counter("prof.core2.fetch.self_ns").unwrap() >= 500_000);
        assert!(snap.counter("prof.host.scheduler.self_ns").is_some());
        assert!(snap.counter("prof.core0.fetch.self_ns").is_none());
    }

    #[test]
    fn hot_stages_record_no_spans_coarse_stages_do() {
        let _g = flag_guard();
        set_tracing(true);
        reset_thread();
        enter(Stage::Segment);
        for _ in 0..100 {
            enter(Stage::Fetch);
            exit(Stage::Fetch);
        }
        enter(Stage::Scheduler);
        exit(Stage::Scheduler);
        exit(Stage::Segment);
        set_tracing(false);
        set_profiling(false);
        let (_, records) = drained();
        let names: Vec<&str> = records.iter().map(|r| r.stage.name()).collect();
        // Completion order: scheduler closes before segment; no fetch.
        assert_eq!(names, ["scheduler", "segment"]);
        // Nesting: scheduler inside segment.
        let seg = &records[1];
        let sched = &records[0];
        assert!(sched.start_ns >= seg.start_ns);
        assert!(sched.start_ns + sched.dur_ns <= seg.start_ns + seg.dur_ns);
    }

    #[test]
    fn window_rollup_synthesizes_nested_children() {
        let _g = flag_guard();
        set_tracing(true);
        reset_thread();
        enter_window(Stage::DetailedWindow);
        for _ in 0..50 {
            enter(Stage::Fetch);
            exit(Stage::Fetch);
            enter(Stage::Commit);
            exit(Stage::Commit);
        }
        exit_with_rollup(Stage::DetailedWindow);
        set_tracing(false);
        set_profiling(false);
        let (_, records) = drained();
        let win = records.last().unwrap();
        assert_eq!(win.stage, Stage::DetailedWindow);
        let children = &records[..records.len() - 1];
        assert!(!children.is_empty(), "rollup produced no children");
        let mut cursor = win.start_ns;
        for c in children {
            assert!(c.stage.is_hot());
            assert_eq!(c.start_ns, cursor, "children are back-to-back");
            cursor += c.dur_ns;
        }
        assert!(
            cursor <= win.start_ns + win.dur_ns,
            "children spill past the window: {} > {}",
            cursor,
            win.start_ns + win.dur_ns
        );
    }

    #[test]
    fn span_timestamps_are_monotonic() {
        let _g = flag_guard();
        set_tracing(true);
        reset_thread();
        let mut last = 0;
        for _ in 0..5 {
            enter(Stage::Segment);
            exit(Stage::Segment);
        }
        set_tracing(false);
        set_profiling(false);
        let (_, records) = drained();
        assert_eq!(records.len(), 5);
        for r in &records {
            assert!(r.start_ns >= last, "monotonic starts");
            last = r.start_ns;
        }
    }

    #[test]
    fn reset_thread_discards_open_state() {
        let _g = flag_guard();
        set_profiling(true);
        reset_thread();
        enter(Stage::PoolJob); // never exited — simulates a panicked job
        reset_thread();
        set_profiling(false);
        let (rec, records) = drained();
        assert!(rec.snapshot().counters.is_empty());
        assert!(records.is_empty());
    }

    #[test]
    fn drain_registers_fixed_order_and_resets() {
        let _g = flag_guard();
        set_profiling(true);
        reset_thread();
        set_core(Some(0));
        scoped(true, Stage::Commit, || {});
        scoped(true, Stage::Fetch, || {});
        set_core(None);
        set_profiling(false);
        let (rec, _) = drained();
        let names: Vec<&str> = rec
            .snapshot()
            .counters
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| n.contains("core0"))
            .map(|n| {
                if n.contains("fetch") {
                    "fetch"
                } else {
                    "commit"
                }
            })
            .collect();
        // Fixed STAGES order regardless of observation order.
        assert_eq!(names, ["fetch", "commit"]);
        // Second drain is empty.
        let (rec2, rec2_records) = drained();
        assert!(rec2.snapshot().counters.is_empty());
        assert!(rec2_records.is_empty());
    }
}
