//! Metrics registry: counters, gauges, and log2-bucketed histograms.
//!
//! Handles are plain indices, so the hot-path update methods are a bounds
//! check and an add — cheap enough for per-segment (and even per-tick)
//! accounting in the simulation loop.

use serde::{Deserialize, Serialize};

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// Central metrics registry for one run.
#[derive(Debug, Default, Clone)]
pub struct Recorder {
    counters: Vec<(String, u64)>,
    gauges: Vec<(String, f64)>,
    histograms: Vec<(String, Histogram)>,
}

impl Recorder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a counter (or return the existing handle for this name).
    pub fn counter(&mut self, name: &str) -> CounterId {
        if let Some(i) = self.counters.iter().position(|(n, _)| n == name) {
            return CounterId(i);
        }
        self.counters.push((name.to_string(), 0));
        CounterId(self.counters.len() - 1)
    }

    /// Register a gauge (or return the existing handle for this name).
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        if let Some(i) = self.gauges.iter().position(|(n, _)| n == name) {
            return GaugeId(i);
        }
        self.gauges.push((name.to_string(), 0.0));
        GaugeId(self.gauges.len() - 1)
    }

    /// Register a histogram (or return the existing handle for this name).
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name.to_string(), Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    #[inline]
    pub fn inc(&mut self, id: CounterId) {
        self.counters[id.0].1 += 1;
    }

    #[inline]
    pub fn add(&mut self, id: CounterId, by: u64) {
        self.counters[id.0].1 += by;
    }

    #[inline]
    pub fn set(&mut self, id: GaugeId, value: f64) {
        self.gauges[id.0].1 = value;
    }

    #[inline]
    pub fn observe(&mut self, id: HistogramId, value: u64) {
        self.histograms[id.0].1.observe(value);
    }

    pub fn counter_value(&self, id: CounterId) -> u64 {
        self.counters[id.0].1
    }

    pub fn gauge_value(&self, id: GaugeId) -> f64 {
        self.gauges[id.0].1
    }

    pub fn histogram_ref(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Fold a whole histogram into a registered one (bucket-wise, same
    /// semantics as [`Histogram::merge`]). Used by the span profiler to
    /// land per-thread stage histograms in one call per drain instead of
    /// replaying every observation.
    pub fn fold_histogram(&mut self, id: HistogramId, h: &Histogram) {
        self.histograms[id.0].1.merge(h);
    }

    /// Fold another recorder into this one, matching metrics by name:
    /// counters add, gauges take the incoming value (last writer wins, as
    /// if the runs had happened sequentially), histograms merge
    /// bucket-wise. Names unknown to `self` are registered in the order
    /// `other` declared them, so merging per-job recorders in grid order
    /// yields the same registry as a serial run.
    pub fn merge(&mut self, other: &Recorder) {
        for (name, value) in &other.counters {
            let id = self.counter(name);
            self.counters[id.0].1 += value;
        }
        for (name, value) in &other.gauges {
            let id = self.gauge(name);
            self.gauges[id.0].1 = *value;
        }
        for (name, h) in &other.histograms {
            let id = self.histogram(name);
            self.histograms[id.0].1.merge(h);
        }
    }

    /// Fold a frozen snapshot into this recorder with the same semantics
    /// as [`Recorder::merge`] (counters add, gauges take the incoming
    /// value, histograms merge bucket-wise). Snapshots are lossless for
    /// this purpose — bucket lower bounds map back to bucket indices —
    /// so replaying a cached job's `MetricsSnapshot` leaves the registry
    /// exactly as recomputing the job would have.
    pub fn merge_snapshot(&mut self, snap: &MetricsSnapshot) {
        for (name, value) in &snap.counters {
            let id = self.counter(name);
            self.counters[id.0].1 += value;
        }
        for (name, value) in &snap.gauges {
            let id = self.gauge(name);
            self.gauges[id.0].1 = *value;
        }
        for h in &snap.histograms {
            let id = self.histogram(&h.name);
            self.histograms[id.0].1.merge(&Histogram::from_snapshot(h));
        }
    }

    /// Freeze the current state into a serializable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .map(|(name, h)| h.snapshot(name))
                .collect(),
        }
    }
}

/// Power-of-two bucketed histogram of `u64` observations.
///
/// Bucket 0 holds exact zeros; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]`. Quantile estimates therefore carry at most a 2x
/// relative error — plenty for latency/size distributions in a simulator.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Index of the bucket holding `value`.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// Inclusive lower bound of bucket `i`.
fn bucket_low(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i`.
fn bucket_high(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i == 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    pub fn new() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    pub fn observe(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Fold another histogram into this one: bucket counts add, and the
    /// summary statistics combine as if every observation had been made
    /// on `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Estimate the `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// bucket containing the rank-`ceil(q * count)` smallest observation,
    /// clamped to the observed min/max.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_high(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Reconstruct the histogram a snapshot was taken from. Exact: each
    /// listed lower bound is `bucket_low(i)` for a unique `i`, and count,
    /// sum, min and max are carried verbatim (an empty snapshot's
    /// placeholder `min: 0` maps back to the empty sentinel).
    pub fn from_snapshot(snap: &HistogramSnapshot) -> Histogram {
        let mut h = Histogram::new();
        for &(low, count) in &snap.buckets {
            h.buckets[bucket_index(low)] += count;
        }
        h.count = snap.count;
        h.sum = snap.sum;
        h.min = if snap.count == 0 { u64::MAX } else { snap.min };
        h.max = snap.max;
        h
    }

    /// Serializable view, with only non-empty buckets listed as
    /// `(lower_bound, count)` pairs.
    pub fn snapshot(&self, name: &str) -> HistogramSnapshot {
        HistogramSnapshot {
            name: name.to_string(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.quantile(0.50),
            p90: self.quantile(0.90),
            p99: self.quantile(0.99),
            buckets: self
                .buckets
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(i, &c)| (bucket_low(i), c))
                .collect(),
        }
    }
}

/// Frozen, serializable state of a [`Recorder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, f64)>,
    pub histograms: Vec<HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Value of a counter by name, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge by name, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }
}

/// Frozen, serializable state of one [`Histogram`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    /// `(bucket lower bound, count)` for non-empty buckets, ascending.
    pub buckets: Vec<(u64, u64)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 is its own bucket; each power of two starts a new bucket and
        // (2^i - 1) closes the previous one.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(7), 3);
        assert_eq!(bucket_index(8), 4);
        for i in 1..64usize {
            let low = 1u64 << (i - 1);
            assert_eq!(bucket_index(low), i, "lower edge of bucket {i}");
            let high = (1u64 << i) - 1;
            assert_eq!(bucket_index(high), i, "upper edge of bucket {i}");
        }
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_accounting_is_exact() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 1106);
        let snap = h.snapshot("t");
        assert_eq!(snap.min, 0);
        assert_eq!(snap.max, 1000);
        let total: u64 = snap.buckets.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 6);
    }

    #[test]
    fn quantiles_carry_at_most_2x_error() {
        let mut h = Histogram::new();
        for v in 1..=1000u64 {
            h.observe(v);
        }
        // True p50 = 500; the estimate must be in the same power-of-two
        // bucket, i.e. within [500, 1023].
        let p50 = h.quantile(0.50);
        assert!((500..=1023).contains(&p50), "p50 estimate {p50}");
        let p99 = h.quantile(0.99);
        assert!((990..=1023).contains(&p99), "p99 estimate {p99}");
        // Extremes are exact thanks to min/max clamping.
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_of_single_value_is_exact() {
        let mut h = Histogram::new();
        h.observe(37);
        for q in [0.0, 0.5, 0.9, 1.0] {
            assert_eq!(h.quantile(q), 37);
        }
    }

    #[test]
    fn registry_dedupes_names() {
        let mut r = Recorder::new();
        let a = r.counter("sim.quanta");
        let b = r.counter("sim.quanta");
        assert_eq!(a, b);
        r.inc(a);
        r.add(b, 2);
        assert_eq!(r.counter_value(a), 3);
    }

    #[test]
    fn histogram_merge_equals_serial_observation() {
        let mut serial = Histogram::new();
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [0, 1, 7, 64] {
            serial.observe(v);
            a.observe(v);
        }
        for v in [3, 200, 1000, u64::MAX] {
            serial.observe(v);
            b.observe(v);
        }
        a.merge(&b);
        assert_eq!(a.snapshot("h"), serial.snapshot("h"));
        // Merging an empty histogram changes nothing (min stays valid).
        let before = a.snapshot("h");
        a.merge(&Histogram::new());
        assert_eq!(a.snapshot("h"), before);
    }

    #[test]
    fn recorder_merge_matches_serial_run() {
        // Two per-job recorders merged in order must equal one recorder
        // that saw both jobs' updates sequentially.
        let mut serial = Recorder::new();
        let mut job_a = Recorder::new();
        let mut job_b = Recorder::new();
        for r in [&mut serial, &mut job_a] {
            let c = r.counter("sim.quanta");
            r.add(c, 5);
            let g = r.gauge("sched.objective");
            r.set(g, 1.5);
            let h = r.histogram("mem.latency");
            r.observe(h, 10);
        }
        for r in [&mut serial, &mut job_b] {
            let c = r.counter("sim.quanta");
            r.add(c, 7);
            let c2 = r.counter("sim.migrations");
            r.inc(c2);
            let g = r.gauge("sched.objective");
            r.set(g, -0.5);
            let h = r.histogram("mem.latency");
            r.observe(h, 99);
        }
        let mut merged = Recorder::new();
        merged.merge(&job_a);
        merged.merge(&job_b);
        assert_eq!(merged.snapshot(), serial.snapshot());
    }

    #[test]
    fn merge_snapshot_equals_merge() {
        // Merging a recorder and merging its snapshot must be
        // indistinguishable — the cache replays snapshots where the pool
        // would have merged live recorders.
        let mut job = Recorder::new();
        let c = job.counter("sim.quanta");
        job.add(c, 11);
        let g = job.gauge("sched.objective");
        job.set(g, 2.25);
        let h = job.histogram("mem.latency");
        for v in [0, 1, 5, 300, 4096, u64::MAX] {
            job.observe(h, v);
        }
        let mut via_merge = Recorder::new();
        let c = via_merge.counter("sim.quanta");
        via_merge.add(c, 3);
        via_merge.merge(&job);
        let mut via_snapshot = Recorder::new();
        let c = via_snapshot.counter("sim.quanta");
        via_snapshot.add(c, 3);
        via_snapshot.merge_snapshot(&job.snapshot());
        assert_eq!(via_snapshot.snapshot(), via_merge.snapshot());
    }

    #[test]
    fn histogram_from_snapshot_is_exact() {
        let mut h = Histogram::new();
        for v in [0, 0, 1, 2, 3, 9, 1023, 1024, u64::MAX] {
            h.observe(v);
        }
        let snap = h.snapshot("round-trip");
        let back = Histogram::from_snapshot(&snap);
        assert_eq!(back.snapshot("round-trip"), snap);
        // Empty histograms round-trip too (min sentinel restored).
        let empty = Histogram::new();
        let back = Histogram::from_snapshot(&empty.snapshot("empty"));
        assert_eq!(back.snapshot("empty"), empty.snapshot("empty"));
        let mut merged = Histogram::from_snapshot(&empty.snapshot("e"));
        merged.observe(7);
        assert_eq!(merged.snapshot("e").min, 7, "empty min must not stick at 0");
    }

    #[test]
    fn snapshot_round_trips_through_serde() {
        let mut r = Recorder::new();
        let c = r.counter("core.instructions");
        r.add(c, 12345);
        let g = r.gauge("sched.objective");
        r.set(g, -0.25);
        let h = r.histogram("mem.latency");
        for v in [1, 2, 3, 64, 200, 0] {
            r.observe(h, v);
        }
        let snap = r.snapshot();
        let bytes = serde_json::to_vec(&snap).unwrap();
        let back: MetricsSnapshot = serde_json::from_slice(&bytes).unwrap();
        assert_eq!(back, snap);
        assert_eq!(back.counter("core.instructions"), Some(12345));
        assert_eq!(back.gauge("sched.objective"), Some(-0.25));
        assert_eq!(back.histograms[0].count, 6);
    }
}
