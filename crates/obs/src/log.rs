//! Leveled progress logging to stderr.
//!
//! Progress output goes to stderr through these macros so stdout stays
//! reserved for machine-parseable data; `--quiet` (level `error`)
//! silences everything but failures. The level is a process-wide atomic
//! so every crate in the stack sees the CLI's choice.

use std::sync::atomic::{AtomicU8, Ordering};

/// Verbosity threshold, ordered from quietest to loudest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    Error = 0,
    Warn = 1,
    Info = 2,
    Debug = 3,
}

impl LogLevel {
    /// Parse a CLI level name.
    pub fn parse(s: &str) -> Option<LogLevel> {
        match s.to_ascii_lowercase().as_str() {
            "error" | "quiet" => Some(LogLevel::Error),
            "warn" | "warning" => Some(LogLevel::Warn),
            "info" => Some(LogLevel::Info),
            "debug" | "trace" => Some(LogLevel::Debug),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            LogLevel::Error => "error",
            LogLevel::Warn => "warn",
            LogLevel::Info => "info",
            LogLevel::Debug => "debug",
        }
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(LogLevel::Info as u8);

/// Set the process-wide log level.
pub fn set_log_level(level: LogLevel) {
    LEVEL.store(level as u8, Ordering::Relaxed);
}

/// The current process-wide log level.
pub fn log_level() -> LogLevel {
    match LEVEL.load(Ordering::Relaxed) {
        0 => LogLevel::Error,
        1 => LogLevel::Warn,
        2 => LogLevel::Info,
        _ => LogLevel::Debug,
    }
}

#[doc(hidden)]
pub fn __log(level: LogLevel, args: std::fmt::Arguments<'_>) {
    if level <= log_level() {
        eprintln!("[{}] {}", level.name(), args);
    }
}

/// Log at error level (never silenced by `--quiet`).
#[macro_export]
macro_rules! error {
    ($($arg:tt)*) => {
        $crate::log::__log($crate::log::LogLevel::Error, format_args!($($arg)*))
    };
}

/// Log at warn level.
#[macro_export]
macro_rules! warn {
    ($($arg:tt)*) => {
        $crate::log::__log($crate::log::LogLevel::Warn, format_args!($($arg)*))
    };
}

/// Log at info level — the default for progress output.
#[macro_export]
macro_rules! info {
    ($($arg:tt)*) => {
        $crate::log::__log($crate::log::LogLevel::Info, format_args!($($arg)*))
    };
}

/// Log at debug level (hidden unless `--log-level debug`).
#[macro_export]
macro_rules! debug {
    ($($arg:tt)*) => {
        $crate::log::__log($crate::log::LogLevel::Debug, format_args!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_ordered_and_parse() {
        assert!(LogLevel::Error < LogLevel::Warn);
        assert!(LogLevel::Warn < LogLevel::Info);
        assert!(LogLevel::Info < LogLevel::Debug);
        assert_eq!(LogLevel::parse("INFO"), Some(LogLevel::Info));
        assert_eq!(LogLevel::parse("quiet"), Some(LogLevel::Error));
        assert_eq!(LogLevel::parse("bogus"), None);
    }
}
