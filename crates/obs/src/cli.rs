//! Shared observability CLI arguments for every bench binary.

use crate::events::{file_sink, EventSink, NullSink};
use crate::log::{set_log_level, LogLevel};
use crate::recorder::MetricsSnapshot;
use crate::write_atomic;
use std::io;
use std::path::PathBuf;

/// The observability flags every entry point accepts:
///
/// - `--trace-out <path>`: write the structured JSONL event log here
/// - `--metrics-out <path>`: write the metrics snapshot JSON here
/// - `--profile`: enable the stage-level self-profiler (`prof.*` metrics,
///   `stage_profile` manifest block, stderr summary)
/// - `--trace-spans <path>`: write a Chrome trace-event JSON of
///   hierarchical spans here (implies `--profile`)
/// - `--no-profile`: force spans/profiling off, overriding the other two
/// - `--quiet`: silence progress logging (level `error`)
/// - `--log-level <error|warn|info|debug>`: set verbosity explicitly
#[derive(Debug, Clone, Default)]
pub struct ObsArgs {
    pub trace_out: Option<PathBuf>,
    pub metrics_out: Option<PathBuf>,
    pub trace_spans: Option<PathBuf>,
    pub profile: bool,
    pub no_profile: bool,
    pub quiet: bool,
    pub log_level: Option<LogLevel>,
}

/// Help text fragment describing the shared flags, for `--help` output.
pub const OBS_HELP: &str = "  --trace-out <path>    write a structured JSONL event log\n  \
     --metrics-out <path>  write a metrics snapshot JSON\n  \
     --profile             profile host time per engine stage (prof.* metrics)\n  \
     --trace-spans <path>  write a Chrome/Perfetto trace of spans (implies --profile)\n  \
     --no-profile          force the span profiler off\n  \
     --quiet               silence progress output (errors only)\n  \
     --log-level <level>   error|warn|info|debug (default info)";

impl ObsArgs {
    /// Parse the shared flags from the process arguments and apply the
    /// resulting log level. Unrecognized arguments are ignored so each
    /// binary keeps its own flag handling.
    pub fn from_env() -> ObsArgs {
        let args = Self::parse_from(std::env::args().skip(1));
        args.apply_log_level();
        args
    }

    /// Parse from an explicit argument list (testable, does not touch the
    /// global log level). Accepts both `--flag value` and `--flag=value`.
    pub fn parse_from<I: IntoIterator<Item = String>>(args: I) -> ObsArgs {
        let mut out = ObsArgs::default();
        let mut iter = args.into_iter();
        while let Some(arg) = iter.next() {
            let (flag, inline) = match arg.split_once('=') {
                Some((f, v)) => (f.to_string(), Some(v.to_string())),
                None => (arg, None),
            };
            match flag.as_str() {
                "--trace-out" => {
                    out.trace_out = inline.or_else(|| iter.next()).map(PathBuf::from);
                    if out.trace_out.is_none() {
                        crate::warn!("--trace-out given without a path; ignoring");
                    }
                }
                "--metrics-out" => {
                    out.metrics_out = inline.or_else(|| iter.next()).map(PathBuf::from);
                    if out.metrics_out.is_none() {
                        crate::warn!("--metrics-out given without a path; ignoring");
                    }
                }
                "--trace-spans" => {
                    out.trace_spans = inline.or_else(|| iter.next()).map(PathBuf::from);
                    if out.trace_spans.is_none() {
                        crate::warn!("--trace-spans given without a path; ignoring");
                    }
                }
                "--profile" => out.profile = true,
                "--no-profile" => out.no_profile = true,
                "--quiet" | "-q" => out.quiet = true,
                "--log-level" => {
                    let value = inline.or_else(|| iter.next());
                    out.log_level = value.as_deref().and_then(LogLevel::parse);
                    if out.log_level.is_none() {
                        crate::warn!(
                            "unknown --log-level {:?}; expected error|warn|info|debug",
                            value.as_deref().unwrap_or("")
                        );
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Whether the stage profiler should run: `--profile` or
    /// `--trace-spans`, unless `--no-profile` vetoes both.
    pub fn profiling_enabled(&self) -> bool {
        (self.profile || self.trace_spans.is_some()) && !self.no_profile
    }

    /// Whether span trace records should be collected for
    /// `--trace-spans` export.
    pub fn tracing_enabled(&self) -> bool {
        self.trace_spans.is_some() && !self.no_profile
    }

    /// Apply `--profile` / `--trace-spans` / `--no-profile` to the
    /// process-wide span profiler. Call before spawning pool workers.
    pub fn apply_span_flags(&self) {
        crate::span::set_tracing(self.tracing_enabled());
        crate::span::set_profiling(self.profiling_enabled());
    }

    /// Apply `--quiet` / `--log-level` to the process-wide logger.
    /// `--quiet` wins over an explicit level.
    pub fn apply_log_level(&self) {
        if self.quiet {
            set_log_level(LogLevel::Error);
        } else if let Some(level) = self.log_level {
            set_log_level(level);
        }
    }

    /// Open the event sink: a JSONL file sink when `--trace-out` was
    /// given, the null sink otherwise.
    pub fn sink(&self) -> io::Result<Box<dyn EventSink>> {
        match &self.trace_out {
            Some(path) => Ok(Box::new(file_sink(path)?)),
            None => Ok(Box::new(NullSink)),
        }
    }

    /// Like [`ObsArgs::sink`], but on failure (e.g. `--trace-out` points
    /// at an unwritable path) prints a one-line error to stderr and exits
    /// nonzero instead of handing the caller a raw `io::Error` to unwrap.
    pub fn sink_or_exit(&self) -> Box<dyn EventSink> {
        match self.sink() {
            Ok(sink) => sink,
            Err(e) => {
                let path = self
                    .trace_out
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default();
                crate::error!("cannot open --trace-out {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    /// Write the metrics snapshot if `--metrics-out` was given. Returns
    /// the path written, if any.
    pub fn write_metrics(&self, snapshot: &MetricsSnapshot) -> io::Result<Option<PathBuf>> {
        let Some(path) = &self.metrics_out else {
            return Ok(None);
        };
        let bytes = serde_json::to_vec_pretty(snapshot)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
        write_atomic(path, &bytes)?;
        Ok(Some(path.clone()))
    }

    /// Like [`ObsArgs::write_metrics`], but on failure prints a one-line
    /// error to stderr and exits nonzero.
    pub fn write_metrics_or_exit(&self, snapshot: &MetricsSnapshot) -> Option<PathBuf> {
        match self.write_metrics(snapshot) {
            Ok(path) => path,
            Err(e) => {
                let path = self
                    .metrics_out
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_default();
                crate::error!("cannot write --metrics-out {path}: {e}");
                std::process::exit(1);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> ObsArgs {
        ObsArgs::parse_from(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_separate_and_inline_values() {
        let a = parse(&["--trace-out", "t.jsonl", "--metrics-out=m.json", "--quiet"]);
        assert_eq!(a.trace_out, Some(PathBuf::from("t.jsonl")));
        assert_eq!(a.metrics_out, Some(PathBuf::from("m.json")));
        assert!(a.quiet);
    }

    #[test]
    fn ignores_unrelated_flags() {
        let a = parse(&["--benchmarks", "milc,lbm", "--ticks", "5000"]);
        assert!(a.trace_out.is_none() && a.metrics_out.is_none() && !a.quiet);
    }

    #[test]
    fn parses_span_flags_and_resolves_precedence() {
        let a = parse(&["--trace-spans", "spans.json"]);
        assert_eq!(a.trace_spans, Some(PathBuf::from("spans.json")));
        assert!(a.profiling_enabled() && a.tracing_enabled());

        let a = parse(&["--profile"]);
        assert!(a.profiling_enabled() && !a.tracing_enabled());

        let a = parse(&["--profile", "--trace-spans=s.json", "--no-profile"]);
        assert!(!a.profiling_enabled() && !a.tracing_enabled());

        let a = parse(&[]);
        assert!(!a.profiling_enabled() && !a.tracing_enabled());
    }

    #[test]
    fn parses_log_level() {
        assert_eq!(
            parse(&["--log-level", "debug"]).log_level,
            Some(LogLevel::Debug)
        );
        assert_eq!(parse(&["--log-level=warn"]).log_level, Some(LogLevel::Warn));
        assert_eq!(parse(&["--log-level", "bogus"]).log_level, None);
    }

    #[test]
    fn default_sink_is_null() {
        let a = ObsArgs::default();
        let mut sink = a.sink().unwrap();
        sink.emit(&crate::Event::RunEnd {
            tick: 0,
            quanta: 0,
            migrations: 0,
            instructions: 0,
        });
    }
}
