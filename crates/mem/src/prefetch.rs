//! Next-line stream prefetcher for the private L2.
//!
//! The paper's memory-streaming benchmarks (milc, lbm, leslie3d, …) fill
//! the ROB behind demand misses; a prefetcher changes how much of that
//! latency is exposed, which in turn shifts both performance and AVF. The
//! simulator ships with the prefetcher **disabled** (matching the paper's
//! baseline configuration, which does not mention one); the
//! `ablation_prefetch` bench quantifies its effect on the reliability
//! results.
//!
//! The model is a classic tagged next-N-line prefetcher: on an L2 demand
//! miss (or first demand hit on a prefetched line), the next `degree`
//! lines are installed into L2.

use serde::{Deserialize, Serialize};

/// Prefetcher configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchConfig {
    /// Whether the prefetcher is active.
    pub enabled: bool,
    /// How many sequential lines to prefetch on a trigger.
    pub degree: u32,
}

impl Default for PrefetchConfig {
    /// Disabled (the paper's baseline).
    fn default() -> Self {
        PrefetchConfig {
            enabled: false,
            degree: 2,
        }
    }
}

impl PrefetchConfig {
    /// An enabled next-2-line prefetcher.
    pub fn next_line() -> Self {
        PrefetchConfig {
            enabled: true,
            degree: 2,
        }
    }
}

/// Prefetcher statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefetchStats {
    /// Prefetch requests issued.
    pub issued: u64,
    /// Demand accesses that hit a prefetched line before eviction.
    pub useful: u64,
}

impl PrefetchStats {
    /// Fraction of prefetches that were useful; 0 with no prefetches.
    pub fn accuracy(&self) -> f64 {
        if self.issued == 0 {
            0.0
        } else {
            self.useful as f64 / self.issued as f64
        }
    }
}

/// Tracks prefetched-but-not-yet-used lines (tagged prefetching).
#[derive(Debug, Clone)]
pub struct Prefetcher {
    cfg: PrefetchConfig,
    /// Recently prefetched line addresses (small ring; the tag bit of a
    /// real design).
    pending: Vec<u64>,
    cursor: usize,
    stats: PrefetchStats,
}

impl Prefetcher {
    /// Build a prefetcher.
    pub fn new(cfg: PrefetchConfig) -> Self {
        Prefetcher {
            cfg,
            pending: vec![u64::MAX; 64],
            cursor: 0,
            stats: PrefetchStats::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> PrefetchConfig {
        self.cfg
    }

    /// Statistics so far.
    pub fn stats(&self) -> PrefetchStats {
        self.stats
    }

    /// Whether this demand access hits a tagged prefetched line; clears
    /// the tag and counts usefulness.
    pub fn note_demand(&mut self, line_addr: u64) -> bool {
        if !self.cfg.enabled {
            return false;
        }
        if let Some(slot) = self.pending.iter_mut().find(|l| **l == line_addr) {
            *slot = u64::MAX;
            self.stats.useful += 1;
            true
        } else {
            false
        }
    }

    /// Lines to prefetch after a demand miss on `line_addr` (line-aligned
    /// byte addresses). Empty when disabled.
    pub fn lines_after_miss(&mut self, line_addr: u64, line_bytes: u64) -> Vec<u64> {
        if !self.cfg.enabled {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.cfg.degree as usize);
        for i in 1..=u64::from(self.cfg.degree) {
            let target = line_addr + i * line_bytes;
            out.push(target);
            self.pending[self.cursor] = target;
            self.cursor = (self.cursor + 1) % self.pending.len();
            self.stats.issued += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_prefetcher_does_nothing() {
        let mut p = Prefetcher::new(PrefetchConfig::default());
        assert!(p.lines_after_miss(0, 64).is_empty());
        assert!(!p.note_demand(64));
        assert_eq!(p.stats(), PrefetchStats::default());
    }

    #[test]
    fn issues_next_lines_on_miss() {
        let mut p = Prefetcher::new(PrefetchConfig::next_line());
        let lines = p.lines_after_miss(0x1000, 64);
        assert_eq!(lines, vec![0x1040, 0x1080]);
        assert_eq!(p.stats().issued, 2);
    }

    #[test]
    fn useful_prefetches_counted_once() {
        let mut p = Prefetcher::new(PrefetchConfig::next_line());
        let _ = p.lines_after_miss(0x1000, 64);
        assert!(p.note_demand(0x1040), "first demand hit is useful");
        assert!(!p.note_demand(0x1040), "tag cleared after use");
        assert_eq!(p.stats().useful, 1);
        assert!((p.stats().accuracy() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pending_ring_wraps_safely() {
        let mut p = Prefetcher::new(PrefetchConfig {
            enabled: true,
            degree: 4,
        });
        for i in 0..100 {
            let _ = p.lines_after_miss(i * 0x1000, 64);
        }
        assert_eq!(p.stats().issued, 400);
        // Recent prefetches still tagged, old ones evicted from the ring.
        assert!(p.note_demand(99 * 0x1000 + 64));
        assert!(!p.note_demand(64));
    }
}
