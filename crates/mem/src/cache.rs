//! Set-associative write-back cache model with LRU replacement.

use serde::{Deserialize, Serialize};

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (number of ways per set).
    pub ways: u32,
    /// Cache line size in bytes. Must be a power of two.
    pub line_bytes: u64,
    /// Access latency in cycles of the owning clock domain.
    pub latency: u64,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (capacity not divisible by
    /// `ways * line_bytes`, or non-power-of-two line size).
    pub fn sets(&self) -> u64 {
        assert!(
            self.line_bytes.is_power_of_two(),
            "line size not a power of two"
        );
        let bytes_per_way_set = self.ways as u64 * self.line_bytes;
        assert!(
            bytes_per_way_set > 0 && self.size_bytes.is_multiple_of(bytes_per_way_set),
            "capacity {} not divisible by ways*line {}",
            self.size_bytes,
            bytes_per_way_set
        );
        self.size_bytes / bytes_per_way_set
    }
}

/// Hit/miss statistics of one cache.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Lines evicted while dirty (write-backs to the next level).
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }

    /// Miss ratio in `[0, 1]`; 0 if no accesses were made.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses() as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Per-set logical timestamp of the last touch (for LRU).
    lru: u64,
}

/// A set-associative, write-allocate, write-back cache with true LRU.
///
/// The model tracks tags only (no data), which is sufficient for timing and
/// vulnerability simulation.
///
/// # Examples
///
/// ```
/// use relsim_mem::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig {
///     size_bytes: 32 << 10, ways: 8, line_bytes: 64, latency: 4,
/// });
/// assert!(!c.access(0x1000, false), "cold miss");
/// assert!(c.access(0x1000, false), "now resident");
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    /// All lines, flattened: set `i` occupies `[i*ways, (i+1)*ways)`.
    lines: Vec<Line>,
    sets: usize,
    ways: usize,
    /// `log2(line_bytes)`, so indexing shifts instead of dividing.
    line_shift: u32,
    /// `sets - 1` when `sets` is a power of two (the common case for
    /// every Table 2 geometry), else 0 with `set_mask_valid` unset.
    set_mask: u64,
    /// Whether `set_mask` may be used in place of `% sets`.
    set_mask_valid: bool,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics on inconsistent geometry (see [`CacheConfig::sets`]).
    pub fn new(cfg: CacheConfig) -> Self {
        let sets = cfg.sets() as usize;
        let ways = cfg.ways as usize;
        Cache {
            cfg,
            lines: vec![Line::default(); sets * ways],
            sets,
            ways,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: if sets.is_power_of_two() {
                sets as u64 - 1
            } else {
                0
            },
            set_mask_valid: sets.is_power_of_two(),
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's configuration.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (contents are preserved).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    #[inline]
    fn index_and_tag(&self, addr: u64) -> (usize, u64) {
        let line = addr >> self.line_shift;
        if self.set_mask_valid {
            (
                (line & self.set_mask) as usize,
                line >> self.set_mask.count_ones(),
            )
        } else {
            let sets = self.sets as u64;
            ((line % sets) as usize, line / sets)
        }
    }

    /// Access `addr`; returns `true` on hit. On a miss the line is filled
    /// (write-allocate), possibly evicting the LRU way; a dirty eviction is
    /// counted as a write-back. `is_write` marks the line dirty.
    pub fn access(&mut self, addr: u64, is_write: bool) -> bool {
        self.tick += 1;
        self.stats.accesses += 1;
        let (idx, tag) = self.index_and_tag(addr);
        let tick = self.tick;
        let set = &mut self.lines[idx * self.ways..(idx + 1) * self.ways];

        if let Some(line) = set.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = tick;
            line.dirty |= is_write;
            self.stats.hits += 1;
            return true;
        }

        // Miss: fill into an invalid way or evict the LRU way.
        let victim = set
            .iter_mut()
            .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
            .expect("cache sets are never empty");
        if victim.valid && victim.dirty {
            self.stats.writebacks += 1;
        }
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            lru: tick,
        };
        false
    }

    /// Whether `addr`'s line is currently resident (no state change).
    pub fn contains(&self, addr: u64) -> bool {
        let (idx, tag) = self.index_and_tag(addr);
        self.lines[idx * self.ways..(idx + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidate the entire cache (e.g. on migration); statistics are kept.
    pub fn flush(&mut self) {
        for line in &mut self.lines {
            *line = Line::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256 B
        Cache::new(CacheConfig {
            size_bytes: 256,
            ways: 2,
            line_bytes: 64,
            latency: 1,
        })
    }

    #[test]
    fn geometry() {
        let c = small();
        assert_eq!(c.config().sets(), 2);
    }

    #[test]
    #[should_panic(expected = "not divisible")]
    fn bad_geometry_panics() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 100,
            ways: 3,
            line_bytes: 64,
            latency: 1,
        });
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0, false));
        assert!(c.access(0, false));
        assert!(c.access(63, false), "same line");
        assert!(
            !c.access(128, false),
            "different set? no: 128/64=2, 2%2=0 same set, new tag"
        );
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small();
        // Set 0 holds lines with line-number % 2 == 0: addresses 0, 128, 256...
        c.access(0, false); // A
        c.access(128, false); // B
        c.access(0, false); // touch A, making B LRU
        c.access(256, false); // C evicts B
        assert!(c.contains(0), "A stays");
        assert!(!c.contains(128), "B evicted");
        assert!(c.contains(256), "C resident");
    }

    #[test]
    fn writeback_counted_on_dirty_eviction() {
        let mut c = small();
        c.access(0, true); // dirty A
        c.access(128, false); // B
        c.access(256, false); // evicts A (LRU) -> writeback
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn stats_accumulate() {
        let mut c = small();
        c.access(0, false);
        c.access(0, false);
        c.access(64, false);
        let s = c.stats();
        assert_eq!(s.accesses, 3);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 2);
        assert!((s.miss_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flush_invalidates_but_keeps_stats() {
        let mut c = small();
        c.access(0, false);
        assert!(c.contains(0));
        c.flush();
        assert!(!c.contains(0));
        assert_eq!(c.stats().accesses, 1);
    }

    #[test]
    fn working_set_within_capacity_always_hits_after_warmup() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 32 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 4,
        });
        // 16 KiB working set fits in 32 KiB cache.
        for pass in 0..3 {
            let mut misses = 0;
            for addr in (0..(16u64 << 10)).step_by(64) {
                if !c.access(addr, false) {
                    misses += 1;
                }
            }
            if pass > 0 {
                assert_eq!(misses, 0, "warm pass {pass} must fully hit");
            }
        }
    }
}
