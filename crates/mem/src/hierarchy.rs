//! Per-core private caches plus the shared L3/DRAM backend.
//!
//! Each core owns a [`PrivateCaches`] instance (L1I, L1D, private L2); all
//! cores share one [`SharedMem`] (L3 + memory controller), which is where
//! multiprogram interference arises.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::controller::{MemController, MemControllerConfig, MemControllerStats};
use crate::prefetch::{PrefetchConfig, PrefetchStats, Prefetcher};
use serde::{Deserialize, Serialize};

/// Which level of the hierarchy served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemLevel {
    /// L1 data (or instruction) cache hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared L3 hit — the "LLC" component of the paper's CPI stacks.
    L3,
    /// Main memory access.
    Memory,
}

/// Outcome of a timed data access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Tick at which the data is available.
    pub complete_at: u64,
    /// Deepest level that had to be consulted.
    pub level: MemLevel,
}

/// Configuration of one core's private hierarchy (Table 2 values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrivateCacheConfig {
    /// L1 instruction cache.
    pub l1i: CacheConfig,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Private unified L2.
    pub l2: CacheConfig,
    /// L2 stream prefetcher (disabled by default, the paper's baseline).
    pub prefetch: PrefetchConfig,
}

impl Default for PrivateCacheConfig {
    /// The Table 2 configuration: 32 KB 4-way L1I (2 cyc), 32 KB 8-way L1D
    /// (4 cyc), 256 KB 8-way L2 (8 cyc), all with 64 B lines.
    fn default() -> Self {
        PrivateCacheConfig {
            l1i: CacheConfig {
                size_bytes: 32 << 10,
                ways: 4,
                line_bytes: 64,
                latency: 2,
            },
            l1d: CacheConfig {
                size_bytes: 32 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 4,
            },
            l2: CacheConfig {
                size_bytes: 256 << 10,
                ways: 8,
                line_bytes: 64,
                latency: 8,
            },
            prefetch: PrefetchConfig::default(),
        }
    }
}

/// Configuration of the shared backend (Table 2 values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SharedMemConfig {
    /// Shared L3: 8 MB, 16-way, 30-cycle latency.
    pub l3: CacheConfig,
    /// DRAM: 25.6 GB/s, 45 ns.
    pub controller: MemControllerConfig,
}

impl Default for SharedMemConfig {
    fn default() -> Self {
        SharedMemConfig {
            l3: CacheConfig {
                size_bytes: 8 << 20,
                ways: 16,
                line_bytes: 64,
                latency: 30,
            },
            controller: MemControllerConfig::default(),
        }
    }
}

/// The shared L3 cache and memory controller.
#[derive(Debug, Clone)]
pub struct SharedMem {
    l3: Cache,
    controller: MemController,
}

impl SharedMem {
    /// Build the shared backend.
    pub fn new(cfg: SharedMemConfig) -> Self {
        SharedMem {
            l3: Cache::new(cfg.l3),
            controller: MemController::new(cfg.controller),
        }
    }

    /// Access the shared levels at tick `now` (already past the private
    /// levels). Returns the extra completion time and deepest level.
    pub fn access(&mut self, addr: u64, is_write: bool, now: u64) -> AccessOutcome {
        let l3_lat = self.l3.config().latency;
        if self.l3.access(addr, is_write) {
            AccessOutcome {
                complete_at: now + l3_lat,
                level: MemLevel::L3,
            }
        } else {
            let complete_at = self.controller.request(now + l3_lat);
            AccessOutcome {
                complete_at,
                level: MemLevel::Memory,
            }
        }
    }

    /// Tick at which the memory bus becomes free for a new transfer; see
    /// [`MemController::bus_free_at`]. Because every shared-level access
    /// resolves eagerly at request time, this is the only
    /// earliest-completion state the backend holds — there are no pending
    /// callbacks a cycle-skipping core could miss.
    pub fn bus_free_at(&self) -> u64 {
        self.controller.bus_free_at()
    }

    /// L3 statistics.
    pub fn l3_stats(&self) -> CacheStats {
        self.l3.stats()
    }

    /// Memory-controller statistics.
    pub fn controller_stats(&self) -> MemControllerStats {
        self.controller.stats()
    }

    /// Reset all statistics (cache contents are preserved).
    pub fn reset_stats(&mut self) {
        self.l3.reset_stats();
        self.controller.reset_stats();
    }

    /// Add the shared hierarchy's miss/bandwidth totals to `rec` under
    /// `mem.l3.*` / `mem.dram.*`. Totals are cumulative since construction
    /// (or the last [`SharedMem::reset_stats`]), so call this once per run.
    pub fn record_metrics(&self, rec: &mut relsim_obs::Recorder) {
        let l3 = self.l3_stats();
        let dram = self.controller_stats();
        for (name, value) in [
            ("mem.l3.accesses", l3.accesses),
            ("mem.l3.misses", l3.misses()),
            ("mem.l3.writebacks", l3.writebacks),
            ("mem.dram.requests", dram.requests),
            ("mem.dram.queue_ticks", dram.queue_ticks),
        ] {
            let id = rec.counter(name);
            rec.add(id, value);
        }
    }

    /// Untimed warm-up of the shared L3 over an address range (see
    /// [`PrivateCaches::warm_region`]). Statistics are reset afterwards.
    pub fn warm_region(&mut self, base: u64, bytes: u64) {
        let line = self.l3.config().line_bytes;
        let mut addr = base;
        while addr < base + bytes {
            let _ = self.l3.access(addr, false);
            addr += line;
        }
        self.l3.reset_stats();
    }
}

/// One core's private L1I/L1D/L2.
#[derive(Debug, Clone)]
pub struct PrivateCaches {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    prefetcher: Prefetcher,
    /// Per-level latencies pre-multiplied by the core's ticks-per-cycle
    /// (1 at full frequency, 2 at half), so the hit path does no
    /// arithmetic beyond an add.
    l1i_lat: u64,
    l1d_lat: u64,
    l2_lat: u64,
    /// `!(line_bytes - 1)` for the L2 line, for prefetch line rounding.
    line_mask: u64,
}

impl PrivateCaches {
    /// Build a private hierarchy. `ticks_per_cycle` scales latencies for
    /// cores running below the reference frequency.
    pub fn new(cfg: PrivateCacheConfig, ticks_per_cycle: u64) -> Self {
        assert!(ticks_per_cycle >= 1);
        PrivateCaches {
            l1i: Cache::new(cfg.l1i),
            l1d: Cache::new(cfg.l1d),
            l2: Cache::new(cfg.l2),
            prefetcher: Prefetcher::new(cfg.prefetch),
            l1i_lat: cfg.l1i.latency * ticks_per_cycle,
            l1d_lat: cfg.l1d.latency * ticks_per_cycle,
            l2_lat: cfg.l2.latency * ticks_per_cycle,
            line_mask: !(cfg.l2.line_bytes - 1),
        }
    }

    /// Prefetcher statistics.
    pub fn prefetch_stats(&self) -> PrefetchStats {
        self.prefetcher.stats()
    }

    /// Timed data access (load or store) starting at tick `now`.
    pub fn access_data(
        &mut self,
        addr: u64,
        is_write: bool,
        now: u64,
        shared: &mut SharedMem,
    ) -> AccessOutcome {
        relsim_obs::span::scope(relsim_obs::span::Stage::MemWalk, || {
            self.access_data_inner(addr, is_write, now, shared)
        })
    }

    fn access_data_inner(
        &mut self,
        addr: u64,
        is_write: bool,
        now: u64,
        shared: &mut SharedMem,
    ) -> AccessOutcome {
        let l1_lat = self.l1d_lat;
        if self.l1d.access(addr, is_write) {
            return AccessOutcome {
                complete_at: now + l1_lat,
                level: MemLevel::L1,
            };
        }
        let l2_lat = self.l2_lat;
        let line_bytes = self.l2.config().line_bytes;
        let line_addr = addr & self.line_mask;
        if self.l2.access(addr, is_write) {
            self.prefetcher.note_demand(line_addr);
            return AccessOutcome {
                complete_at: now + l1_lat + l2_lat,
                level: MemLevel::L2,
            };
        }
        // L2 demand miss: trigger the stream prefetcher. Prefetches fill
        // L2 through the shared hierarchy (consuming L3/memory bandwidth)
        // but nothing waits on them.
        for line in self.prefetcher.lines_after_miss(line_addr, line_bytes) {
            if !self.l2.contains(line) {
                let _ = shared.access(line, false, now + l1_lat + l2_lat);
                let _ = self.l2.access(line, false);
            }
        }
        shared.access(addr, is_write, now + l1_lat + l2_lat)
    }

    /// Timed instruction-fetch access starting at tick `now`.
    ///
    /// A fetch that misses the L1I is served by the private L2 (instruction
    /// working sets that spill past L2 are rare for SPEC-class workloads and
    /// are folded into the same path).
    pub fn access_instr(&mut self, addr: u64, now: u64, shared: &mut SharedMem) -> AccessOutcome {
        relsim_obs::span::scope(relsim_obs::span::Stage::MemWalk, || {
            self.access_instr_inner(addr, now, shared)
        })
    }

    fn access_instr_inner(&mut self, addr: u64, now: u64, shared: &mut SharedMem) -> AccessOutcome {
        let l1_lat = self.l1i_lat;
        if self.l1i.access(addr, false) {
            return AccessOutcome {
                complete_at: now + l1_lat,
                level: MemLevel::L1,
            };
        }
        let l2_lat = self.l2_lat;
        if self.l2.access(addr, false) {
            return AccessOutcome {
                complete_at: now + l1_lat + l2_lat,
                level: MemLevel::L2,
            };
        }
        shared.access(addr, false, now + l1_lat + l2_lat)
    }

    /// Statistics of (L1I, L1D, L2).
    pub fn stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        (self.l1i.stats(), self.l1d.stats(), self.l2.stats())
    }

    /// Add this hierarchy's access/miss totals to `rec`, aggregated under
    /// `mem.l1.*` / `mem.l2.*` (call once per core per run; totals from
    /// multiple cores accumulate into the same counters).
    pub fn record_metrics(&self, rec: &mut relsim_obs::Recorder) {
        let (l1i, l1d, l2) = self.stats();
        for (name, value) in [
            ("mem.l1.accesses", l1i.accesses + l1d.accesses),
            ("mem.l1.misses", l1i.misses() + l1d.misses()),
            ("mem.l2.accesses", l2.accesses),
            ("mem.l2.misses", l2.misses()),
            ("mem.prefetch.issued", self.prefetch_stats().issued),
        ] {
            let id = rec.counter(name);
            rec.add(id, value);
        }
    }

    /// Reset statistics of all three levels.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }

    /// Invalidate all private caches (used when an application migrates to
    /// this core and brings no warm state with it).
    pub fn flush(&mut self) {
        self.l1i.flush();
        self.l1d.flush();
        self.l2.flush();
    }

    /// Untimed warm-up of the data path (L1D and L2) over an address range,
    /// touching one word per cache line. Statistics are reset afterwards,
    /// so warming stands in for the warm state a SimPoint would carry
    /// without perturbing measurements.
    pub fn warm_region(&mut self, base: u64, bytes: u64) {
        let line = self.l1d.config().line_bytes;
        let mut addr = base;
        while addr < base + bytes {
            let _ = self.l1d.access(addr, false);
            let _ = self.l2.access(addr, false);
            addr += line;
        }
        self.l1d.reset_stats();
        self.l2.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (PrivateCaches, SharedMem) {
        (
            PrivateCaches::new(PrivateCacheConfig::default(), 1),
            SharedMem::new(SharedMemConfig::default()),
        )
    }

    #[test]
    fn latency_accumulates_down_the_hierarchy() {
        let (mut p, mut s) = setup();
        // Cold access goes to memory: 4 + 8 + 30 + 120 + 7.
        let o = p.access_data(0x10000, false, 0, &mut s);
        assert_eq!(o.level, MemLevel::Memory);
        assert_eq!(o.complete_at, 4 + 8 + 30 + 127);
        // Second access to the same line: L1 hit.
        let o = p.access_data(0x10000, false, 1000, &mut s);
        assert_eq!(o.level, MemLevel::L1);
        assert_eq!(o.complete_at, 1004);
    }

    #[test]
    fn l2_and_l3_hits_observed() {
        let (mut p, mut s) = setup();
        // Fill a line everywhere, then evict it from L1 only by touching
        // enough conflicting lines (L1D: 64 sets x 8 ways; addresses that
        // map to set 0 differ by 64*64 = 4096 bytes).
        p.access_data(0, false, 0, &mut s);
        for i in 1..=8 {
            p.access_data(i * 4096, false, 0, &mut s);
        }
        let o = p.access_data(0, false, 0, &mut s);
        assert_eq!(o.level, MemLevel::L2, "evicted from L1, still in L2");

        // Evict from L2 as well (L2: 512 sets x 8 ways; set-0 stride 32 KiB),
        // but keep L3 resident.
        let (mut p, mut s) = setup();
        p.access_data(0, false, 0, &mut s);
        for i in 1..=16 {
            p.access_data(i * 32768, false, 0, &mut s);
        }
        let o = p.access_data(0, false, 0, &mut s);
        assert_eq!(o.level, MemLevel::L3);
    }

    #[test]
    fn shared_l3_interference_between_requesters() {
        let mut s = SharedMem::new(SharedMemConfig::default());
        let mut a = PrivateCaches::new(PrivateCacheConfig::default(), 1);
        let mut b = PrivateCaches::new(PrivateCacheConfig::default(), 1);
        // Both cores miss to memory at the same tick: the second queues.
        let oa = a.access_data(0x100000, false, 0, &mut s);
        let ob = b.access_data(0x900000, false, 0, &mut s);
        assert_eq!(oa.level, MemLevel::Memory);
        assert_eq!(ob.level, MemLevel::Memory);
        assert!(ob.complete_at > oa.complete_at, "bandwidth contention");
        assert!(s.controller_stats().queue_ticks > 0);
    }

    #[test]
    fn slow_core_pays_scaled_private_latency() {
        let mut s = SharedMem::new(SharedMemConfig::default());
        let mut slow = PrivateCaches::new(PrivateCacheConfig::default(), 2);
        slow.access_data(0, false, 0, &mut s);
        let o = slow.access_data(0, false, 0, &mut s);
        assert_eq!(o.complete_at, 8, "L1 hit costs 4 core cycles = 8 ticks");
    }

    #[test]
    fn instruction_fetch_path() {
        let (mut p, mut s) = setup();
        let o = p.access_instr(0x4000_0000, 0, &mut s);
        assert_eq!(o.level, MemLevel::Memory);
        let o = p.access_instr(0x4000_0000, 500, &mut s);
        assert_eq!(o.level, MemLevel::L1);
        assert_eq!(o.complete_at, 502);
    }

    #[test]
    fn record_metrics_exports_hierarchy_counters() {
        let (mut p, mut s) = setup();
        p.access_data(0x10000, false, 0, &mut s);
        p.access_data(0x10000, false, 1000, &mut s);
        let mut rec = relsim_obs::Recorder::new();
        p.record_metrics(&mut rec);
        s.record_metrics(&mut rec);
        let snap = rec.snapshot();
        assert_eq!(snap.counter("mem.l1.accesses"), Some(2));
        assert_eq!(snap.counter("mem.l1.misses"), Some(1));
        assert_eq!(snap.counter("mem.l3.misses"), Some(1));
        assert_eq!(snap.counter("mem.dram.requests"), Some(1));
    }

    #[test]
    fn flush_cools_private_caches() {
        let (mut p, mut s) = setup();
        p.access_data(0, false, 0, &mut s);
        let o = p.access_data(0, false, 10, &mut s);
        assert_eq!(o.level, MemLevel::L1);
        p.flush();
        let o = p.access_data(0, false, 20, &mut s);
        assert_eq!(o.level, MemLevel::L3, "private gone, shared L3 still warm");
    }
}
