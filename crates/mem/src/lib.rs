//! # relsim-mem
//!
//! Cache hierarchy and memory controller models for the `relsim`
//! heterogeneous multicore simulator: set-associative LRU caches
//! ([`Cache`]), per-core private hierarchies ([`PrivateCaches`]), and the
//! shared L3 + bandwidth-limited DRAM controller ([`SharedMem`]) where
//! multiprogram interference arises.
//!
//! Default configurations reproduce Table 2 of *Reliability-Aware
//! Scheduling on Heterogeneous Multicore Processors* (HPCA 2017): 32 KB L1s,
//! a 256 KB private L2, an 8 MB shared L3, and 25.6 GB/s / 45 ns DRAM.
//!
//! # Quick start
//!
//! ```
//! use relsim_mem::{PrivateCacheConfig, PrivateCaches, SharedMem, SharedMemConfig};
//!
//! let mut shared = SharedMem::new(SharedMemConfig::default());
//! let mut core0 = PrivateCaches::new(PrivateCacheConfig::default(), 1);
//! let outcome = core0.access_data(0x1000, false, 0, &mut shared);
//! println!("cold miss served by {:?} at tick {}", outcome.level, outcome.complete_at);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod controller;
mod hierarchy;
mod prefetch;

pub use cache::{Cache, CacheConfig, CacheStats};
pub use controller::{MemController, MemControllerConfig, MemControllerStats};
pub use hierarchy::{
    AccessOutcome, MemLevel, PrivateCacheConfig, PrivateCaches, SharedMem, SharedMemConfig,
};
pub use prefetch::{PrefetchConfig, PrefetchStats, Prefetcher};
