//! Bandwidth-limited DRAM controller model.

use serde::{Deserialize, Serialize};

/// Configuration of the memory controller.
///
/// Defaults follow Table 2 of the paper: 25.6 GB/s of bandwidth and 45 ns
/// access latency, expressed in big-core cycles at 2.66 GHz.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemControllerConfig {
    /// DRAM access latency in ticks (45 ns ≈ 120 ticks at 2.66 GHz).
    pub latency_ticks: u64,
    /// Ticks to transfer one cache line on the memory bus
    /// (64 B / 25.6 GB/s = 2.5 ns ≈ 7 ticks at 2.66 GHz).
    pub transfer_ticks: u64,
}

impl Default for MemControllerConfig {
    fn default() -> Self {
        MemControllerConfig {
            latency_ticks: 120,
            transfer_ticks: 7,
        }
    }
}

/// Statistics of the memory controller.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemControllerStats {
    /// Total line requests served.
    pub requests: u64,
    /// Total ticks requests spent queued behind the bus (contention delay).
    pub queue_ticks: u64,
}

/// A simple bandwidth-limited memory controller.
///
/// Each request occupies the bus for `transfer_ticks`; requests arriving
/// while the bus is busy queue behind it, which is how co-running
/// applications slow each other down on memory bandwidth.
///
/// # Examples
///
/// ```
/// use relsim_mem::{MemController, MemControllerConfig};
///
/// let mut ctrl = MemController::new(MemControllerConfig::default());
/// let first = ctrl.request(0);
/// let second = ctrl.request(0); // queues behind the first transfer
/// assert!(second > first);
/// ```
#[derive(Debug, Clone)]
pub struct MemController {
    cfg: MemControllerConfig,
    next_free: u64,
    stats: MemControllerStats,
}

impl MemController {
    /// Create an idle controller.
    pub fn new(cfg: MemControllerConfig) -> Self {
        MemController {
            cfg,
            next_free: 0,
            stats: MemControllerStats::default(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> MemControllerConfig {
        self.cfg
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemControllerStats {
        self.stats
    }

    /// Reset statistics and bus state.
    pub fn reset_stats(&mut self) {
        self.stats = MemControllerStats::default();
        self.next_free = 0;
    }

    /// Issue a line request at tick `now`; returns the tick at which the
    /// data is available to the requester.
    pub fn request(&mut self, now: u64) -> u64 {
        let start = now.max(self.next_free);
        self.stats.requests += 1;
        self.stats.queue_ticks += start - now;
        self.next_free = start + self.cfg.transfer_ticks;
        start + self.cfg.latency_ticks + self.cfg.transfer_ticks
    }

    /// Tick at which the memory bus becomes free for a new transfer.
    ///
    /// The controller is *eager*: [`Self::request`] computes and returns
    /// the fill time immediately, so every in-flight fill is already fully
    /// resolved into some core's finish event. A core's event horizon
    /// therefore never needs to poll this value for correctness; it exists
    /// so callers can observe (and assert on) earliest-completion state.
    pub fn bus_free_at(&self) -> u64 {
        self.next_free
    }

    /// Average queueing delay per request in ticks.
    pub fn avg_queue_delay(&self) -> f64 {
        if self.stats.requests == 0 {
            0.0
        } else {
            self.stats.queue_ticks as f64 / self.stats.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_latency() {
        let mut c = MemController::new(MemControllerConfig::default());
        let done = c.request(1000);
        assert_eq!(done, 1000 + 120 + 7);
        assert_eq!(c.stats().queue_ticks, 0);
    }

    #[test]
    fn back_to_back_requests_serialize_on_bus() {
        let mut c = MemController::new(MemControllerConfig::default());
        let a = c.request(0);
        let b = c.request(0);
        let d = c.request(0);
        assert_eq!(a, 127);
        assert_eq!(b, 7 + 127);
        assert_eq!(d, 14 + 127);
        assert_eq!(c.stats().queue_ticks, 7 + 14);
    }

    #[test]
    fn bus_free_at_tracks_transfer_occupancy() {
        let mut c = MemController::new(MemControllerConfig::default());
        assert_eq!(c.bus_free_at(), 0);
        c.request(1000);
        assert_eq!(c.bus_free_at(), 1000 + 7);
        c.request(1000);
        assert_eq!(c.bus_free_at(), 1000 + 14, "queued behind the first");
    }

    #[test]
    fn bus_frees_up_over_time() {
        let mut c = MemController::new(MemControllerConfig::default());
        let _ = c.request(0);
        // A request far in the future sees an idle bus again.
        let done = c.request(10_000);
        assert_eq!(done, 10_000 + 127);
    }

    #[test]
    fn avg_queue_delay_reported() {
        let mut c = MemController::new(MemControllerConfig {
            latency_ticks: 100,
            transfer_ticks: 10,
        });
        c.request(0); // no delay
        c.request(0); // 10 delay
        assert!((c.avg_queue_delay() - 5.0).abs() < 1e-12);
    }
}
