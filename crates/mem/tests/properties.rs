//! Property-based tests of the cache and memory-controller models,
//! including the hierarchy invariants the interval-sampling engine's
//! functional warming relies on (fills establish presence at every
//! private level; access latencies are exactly the level floors plus
//! bounded bus queueing).

use proptest::prelude::*;
use relsim_mem::{
    Cache, CacheConfig, MemController, MemControllerConfig, MemLevel, PrivateCacheConfig,
    PrivateCaches, SharedMem, SharedMemConfig,
};
use std::collections::HashMap;

fn cache_strategy() -> impl Strategy<Value = CacheConfig> {
    // Small caches so property runs are fast: 2^s sets, 1-8 ways.
    (0u32..6, 1u32..9).prop_map(|(set_bits, ways)| {
        let sets = 1u64 << set_bits;
        CacheConfig {
            size_bytes: sets * ways as u64 * 64,
            ways,
            line_bytes: 64,
            latency: 1,
        }
    })
}

proptest! {
    /// Immediately re-accessing any address hits.
    #[test]
    fn access_then_hit(cfg in cache_strategy(), addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(cfg);
        for addr in addrs {
            let _ = c.access(addr, false);
            prop_assert!(c.access(addr, false), "addr {addr:#x} must hit after fill");
        }
    }

    /// The cache never holds more distinct lines than its capacity.
    #[test]
    fn capacity_respected(cfg in cache_strategy(), addrs in prop::collection::vec(0u64..10_000_000, 1..500)) {
        let mut c = Cache::new(cfg);
        let mut inserted: Vec<u64> = Vec::new();
        for addr in addrs {
            let _ = c.access(addr, false);
            let line = addr / 64 * 64;
            if !inserted.contains(&line) {
                inserted.push(line);
            }
        }
        let resident = inserted.iter().filter(|&&l| c.contains(l)).count() as u64;
        let capacity_lines = cfg.size_bytes / cfg.line_bytes;
        prop_assert!(resident <= capacity_lines, "{resident} lines in a {capacity_lines}-line cache");
    }

    /// Hits + misses always equals accesses; hit count matches a
    /// reference model when the working set fits one way-set.
    #[test]
    fn stats_are_consistent(cfg in cache_strategy(), addrs in prop::collection::vec(0u64..1_000_000, 0..300)) {
        let mut c = Cache::new(cfg);
        for &addr in &addrs {
            let _ = c.access(addr, false);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert_eq!(s.hits + s.misses(), s.accesses);
        prop_assert!(s.miss_ratio() >= 0.0 && s.miss_ratio() <= 1.0);
    }

    /// A direct-comparison LRU model: for a single set, the cache's
    /// hit/miss sequence matches a straightforward LRU list.
    #[test]
    fn matches_reference_lru_for_single_set(
        ways in 1u32..9,
        lines in prop::collection::vec(0u64..12, 1..300),
    ) {
        // One set: sets = 1, so every line maps there.
        let cfg = CacheConfig {
            size_bytes: ways as u64 * 64,
            ways,
            line_bytes: 64,
            latency: 1,
        };
        let mut c = Cache::new(cfg);
        let mut lru: Vec<u64> = Vec::new(); // front = most recent
        for line in lines {
            let addr = line * 64;
            let expect_hit = lru.contains(&line);
            let got_hit = c.access(addr, false);
            prop_assert_eq!(got_hit, expect_hit, "line {} divergence", line);
            lru.retain(|&l| l != line);
            lru.insert(0, line);
            lru.truncate(ways as usize);
        }
    }

    /// Write-backs only happen for lines that were written.
    #[test]
    fn writebacks_bounded_by_writes(
        ops in prop::collection::vec((0u64..2048, prop::bool::ANY), 1..400),
    ) {
        let cfg = CacheConfig { size_bytes: 4 * 64, ways: 2, line_bytes: 64, latency: 1 };
        let mut c = Cache::new(cfg);
        let mut writes = 0u64;
        for (line, is_write) in ops {
            let _ = c.access(line * 64, is_write);
            writes += is_write as u64;
        }
        prop_assert!(c.stats().writebacks <= writes);
    }

    /// Memory controller completions are monotone in request order and
    /// never earlier than latency + transfer.
    #[test]
    fn controller_completions_monotone(
        gaps in prop::collection::vec(0u64..50, 1..200),
        cfg in (1u64..300, 1u64..30).prop_map(|(l, t)| MemControllerConfig {
            latency_ticks: l,
            transfer_ticks: t,
        }),
    ) {
        let mut ctrl = MemController::new(cfg);
        let mut now = 0u64;
        let mut last_done = 0u64;
        for gap in gaps {
            now += gap;
            let done = ctrl.request(now);
            prop_assert!(done >= now + cfg.latency_ticks + cfg.transfer_ticks);
            prop_assert!(done >= last_done, "completions must be monotone");
            last_done = done;
        }
    }

    /// Inclusion on the fill path: driving an L1/L2 pair the way
    /// `PrivateCaches::access_data` does (L1 first, then L2 on miss, both
    /// filling), the just-accessed line is always present in both levels
    /// afterwards — the invariant that makes functional warming through
    /// `access_data` warm every private level at once.
    #[test]
    fn fill_establishes_presence_in_both_levels(
        l1 in cache_strategy(),
        l2 in cache_strategy(),
        addrs in prop::collection::vec(0u64..1_000_000, 1..300),
    ) {
        let mut l1 = Cache::new(l1);
        let mut l2 = Cache::new(l2);
        for addr in addrs {
            if !l1.access(addr, false) {
                let _ = l2.access(addr, false);
            }
            prop_assert!(l1.contains(addr), "L1 lost the line it just served");
            // L1 hits may outlive the line's L2 residency (no
            // back-invalidation), but a fill that went through L2 must
            // have established it there.
            if !l2.contains(addr) {
                prop_assert!(l1.contains(addr));
            }
        }
    }

    /// Every timed access completes at exactly its level's latency floor;
    /// only memory accesses may exceed theirs, and then only by the bus
    /// queueing bound (one transfer per earlier request).
    #[test]
    fn hierarchy_latency_matches_level_floor(
        addrs in prop::collection::vec((0u64..(4u64 << 20), prop::bool::ANY), 1..300),
        gaps in prop::collection::vec(0u64..200, 1..300),
    ) {
        let pcfg = PrivateCacheConfig::default();
        let scfg = SharedMemConfig::default();
        let mut p = PrivateCaches::new(pcfg, 1);
        let mut s = SharedMem::new(scfg);
        let (l1, l2) = (pcfg.l1d.latency, pcfg.l1d.latency + pcfg.l2.latency);
        let l3 = l2 + scfg.l3.latency;
        let dram_floor = l3 + scfg.controller.latency_ticks + scfg.controller.transfer_ticks;
        let mut now = 0u64;
        let mut dram_requests = 0u64;
        for ((addr, is_write), gap) in addrs.into_iter().zip(gaps) {
            now += gap;
            let o = p.access_data(addr, is_write, now, &mut s);
            let lat = o.complete_at - now;
            match o.level {
                MemLevel::L1 => prop_assert_eq!(lat, l1),
                MemLevel::L2 => prop_assert_eq!(lat, l2),
                MemLevel::L3 => prop_assert_eq!(lat, l3),
                MemLevel::Memory => {
                    prop_assert!(lat >= dram_floor, "memory access beat the DRAM floor");
                    // Queue wait is bounded by the transfers still
                    // draining: one line per earlier request.
                    prop_assert!(
                        lat <= dram_floor + dram_requests * scfg.controller.transfer_ticks,
                        "queue wait exceeds outstanding-transfer bound"
                    );
                }
            }
            // Prefetches (disabled by default) would add extra requests;
            // count only demand traffic for the occupancy bound.
            dram_requests = s.controller_stats().requests;
        }
    }

    /// Bus-occupancy accounting: with monotone arrivals, each request's
    /// queueing delay is bounded by one transfer per request before it,
    /// and the recorded `queue_ticks` equal the sum of individual delays.
    #[test]
    fn controller_queue_occupancy_bounded(
        gaps in prop::collection::vec(0u64..30, 1..200),
        cfg in (1u64..200, 1u64..20).prop_map(|(l, t)| MemControllerConfig {
            latency_ticks: l,
            transfer_ticks: t,
        }),
    ) {
        let mut ctrl = MemController::new(cfg);
        let mut now = 0u64;
        let mut delays = 0u64;
        for (i, gap) in gaps.iter().enumerate() {
            now += gap;
            let done = ctrl.request(now);
            let delay = done - now - cfg.latency_ticks - cfg.transfer_ticks;
            prop_assert!(
                delay <= i as u64 * cfg.transfer_ticks,
                "request {i} queued {delay} ticks behind at most {i} transfers"
            );
            delays += delay;
        }
        prop_assert_eq!(ctrl.stats().queue_ticks, delays);
    }

    /// Bandwidth accounting: over any request train, the bus serves at
    /// most one line per transfer window.
    #[test]
    fn controller_respects_bandwidth(
        n in 1usize..200,
        cfg in (1u64..100, 1u64..20).prop_map(|(l, t)| MemControllerConfig {
            latency_ticks: l,
            transfer_ticks: t,
        }),
    ) {
        let mut ctrl = MemController::new(cfg);
        // All requests arrive at tick 0: completion i = latency + (i+1)*transfer.
        let mut last = 0;
        for i in 0..n {
            let done = ctrl.request(0);
            prop_assert_eq!(done, cfg.latency_ticks + (i as u64 + 1) * cfg.transfer_ticks);
            prop_assert!(done > last);
            last = done;
        }
    }
}

/// Cross-checking the cache against a fully-associative per-set hash-map
/// model over longer random streams.
#[test]
fn randomized_against_reference_model() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let cfg = CacheConfig {
        size_bytes: 8 << 10,
        ways: 4,
        line_bytes: 64,
        latency: 1,
    };
    let sets = cfg.sets();
    let mut cache = Cache::new(cfg);
    // Reference: per-set LRU lists.
    let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(42);
    for i in 0..200_000u64 {
        let addr = if rng.gen_bool(0.7) {
            rng.gen_range(0u64..(4 << 10))
        } else {
            rng.gen_range(0u64..(1 << 20))
        };
        let line = addr / 64;
        let set = line % sets;
        let entry = model.entry(set).or_default();
        let expect_hit = entry.contains(&line);
        let got = cache.access(addr, false);
        assert_eq!(got, expect_hit, "divergence at access {i} addr {addr:#x}");
        entry.retain(|&l| l != line);
        entry.insert(0, line);
        entry.truncate(4);
    }
}
