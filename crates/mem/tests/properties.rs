//! Property-based tests of the cache and memory-controller models.

use proptest::prelude::*;
use relsim_mem::{Cache, CacheConfig, MemController, MemControllerConfig};
use std::collections::HashMap;

fn cache_strategy() -> impl Strategy<Value = CacheConfig> {
    // Small caches so property runs are fast: 2^s sets, 1-8 ways.
    (0u32..6, 1u32..9).prop_map(|(set_bits, ways)| {
        let sets = 1u64 << set_bits;
        CacheConfig {
            size_bytes: sets * ways as u64 * 64,
            ways,
            line_bytes: 64,
            latency: 1,
        }
    })
}

proptest! {
    /// Immediately re-accessing any address hits.
    #[test]
    fn access_then_hit(cfg in cache_strategy(), addrs in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut c = Cache::new(cfg);
        for addr in addrs {
            let _ = c.access(addr, false);
            prop_assert!(c.access(addr, false), "addr {addr:#x} must hit after fill");
        }
    }

    /// The cache never holds more distinct lines than its capacity.
    #[test]
    fn capacity_respected(cfg in cache_strategy(), addrs in prop::collection::vec(0u64..10_000_000, 1..500)) {
        let mut c = Cache::new(cfg);
        let mut inserted: Vec<u64> = Vec::new();
        for addr in addrs {
            let _ = c.access(addr, false);
            let line = addr / 64 * 64;
            if !inserted.contains(&line) {
                inserted.push(line);
            }
        }
        let resident = inserted.iter().filter(|&&l| c.contains(l)).count() as u64;
        let capacity_lines = cfg.size_bytes / cfg.line_bytes;
        prop_assert!(resident <= capacity_lines, "{resident} lines in a {capacity_lines}-line cache");
    }

    /// Hits + misses always equals accesses; hit count matches a
    /// reference model when the working set fits one way-set.
    #[test]
    fn stats_are_consistent(cfg in cache_strategy(), addrs in prop::collection::vec(0u64..1_000_000, 0..300)) {
        let mut c = Cache::new(cfg);
        for &addr in &addrs {
            let _ = c.access(addr, false);
        }
        let s = c.stats();
        prop_assert_eq!(s.accesses, addrs.len() as u64);
        prop_assert_eq!(s.hits + s.misses(), s.accesses);
        prop_assert!(s.miss_ratio() >= 0.0 && s.miss_ratio() <= 1.0);
    }

    /// A direct-comparison LRU model: for a single set, the cache's
    /// hit/miss sequence matches a straightforward LRU list.
    #[test]
    fn matches_reference_lru_for_single_set(
        ways in 1u32..9,
        lines in prop::collection::vec(0u64..12, 1..300),
    ) {
        // One set: sets = 1, so every line maps there.
        let cfg = CacheConfig {
            size_bytes: ways as u64 * 64,
            ways,
            line_bytes: 64,
            latency: 1,
        };
        let mut c = Cache::new(cfg);
        let mut lru: Vec<u64> = Vec::new(); // front = most recent
        for line in lines {
            let addr = line * 64;
            let expect_hit = lru.contains(&line);
            let got_hit = c.access(addr, false);
            prop_assert_eq!(got_hit, expect_hit, "line {} divergence", line);
            lru.retain(|&l| l != line);
            lru.insert(0, line);
            lru.truncate(ways as usize);
        }
    }

    /// Write-backs only happen for lines that were written.
    #[test]
    fn writebacks_bounded_by_writes(
        ops in prop::collection::vec((0u64..2048, prop::bool::ANY), 1..400),
    ) {
        let cfg = CacheConfig { size_bytes: 4 * 64, ways: 2, line_bytes: 64, latency: 1 };
        let mut c = Cache::new(cfg);
        let mut writes = 0u64;
        for (line, is_write) in ops {
            let _ = c.access(line * 64, is_write);
            writes += is_write as u64;
        }
        prop_assert!(c.stats().writebacks <= writes);
    }

    /// Memory controller completions are monotone in request order and
    /// never earlier than latency + transfer.
    #[test]
    fn controller_completions_monotone(
        gaps in prop::collection::vec(0u64..50, 1..200),
        cfg in (1u64..300, 1u64..30).prop_map(|(l, t)| MemControllerConfig {
            latency_ticks: l,
            transfer_ticks: t,
        }),
    ) {
        let mut ctrl = MemController::new(cfg);
        let mut now = 0u64;
        let mut last_done = 0u64;
        for gap in gaps {
            now += gap;
            let done = ctrl.request(now);
            prop_assert!(done >= now + cfg.latency_ticks + cfg.transfer_ticks);
            prop_assert!(done >= last_done, "completions must be monotone");
            last_done = done;
        }
    }

    /// Bandwidth accounting: over any request train, the bus serves at
    /// most one line per transfer window.
    #[test]
    fn controller_respects_bandwidth(
        n in 1usize..200,
        cfg in (1u64..100, 1u64..20).prop_map(|(l, t)| MemControllerConfig {
            latency_ticks: l,
            transfer_ticks: t,
        }),
    ) {
        let mut ctrl = MemController::new(cfg);
        // All requests arrive at tick 0: completion i = latency + (i+1)*transfer.
        let mut last = 0;
        for i in 0..n {
            let done = ctrl.request(0);
            prop_assert_eq!(done, cfg.latency_ticks + (i as u64 + 1) * cfg.transfer_ticks);
            prop_assert!(done > last);
            last = done;
        }
    }
}

/// Cross-checking the cache against a fully-associative per-set hash-map
/// model over longer random streams.
#[test]
fn randomized_against_reference_model() {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let cfg = CacheConfig {
        size_bytes: 8 << 10,
        ways: 4,
        line_bytes: 64,
        latency: 1,
    };
    let sets = cfg.sets();
    let mut cache = Cache::new(cfg);
    // Reference: per-set LRU lists.
    let mut model: HashMap<u64, Vec<u64>> = HashMap::new();
    let mut rng = SmallRng::seed_from_u64(42);
    for i in 0..200_000u64 {
        let addr = if rng.gen_bool(0.7) {
            rng.gen_range(0u64..(4 << 10))
        } else {
            rng.gen_range(0u64..(1 << 20))
        };
        let line = addr / 64;
        let set = line % sets;
        let entry = model.entry(set).or_default();
        let expect_hit = entry.contains(&line);
        let got = cache.access(addr, false);
        assert_eq!(got, expect_hit, "divergence at access {i} addr {addr:#x}");
        entry.retain(|&l| l != line);
        entry.insert(0, line);
        entry.truncate(4);
    }
}
