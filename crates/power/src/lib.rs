//! # relsim-power
//!
//! Event-based power model for the `relsim` simulator, standing in for the
//! McPAT results of Figure 12 in *Reliability-Aware Scheduling on
//! Heterogeneous Multicore Processors* (HPCA 2017). The figure only needs
//! the *relative* chip/system power of the three schedulers, which is
//! driven by which core type executes which workload; this model captures
//! that with per-core-type static power and per-event dynamic energies.
//!
//! # Quick start
//!
//! ```
//! use relsim_power::{CoreActivity, PowerModel, SharedActivity};
//! use relsim_cpu::CoreKind;
//!
//! let model = PowerModel::default();
//! let cores = [CoreActivity {
//!     kind: CoreKind::Big,
//!     cycles: 1_000_000,
//!     busy_cycles: 900_000,
//!     committed: 800_000,
//!     fp_ops: 100_000,
//!     mem_ops: 250_000,
//!     l1_accesses: 1_300_000,
//!     l2_accesses: 60_000,
//! }];
//! let shared = SharedActivity { l3_accesses: 20_000, mem_requests: 4_000 };
//! let report = model.report(&cores, &shared, 1_000_000);
//! assert!(report.system_watts() > report.chip_watts);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use relsim_cpu::CoreKind;
use serde::{Deserialize, Serialize};

/// Activity counters of one core over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreActivity {
    /// Core type.
    pub kind: CoreKind,
    /// Core cycles elapsed (the core is clocked the whole window).
    pub cycles: u64,
    /// Cycles with live back-end state (everything except front-end-drain
    /// stalls). An out-of-order core burns most of its dynamic power in
    /// structures that are active whenever the window holds instructions —
    /// wakeup/select, LSQ search, replay — regardless of commit rate.
    pub busy_cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Floating-point instructions committed.
    pub fp_ops: u64,
    /// Memory instructions committed.
    pub mem_ops: u64,
    /// L1 (I+D) accesses.
    pub l1_accesses: u64,
    /// Private L2 accesses.
    pub l2_accesses: u64,
}

/// Activity of the shared uncore over a window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SharedActivity {
    /// Shared L3 accesses.
    pub l3_accesses: u64,
    /// DRAM line requests.
    pub mem_requests: u64,
}

/// Power report for one window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerReport {
    /// Average chip power (cores + L3) in watts.
    pub chip_watts: f64,
    /// Average DRAM power in watts.
    pub dram_watts: f64,
}

impl PowerReport {
    /// Total system power (chip + DRAM).
    pub fn system_watts(&self) -> f64 {
        self.chip_watts + self.dram_watts
    }

    /// Energy-delay product for a run of `seconds` that completed `work`
    /// units (e.g. instructions): `E × (seconds / work)` — lower is
    /// better. Returns infinity for zero work.
    pub fn edp(&self, seconds: f64, work: f64) -> f64 {
        if work <= 0.0 || seconds <= 0.0 {
            return f64::INFINITY;
        }
        let energy = self.system_watts() * seconds;
        energy * (seconds / work)
    }

    /// Energy-delay-squared product (`E × delay²`), emphasizing
    /// performance more strongly than [`edp`](Self::edp).
    pub fn ed2p(&self, seconds: f64, work: f64) -> f64 {
        if work <= 0.0 || seconds <= 0.0 {
            return f64::INFINITY;
        }
        let energy = self.system_watts() * seconds;
        let delay = seconds / work;
        energy * delay * delay
    }
}

/// Energy/power parameters. Defaults are calibrated to plausible 32 nm
/// values: a big OoO core draws several watts under load, a small in-order
/// core well under one watt, DRAM ~1 W idle plus ~20 nJ per line transfer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerModel {
    /// Big-core static (leakage + clock) power in watts.
    pub big_static_w: f64,
    /// Small-core static power in watts.
    pub small_static_w: f64,
    /// L3 static power in watts.
    pub l3_static_w: f64,
    /// DRAM background power in watts.
    pub dram_static_w: f64,
    /// Big-core dynamic energy per busy cycle (joules) — occupancy-driven
    /// power that burns whether or not instructions commit.
    pub big_busy_epc: f64,
    /// Small-core dynamic energy per busy cycle (joules).
    pub small_busy_epc: f64,
    /// Big-core marginal dynamic energy per committed instruction (joules).
    pub big_epi: f64,
    /// Small-core marginal dynamic energy per committed instruction (joules).
    pub small_epi: f64,
    /// Extra energy per FP instruction (joules).
    pub fp_extra: f64,
    /// Extra energy per memory instruction in the core (joules).
    pub mem_extra: f64,
    /// Energy per L1 access (joules).
    pub l1_energy: f64,
    /// Energy per L2 access (joules).
    pub l2_energy: f64,
    /// Energy per L3 access (joules).
    pub l3_energy: f64,
    /// Energy per DRAM line request (joules).
    pub dram_energy: f64,
    /// Tick duration in seconds (1 / 2.66 GHz by default).
    pub tick_seconds: f64,
}

impl Default for PowerModel {
    fn default() -> Self {
        PowerModel {
            big_static_w: 2.0,
            small_static_w: 0.3,
            l3_static_w: 1.0,
            dram_static_w: 1.0,
            big_busy_epc: 0.9e-9,
            small_busy_epc: 0.15e-9,
            big_epi: 0.15e-9,
            small_epi: 0.08e-9,
            fp_extra: 0.2e-9,
            mem_extra: 0.1e-9,
            l1_energy: 0.05e-9,
            l2_energy: 0.3e-9,
            l3_energy: 2.0e-9,
            dram_energy: 35e-9,
            tick_seconds: 1.0 / 2.66e9,
        }
    }
}

impl PowerModel {
    /// Dynamic energy one core consumed over its window (joules).
    pub fn core_dynamic_energy(&self, a: &CoreActivity) -> f64 {
        let (epi, epc) = match a.kind {
            CoreKind::Big => (self.big_epi, self.big_busy_epc),
            CoreKind::Small => (self.small_epi, self.small_busy_epc),
        };
        a.busy_cycles as f64 * epc
            + a.committed as f64 * epi
            + a.fp_ops as f64 * self.fp_extra
            + a.mem_ops as f64 * self.mem_extra
            + a.l1_accesses as f64 * self.l1_energy
            + a.l2_accesses as f64 * self.l2_energy
    }

    /// Energy charged to reliability-mode overhead ticks on one core
    /// (joules): checkpoint capture and rollback re-execution keep the
    /// core clocked and its back end live, so each overhead tick costs
    /// the core's static power plus its busy-cycle dynamic energy. The
    /// marginal per-instruction energies are *not* charged — re-executed
    /// instructions already re-enter the activity counters when the
    /// replayed window is simulated.
    pub fn overhead_energy(&self, kind: CoreKind, overhead_ticks: u64) -> f64 {
        let epc = match kind {
            CoreKind::Big => self.big_busy_epc,
            CoreKind::Small => self.small_busy_epc,
        };
        let seconds = overhead_ticks as f64 * self.tick_seconds;
        self.core_static_watts(kind) * seconds + overhead_ticks as f64 * epc
    }

    /// Static power of one core (watts).
    pub fn core_static_watts(&self, kind: CoreKind) -> f64 {
        match kind {
            CoreKind::Big => self.big_static_w,
            CoreKind::Small => self.small_static_w,
        }
    }

    /// Average power over a window of `ticks` global ticks.
    ///
    /// # Panics
    ///
    /// Panics if `ticks` is zero.
    pub fn report(
        &self,
        cores: &[CoreActivity],
        shared: &SharedActivity,
        ticks: u64,
    ) -> PowerReport {
        assert!(ticks > 0, "window must be non-empty");
        let seconds = ticks as f64 * self.tick_seconds;
        let core_dynamic: f64 = cores.iter().map(|a| self.core_dynamic_energy(a)).sum();
        let core_static: f64 = cores
            .iter()
            .map(|a| self.core_static_watts(a.kind))
            .sum::<f64>()
            * seconds;
        let l3 = self.l3_static_w * seconds + shared.l3_accesses as f64 * self.l3_energy;
        let dram = self.dram_static_w * seconds + shared.mem_requests as f64 * self.dram_energy;
        PowerReport {
            chip_watts: (core_dynamic + core_static + l3) / seconds,
            dram_watts: dram / seconds,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_core(kind: CoreKind) -> CoreActivity {
        CoreActivity {
            kind,
            cycles: 1_000_000,
            busy_cycles: 950_000,
            committed: 900_000,
            fp_ops: 200_000,
            mem_ops: 300_000,
            l1_accesses: 1_500_000,
            l2_accesses: 50_000,
        }
    }

    #[test]
    fn big_core_draws_more_than_small() {
        let m = PowerModel::default();
        let big =
            m.core_dynamic_energy(&busy_core(CoreKind::Big)) + m.core_static_watts(CoreKind::Big);
        let small = m.core_dynamic_energy(&busy_core(CoreKind::Small))
            + m.core_static_watts(CoreKind::Small);
        assert!(big > 2.0 * small);
    }

    #[test]
    fn report_includes_static_floor() {
        let m = PowerModel::default();
        let idle = CoreActivity {
            kind: CoreKind::Big,
            cycles: 1_000_000,
            busy_cycles: 0,
            committed: 0,
            fp_ops: 0,
            mem_ops: 0,
            l1_accesses: 0,
            l2_accesses: 0,
        };
        let r = m.report(&[idle], &SharedActivity::default(), 1_000_000);
        assert!((r.chip_watts - (m.big_static_w + m.l3_static_w)).abs() < 1e-9);
        assert!((r.dram_watts - m.dram_static_w).abs() < 1e-9);
    }

    #[test]
    fn memory_traffic_raises_dram_power() {
        let m = PowerModel::default();
        let quiet = m.report(&[], &SharedActivity::default(), 1_000_000);
        let busy = m.report(
            &[],
            &SharedActivity {
                l3_accesses: 100_000,
                mem_requests: 100_000,
            },
            1_000_000,
        );
        assert!(busy.dram_watts > quiet.dram_watts);
        assert!(
            busy.chip_watts > quiet.chip_watts,
            "L3 energy counts as chip"
        );
        assert!(busy.system_watts() > quiet.system_watts());
    }

    #[test]
    fn edp_orders_configurations_sensibly() {
        let r = PowerReport {
            chip_watts: 10.0,
            dram_watts: 2.0,
        };
        // Same energy budget, double the work -> half the delay -> lower EDP.
        let slow = r.edp(1.0, 1e6);
        let fast = r.edp(1.0, 2e6);
        assert!(fast < slow);
        // ED2P penalizes delay harder.
        assert!(r.ed2p(1.0, 1e6) / r.ed2p(1.0, 2e6) > slow / fast);
        assert!(r.edp(1.0, 0.0).is_infinite());
        assert!(r.ed2p(0.0, 1.0).is_infinite());
    }

    #[test]
    fn overhead_energy_scales_with_ticks_and_kind() {
        let m = PowerModel::default();
        assert_eq!(m.overhead_energy(CoreKind::Big, 0), 0.0);
        let one = m.overhead_energy(CoreKind::Big, 1_000_000);
        let two = m.overhead_energy(CoreKind::Big, 2_000_000);
        assert!((two - 2.0 * one).abs() < 1e-12, "linear in overhead ticks");
        assert!(
            m.overhead_energy(CoreKind::Big, 1_000_000)
                > m.overhead_energy(CoreKind::Small, 1_000_000),
            "big-core overhead costs more"
        );
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_window_rejected() {
        let m = PowerModel::default();
        let _ = m.report(&[], &SharedActivity::default(), 0);
    }
}
