//! Property-based tests of the trace generator and profile catalog.

use proptest::prelude::*;
use relsim_trace::{
    spec2006_profiles, BenchmarkProfile, InstrSource, MemoryProfile, OpClass, OpMix, PhaseProfile,
    Suite, TraceGenerator,
};

fn arb_mix() -> impl Strategy<Value = OpMix> {
    // Draw raw weights and normalize to keep the sum <= 0.9 (leaving an
    // IntAlu remainder).
    prop::collection::vec(0.0f64..1.0, 9).prop_map(|w| {
        let sum: f64 = w.iter().sum::<f64>().max(1e-9);
        let k = 0.9 / sum;
        OpMix {
            load: w[0] * k,
            store: w[1] * k,
            branch: w[2] * k,
            int_mul: w[3] * k,
            int_div: w[4] * k,
            fp_add: w[5] * k,
            fp_mul: w[6] * k,
            fp_div: w[7] * k,
            nop: w[8] * k,
        }
    })
}

fn arb_phase() -> impl Strategy<Value = PhaseProfile> {
    (
        arb_mix(),
        1.0f64..32.0,
        0.0f64..0.2,
        0.0f64..0.05,
        0.0f64..0.8,
        0.0f64..0.9,
        10u64..1000,
    )
        .prop_map(|(mix, dep, mis, ic, stream, hot_raw, len)| {
            let hot = hot_raw.min(1.0 - stream).max(0.0);
            PhaseProfile {
                len_instrs: len,
                mix,
                mean_dep_dist: dep,
                branch_mispredict_rate: mis,
                icache_miss_rate: ic,
                mem: MemoryProfile {
                    stream_fraction: stream,
                    hot_fraction: hot,
                    hot_bytes: 4 << 10,
                    cold_bytes: 64 << 10,
                    stream_stride: 8,
                },
            }
        })
}

proptest! {
    /// Any valid profile generates well-formed instructions forever.
    #[test]
    fn generated_instructions_are_well_formed(
        phase in arb_phase(),
        seed in 0u64..1000,
    ) {
        let p = BenchmarkProfile::single_phase("prop", Suite::Int, phase);
        prop_assume!(p.is_valid());
        let mut g = TraceGenerator::new(p, seed, 0);
        for _ in 0..2000 {
            let i = g.next_instr();
            // Dependency distances are bounded.
            if let Some(d) = i.src1 { prop_assert!((1..=255).contains(&d)); }
            if let Some(d) = i.src2 { prop_assert!((1..=255).contains(&d)); }
            // Only branches mispredict; only memory ops carry addresses.
            if i.mispredict { prop_assert_eq!(i.op, OpClass::Branch); }
            if !i.op.is_mem() { prop_assert_eq!(i.addr, 0); }
            if i.op == OpClass::Nop {
                prop_assert!(i.src1.is_none() && i.src2.is_none());
            }
        }
    }

    /// Two generators with the same seed stay in lockstep regardless of
    /// interleaved wrong-path draws.
    #[test]
    fn lockstep_under_speculation(
        phase in arb_phase(),
        seed in 0u64..1000,
        wp_pattern in prop::collection::vec(0usize..12, 1..40),
    ) {
        let p = BenchmarkProfile::single_phase("prop", Suite::Fp, phase);
        prop_assume!(p.is_valid());
        let mut a = TraceGenerator::new(p.clone(), seed, 0);
        let mut b = TraceGenerator::new(p, seed, 0);
        for (i, &wp) in wp_pattern.iter().cycle().take(500).enumerate() {
            for _ in 0..wp {
                let _ = b.wrong_path_instr();
            }
            prop_assert_eq!(a.next_instr(), b.next_instr(), "diverged at {}", i);
        }
    }

    /// reset() always restores the exact initial stream.
    #[test]
    fn reset_is_exact(
        phase in arb_phase(),
        seed in 0u64..1000,
        warmup in 1usize..3000,
    ) {
        let p = BenchmarkProfile::single_phase("prop", Suite::Int, phase);
        prop_assume!(p.is_valid());
        let mut g = TraceGenerator::new(p, seed, 0);
        let head: Vec<_> = (0..50).map(|_| g.next_instr()).collect();
        for _ in 0..warmup {
            let _ = g.next_instr();
        }
        g.reset();
        let again: Vec<_> = (0..50).map(|_| g.next_instr()).collect();
        prop_assert_eq!(head, again);
    }

    /// Memory addresses always fall inside the advertised address span.
    #[test]
    fn addresses_stay_in_span(
        phase in arb_phase(),
        seed in 0u64..1000,
        base_shift in 20u32..40,
    ) {
        let base = 1u64 << base_shift;
        let p = BenchmarkProfile::single_phase("prop", Suite::Int, phase);
        prop_assume!(p.is_valid());
        let mut g = TraceGenerator::new(p, seed, base);
        let (b, span) = g.address_span();
        prop_assert_eq!(b, base);
        for _ in 0..2000 {
            let i = g.next_instr();
            if i.op.is_mem() {
                prop_assert!(i.addr >= base && i.addr < base + span,
                    "addr {:#x} outside [{:#x}, {:#x})", i.addr, base, base + span);
            }
        }
    }

    /// The generated counter advances by exactly one per correct-path
    /// instruction and never from wrong-path draws.
    #[test]
    fn generated_count_tracks_correct_path(
        phase in arb_phase(),
        n in 1u64..2000,
    ) {
        let p = BenchmarkProfile::single_phase("prop", Suite::Int, phase);
        prop_assume!(p.is_valid());
        let mut g = TraceGenerator::new(p, 3, 0);
        for _ in 0..5 {
            let _ = g.wrong_path_instr();
        }
        prop_assert_eq!(g.generated(), 0);
        for _ in 0..n {
            let _ = g.next_instr();
        }
        prop_assert_eq!(g.generated(), n);
    }
}

/// Every catalog profile must generate cleanly for an extended stream.
#[test]
fn catalog_profiles_generate_cleanly() {
    for p in spec2006_profiles() {
        let mut g = TraceGenerator::new(p.clone(), 1, 0);
        let mut mem_ops = 0u64;
        for _ in 0..20_000 {
            let i = g.next_instr();
            if i.op.is_mem() {
                mem_ops += 1;
                assert!(i.addr.is_multiple_of(8), "{}: unaligned address", p.name);
            }
        }
        assert!(
            mem_ops > 1000,
            "{}: implausibly few memory operations ({mem_ops})",
            p.name
        );
    }
}
