//! Deterministic synthetic trace generation.
//!
//! [`TraceGenerator`] turns a [`BenchmarkProfile`] into an infinite,
//! reproducible stream of dynamic instructions. Two independent streams are
//! exposed:
//!
//! * the **correct path** ([`InstrSource::next_instr`]), which advances the
//!   program through its phases, and
//! * the **wrong path** ([`InstrSource::wrong_path_instr`]), used by the core
//!   model to fill the pipeline after a branch misprediction. Wrong-path
//!   instructions are drawn from a separate RNG so that speculation depth
//!   (which varies with microarchitecture) never perturbs the correct-path
//!   instruction stream — a property the determinism tests rely on.
//!
//! Sampling is table-driven: each phase precomputes quantile tables for the
//! instruction mix and the dependency-distance distribution, so generating
//! one instruction costs a single 64-bit RNG draw plus table lookups (plus
//! one more draw for memory addresses).

use crate::instr::{Instr, OpClass};
use crate::profile::{BenchmarkProfile, MemoryProfile, OpMix, PhaseProfile};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A source of dynamic instructions for a core model.
///
/// Implemented by [`TraceGenerator`]; core models are generic over this
/// trait so tests can drive them with hand-built instruction sequences.
pub trait InstrSource {
    /// Produce the next correct-path instruction.
    fn next_instr(&mut self) -> Instr;

    /// Produce a speculative wrong-path instruction.
    ///
    /// Calls to this method must not affect the sequence returned by
    /// [`next_instr`](Self::next_instr).
    fn wrong_path_instr(&mut self) -> Instr;
}

/// Memory regions are laid out as `[hot | cold | stream]` at `addr_base`.
const REGION_ALIGN: u64 = 64;

/// Quantile-table resolution for op and dependency sampling.
const TABLE: usize = 1024;

/// Precomputed sampling tables for one phase.
#[derive(Debug, Clone)]
struct PhaseTables {
    /// Op class per quantile bucket.
    op: Box<[OpClass; TABLE]>,
    /// Dependency distance per quantile bucket (geometric distribution).
    dep: Box<[u16; TABLE]>,
    /// 16-bit misprediction threshold (`rate * 65536`).
    mis_threshold: u16,
    /// 16-bit I-cache miss threshold.
    ic_threshold: u16,
}

impl PhaseTables {
    fn build(phase: &PhaseProfile) -> Self {
        let mut op = Box::new([OpClass::IntAlu; TABLE]);
        for (i, slot) in op.iter_mut().enumerate() {
            let u = (i as f64 + 0.5) / TABLE as f64;
            *slot = sample_op_cdf(&phase.mix, u);
        }
        let mut dep = Box::new([1u16; TABLE]);
        let p = (1.0 / phase.mean_dep_dist).min(1.0);
        let log1mp = (1.0 - p).max(1e-12).ln();
        for (i, slot) in dep.iter_mut().enumerate() {
            let u = ((i as f64 + 0.5) / TABLE as f64).max(1e-12);
            let d = (u.ln() / log1mp).ceil();
            *slot = d.clamp(1.0, 255.0) as u16;
        }
        PhaseTables {
            op,
            dep,
            mis_threshold: (phase.branch_mispredict_rate * 65536.0).round() as u16,
            ic_threshold: (phase.icache_miss_rate * 65536.0).round() as u16,
        }
    }
}

fn sample_op_cdf(mix: &OpMix, u: f64) -> OpClass {
    let mut acc = mix.load;
    if u < acc {
        return OpClass::Load;
    }
    acc += mix.store;
    if u < acc {
        return OpClass::Store;
    }
    acc += mix.branch;
    if u < acc {
        return OpClass::Branch;
    }
    acc += mix.int_mul;
    if u < acc {
        return OpClass::IntMul;
    }
    acc += mix.int_div;
    if u < acc {
        return OpClass::IntDiv;
    }
    acc += mix.fp_add;
    if u < acc {
        return OpClass::FpAdd;
    }
    acc += mix.fp_mul;
    if u < acc {
        return OpClass::FpMul;
    }
    acc += mix.fp_div;
    if u < acc {
        return OpClass::FpDiv;
    }
    acc += mix.nop;
    if u < acc {
        return OpClass::Nop;
    }
    OpClass::IntAlu
}

/// Deterministic statistical instruction generator.
///
/// # Examples
///
/// ```
/// use relsim_trace::{BenchmarkProfile, InstrSource, PhaseProfile, Suite, TraceGenerator};
///
/// let profile = BenchmarkProfile::single_phase(
///     "demo", Suite::Fp, PhaseProfile::compute(10_000));
/// let mut gen = TraceGenerator::new(profile, 42, 0);
/// let first = gen.next_instr();
/// let mut gen2 = gen.clone_reset();
/// assert_eq!(first, gen2.next_instr(), "generation is deterministic");
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: BenchmarkProfile,
    tables: Vec<PhaseTables>,
    addr_base: u64,
    seed: u64,
    rng: SmallRng,
    wp_rng: SmallRng,
    phase_idx: usize,
    instrs_in_phase: u64,
    generated: u64,
    stream_pos: u64,
}

impl TraceGenerator {
    /// Create a generator for `profile`, seeded with `seed`.
    ///
    /// `addr_base` offsets every generated memory address, giving each
    /// co-running application a disjoint physical address range.
    ///
    /// # Panics
    ///
    /// Panics if the profile is invalid (see [`BenchmarkProfile::is_valid`]).
    pub fn new(profile: BenchmarkProfile, seed: u64, addr_base: u64) -> Self {
        assert!(
            profile.is_valid(),
            "invalid benchmark profile {:?}",
            profile.name
        );
        let tables = profile.phases.iter().map(PhaseTables::build).collect();
        TraceGenerator {
            tables,
            addr_base,
            seed,
            rng: SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15),
            wp_rng: SmallRng::seed_from_u64(seed ^ 0x6a09_e667_f3bc_c909),
            phase_idx: 0,
            instrs_in_phase: 0,
            generated: 0,
            stream_pos: 0,
            profile,
        }
    }

    /// Name of the underlying benchmark profile.
    pub fn name(&self) -> &str {
        &self.profile.name
    }

    /// The profile this generator draws from.
    pub fn profile(&self) -> &BenchmarkProfile {
        &self.profile
    }

    /// Number of correct-path instructions generated so far.
    pub fn generated(&self) -> u64 {
        self.generated
    }

    /// Index of the phase the generator is currently in.
    pub fn current_phase(&self) -> usize {
        self.phase_idx
    }

    /// The hot working-set span `(base, bytes)` of the current phase —
    /// the region a core's L1/L2 would hold warm for this application.
    pub fn hot_span(&self) -> (u64, u64) {
        let hot = self.profile.phases[self.phase_idx].mem.hot_bytes;
        (self.addr_base, hot)
    }

    /// The address span `(base, bytes)` this generator draws memory
    /// accesses from, across all phases. Useful for pre-warming caches.
    pub fn address_span(&self) -> (u64, u64) {
        let span = self
            .profile
            .phases
            .iter()
            .map(|p| p.mem.hot_bytes.max(REGION_ALIGN) + 2 * p.mem.cold_bytes.max(REGION_ALIGN))
            .max()
            .unwrap_or(0);
        (self.addr_base, span)
    }

    /// Reset to the initial state (an identical stream will be produced).
    pub fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed ^ 0x9e37_79b9_7f4a_7c15);
        self.wp_rng = SmallRng::seed_from_u64(self.seed ^ 0x6a09_e667_f3bc_c909);
        self.phase_idx = 0;
        self.instrs_in_phase = 0;
        self.generated = 0;
        self.stream_pos = 0;
    }

    /// Return a fresh generator with identical configuration and seed.
    pub fn clone_reset(&self) -> Self {
        TraceGenerator::new(self.profile.clone(), self.seed, self.addr_base)
    }

    fn advance_phase_cursor(&mut self) {
        self.instrs_in_phase += 1;
        if self.instrs_in_phase >= self.profile.phases[self.phase_idx].len_instrs {
            self.instrs_in_phase = 0;
            self.phase_idx = (self.phase_idx + 1) % self.profile.phases.len();
        }
    }

    fn sample_addr(&mut self, mem: &MemoryProfile, wrong_path: bool) -> u64 {
        let rng = if wrong_path {
            &mut self.wp_rng
        } else {
            &mut self.rng
        };
        let u: f64 = rng.gen();
        let hot_len = mem.hot_bytes.max(REGION_ALIGN);
        let cold_len = mem.cold_bytes.max(REGION_ALIGN);
        let addr = if u < mem.stream_fraction && !wrong_path {
            // Sequential walk over the stream region.
            let off = self.stream_pos;
            self.stream_pos = (self.stream_pos + mem.stream_stride) % cold_len;
            self.addr_base + hot_len + cold_len + off
        } else if u < mem.stream_fraction + mem.hot_fraction {
            let off = rng.gen_range(0..hot_len);
            self.addr_base + off
        } else {
            let off = rng.gen_range(0..cold_len);
            self.addr_base + hot_len + off
        };
        addr & !7 // 8-byte alignment
    }

    fn gen_instr(&mut self, wrong_path: bool) -> Instr {
        let t = &self.tables[self.phase_idx];
        // One 64-bit draw covers op selection, both dependency distances,
        // the misprediction/I-cache events and src2 presence:
        //   bits  0..10  op bucket          bits 10..20  dep1 bucket
        //   bits 20..30  dep2 bucket        bits 30..46  mispredict check
        //   bits 46..62  icache check       bits 62..64  src2 presence
        let bits: u64 = if wrong_path {
            self.wp_rng.gen()
        } else {
            self.rng.gen()
        };
        let op = t.op[(bits & 0x3ff) as usize];
        let d1 = t.dep[((bits >> 10) & 0x3ff) as usize];
        let d2 = t.dep[((bits >> 20) & 0x3ff) as usize];
        let mis_bits = ((bits >> 30) & 0xffff) as u16;
        let ic_bits = ((bits >> 46) & 0xffff) as u16;
        let src2_bits = (bits >> 62) & 0x3;

        let (src1, src2) = match op {
            OpClass::Nop => (None, None),
            OpClass::Load | OpClass::Branch => (Some(d1), None),
            OpClass::IntAlu => {
                // ~50% of ALU ops are two-source.
                (Some(d1), (src2_bits & 1 == 0).then_some(d2))
            }
            _ => (Some(d1), Some(d2)),
        };

        let mispredict = !wrong_path && op == OpClass::Branch && mis_bits < t.mis_threshold;
        let icache_miss = ic_bits < t.ic_threshold;

        let addr = if op.is_mem() {
            let mem = self.profile.phases[self.phase_idx].mem;
            self.sample_addr(&mem, wrong_path)
        } else {
            0
        };

        if !wrong_path {
            self.generated += 1;
            self.advance_phase_cursor();
        }

        Instr {
            op,
            src1,
            src2,
            addr,
            mispredict,
            icache_miss,
        }
    }
}

impl InstrSource for TraceGenerator {
    fn next_instr(&mut self) -> Instr {
        self.gen_instr(false)
    }

    fn wrong_path_instr(&mut self) -> Instr {
        self.gen_instr(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Suite;

    fn demo_profile() -> BenchmarkProfile {
        BenchmarkProfile::single_phase("demo", Suite::Int, {
            let mut p = PhaseProfile::compute(1000);
            p.mix = OpMix::int_default();
            p.branch_mispredict_rate = 0.05;
            p.icache_miss_rate = 0.01;
            p
        })
    }

    #[test]
    fn deterministic_stream() {
        let mut a = TraceGenerator::new(demo_profile(), 7, 0);
        let mut b = TraceGenerator::new(demo_profile(), 7, 0);
        for _ in 0..5000 {
            assert_eq!(a.next_instr(), b.next_instr());
        }
    }

    #[test]
    fn wrong_path_does_not_perturb_correct_path() {
        let mut a = TraceGenerator::new(demo_profile(), 7, 0);
        let mut b = TraceGenerator::new(demo_profile(), 7, 0);
        for i in 0..3000 {
            if i % 7 == 0 {
                // b speculates down the wrong path; a does not.
                for _ in 0..10 {
                    let _ = b.wrong_path_instr();
                }
            }
            assert_eq!(a.next_instr(), b.next_instr(), "diverged at {i}");
        }
    }

    #[test]
    fn reset_restores_initial_stream() {
        let mut g = TraceGenerator::new(demo_profile(), 99, 0);
        let first: Vec<_> = (0..100).map(|_| g.next_instr()).collect();
        for _ in 0..5000 {
            let _ = g.next_instr();
        }
        g.reset();
        let again: Vec<_> = (0..100).map(|_| g.next_instr()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn mix_frequencies_approximately_match() {
        let mut g = TraceGenerator::new(demo_profile(), 1, 0);
        let n = 200_000;
        let mut counts = [0usize; 10];
        for _ in 0..n {
            counts[g.next_instr().op.index()] += 1;
        }
        let mix = OpMix::int_default();
        let frac = |c: usize| c as f64 / n as f64;
        assert!((frac(counts[OpClass::Load.index()]) - mix.load).abs() < 0.01);
        assert!((frac(counts[OpClass::Store.index()]) - mix.store).abs() < 0.01);
        assert!((frac(counts[OpClass::Branch.index()]) - mix.branch).abs() < 0.01);
        assert!((frac(counts[OpClass::Nop.index()]) - mix.nop).abs() < 0.005);
    }

    #[test]
    fn dep_distance_mean_tracks_parameter() {
        for mean in [1.5, 4.0, 12.0] {
            let mut phase = PhaseProfile::compute(1000);
            phase.mean_dep_dist = mean;
            let t = PhaseTables::build(&phase);
            let got: f64 = t.dep.iter().map(|&d| d as f64).sum::<f64>() / TABLE as f64;
            assert!((got - mean).abs() / mean < 0.12, "mean {mean}: got {got}");
        }
    }

    #[test]
    fn mispredict_rate_approximately_matches() {
        let mut g = TraceGenerator::new(demo_profile(), 11, 0);
        let mut branches = 0u64;
        let mut mispredicts = 0u64;
        for _ in 0..400_000 {
            let i = g.next_instr();
            if i.op == OpClass::Branch {
                branches += 1;
                mispredicts += i.mispredict as u64;
            }
        }
        let rate = mispredicts as f64 / branches as f64;
        assert!((rate - 0.05).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn phases_cycle() {
        let profile = BenchmarkProfile {
            name: "phased".into(),
            suite: Suite::Fp,
            phases: vec![PhaseProfile::compute(100), PhaseProfile::compute(50)],
        };
        let mut g = TraceGenerator::new(profile, 5, 0);
        assert_eq!(g.current_phase(), 0);
        for _ in 0..100 {
            let _ = g.next_instr();
        }
        assert_eq!(g.current_phase(), 1);
        for _ in 0..50 {
            let _ = g.next_instr();
        }
        assert_eq!(g.current_phase(), 0, "phases wrap around");
    }

    #[test]
    fn addresses_respect_base_and_alignment() {
        let base = 1 << 32;
        let mut g = TraceGenerator::new(demo_profile(), 11, base);
        let mut seen_mem = 0;
        for _ in 0..10_000 {
            let i = g.next_instr();
            if i.op.is_mem() {
                seen_mem += 1;
                assert!(i.addr >= base, "addr below base");
                assert_eq!(i.addr % 8, 0, "addr unaligned");
            }
        }
        assert!(seen_mem > 1000, "expected plenty of memory ops");
    }

    #[test]
    fn address_span_covers_all_regions() {
        let g = TraceGenerator::new(demo_profile(), 1, 1 << 20);
        let (base, span) = g.address_span();
        assert_eq!(base, 1 << 20);
        let mem = demo_profile().phases[0].mem;
        assert_eq!(span, mem.hot_bytes + 2 * mem.cold_bytes);
    }

    #[test]
    #[should_panic(expected = "invalid benchmark profile")]
    fn invalid_profile_rejected() {
        let bad = BenchmarkProfile {
            name: "bad".into(),
            suite: Suite::Int,
            phases: vec![],
        };
        let _ = TraceGenerator::new(bad, 0, 0);
    }
}
