//! Statistical profiles for the 29 SPEC CPU2006 benchmarks.
//!
//! This module is the repository's substitution for the paper's
//! 1-billion-instruction SimPoint traces (DESIGN.md §1). Each benchmark is
//! described by instruction mix, ILP (mean dependency distance), branch
//! misprediction rate, I-cache miss rate and memory working-set behaviour.
//! The parameters are calibrated so that the *mechanisms* that produce the
//! paper's AVF spread are present:
//!
//! * front-end-miss-dominated codes (gobmk, sjeng, perlbench, gcc, …) drain
//!   the pipeline and exhibit **low** big-core AVF;
//! * memory-intensive codes that also mispredict heavily (mcf, libquantum,
//!   astar, omnetpp) fill the ROB with **un-ACE wrong-path** instructions
//!   underneath long-latency loads — also low AVF;
//! * memory-streaming codes with predictable branches (milc, lbm, leslie3d,
//!   bwaves, GemsFDTD, cactusADM) block the ROB head on memory with
//!   correct-path state behind it — **high** AVF;
//! * compute-dense, high-occupancy codes (zeusmp, hmmer) — high AVF;
//! * calculix carries an explicit low-ABC end-of-run phase, reproducing the
//!   phase change the paper uses in Figure 4.

use crate::profile::{BenchmarkProfile, MemoryProfile, OpMix, PhaseProfile, Suite};

const KB: u64 = 1 << 10;
const MB: u64 = 1 << 20;

/// Nominal phase length for single-phase benchmarks (statistically
/// homogeneous, so the value only affects phase-cycling bookkeeping).
const PHASE: u64 = 1_000_000;

#[allow(clippy::too_many_arguments)]
fn mix(
    load: f64,
    store: f64,
    branch: f64,
    int_mul: f64,
    int_div: f64,
    fp_add: f64,
    fp_mul: f64,
    fp_div: f64,
    nop: f64,
) -> OpMix {
    let m = OpMix {
        load,
        store,
        branch,
        int_mul,
        int_div,
        fp_add,
        fp_mul,
        fp_div,
        nop,
    };
    debug_assert!(m.is_valid(), "invalid mix");
    m
}

fn mem(stream: f64, hot: f64, hot_bytes: u64, cold_bytes: u64) -> MemoryProfile {
    let m = MemoryProfile {
        stream_fraction: stream,
        hot_fraction: hot,
        hot_bytes,
        cold_bytes,
        stream_stride: 8,
    };
    debug_assert!(m.is_valid(), "invalid memory profile");
    m
}

fn phase(
    len: u64,
    mix: OpMix,
    dep: f64,
    mispredict: f64,
    icache: f64,
    mem: MemoryProfile,
) -> PhaseProfile {
    PhaseProfile {
        len_instrs: len,
        mix,
        mean_dep_dist: dep,
        branch_mispredict_rate: mispredict,
        icache_miss_rate: icache,
        mem,
    }
}

fn bench(name: &str, suite: Suite, phases: Vec<PhaseProfile>) -> BenchmarkProfile {
    let b = BenchmarkProfile {
        name: name.to_owned(),
        suite,
        phases,
    };
    debug_assert!(b.is_valid());
    b
}

/// Build the full catalog of 29 SPEC CPU2006 benchmark profiles
/// (12 SPECint + 17 SPECfp), in suite order.
///
/// # Examples
///
/// ```
/// let profiles = relsim_trace::spec2006_profiles();
/// assert_eq!(profiles.len(), 29);
/// assert!(profiles.iter().any(|p| p.name == "mcf"));
/// ```
pub fn spec2006_profiles() -> Vec<BenchmarkProfile> {
    use Suite::{Fp, Int};
    vec![
        // ------------------------------------------------------ SPECint
        // perlbench: branchy interpreter with a large instruction footprint;
        // front-end misses drain the pipeline -> low AVF.
        bench(
            "perlbench",
            Int,
            vec![phase(
                PHASE,
                mix(0.24, 0.11, 0.21, 0.005, 0.0005, 0.0, 0.0, 0.0, 0.02),
                3.5,
                0.050,
                0.015,
                mem(0.05, 0.88, 32 * KB, MB),
            )],
        ),
        // bzip2: compression loops, modest working set -> medium.
        bench(
            "bzip2",
            Int,
            vec![phase(
                PHASE,
                mix(0.26, 0.09, 0.15, 0.01, 0.0, 0.0, 0.0, 0.0, 0.01),
                4.5,
                0.040,
                0.0005,
                mem(0.10, 0.80, 24 * KB, 2 * MB),
            )],
        ),
        // gcc: compiler; branchy with big code footprint -> low.
        bench(
            "gcc",
            Int,
            vec![phase(
                PHASE,
                mix(0.25, 0.13, 0.20, 0.005, 0.0, 0.0, 0.0, 0.0, 0.03),
                3.5,
                0.045,
                0.020,
                mem(0.05, 0.80, 32 * KB, 4 * MB),
            )],
        ),
        // mcf: pointer-chasing over a huge graph with poorly-predicted
        // branches; the ROB fills with wrong-path instructions underneath
        // memory accesses -> low AVF despite being memory-intensive.
        bench(
            "mcf",
            Int,
            vec![phase(
                PHASE,
                mix(0.35, 0.09, 0.19, 0.0, 0.0, 0.0, 0.0, 0.0, 0.01),
                3.0,
                0.090,
                0.001,
                mem(0.05, 0.30, 16 * KB, 256 * MB),
            )],
        ),
        // gobmk: game tree search, worst-case branch prediction -> low.
        bench(
            "gobmk",
            Int,
            vec![phase(
                PHASE,
                mix(0.22, 0.12, 0.21, 0.005, 0.0, 0.0, 0.0, 0.0, 0.02),
                3.2,
                0.110,
                0.010,
                mem(0.03, 0.92, 32 * KB, 512 * KB),
            )],
        ),
        // hmmer: high-IPC dense integer compute, nearly perfect prediction;
        // back-end queues stay full -> high occupancy, medium/high AVF.
        bench(
            "hmmer",
            Int,
            vec![phase(
                PHASE,
                mix(0.28, 0.12, 0.08, 0.01, 0.0, 0.0, 0.0, 0.0, 0.005),
                7.0,
                0.010,
                0.0002,
                mem(0.02, 0.96, 24 * KB, 256 * KB),
            )],
        ),
        // sjeng: chess search, heavy misprediction -> low.
        bench(
            "sjeng",
            Int,
            vec![phase(
                PHASE,
                mix(0.21, 0.08, 0.22, 0.005, 0.0, 0.0, 0.0, 0.0, 0.02),
                3.2,
                0.100,
                0.005,
                mem(0.03, 0.92, 32 * KB, 512 * KB),
            )],
        ),
        // libquantum: streaming over large arrays, but the frequent
        // mispredicted loop-exit branches put wrong-path state underneath
        // the memory accesses -> low AVF (paper, Section 2.3).
        bench(
            "libquantum",
            Int,
            vec![phase(
                PHASE,
                mix(0.25, 0.07, 0.25, 0.0, 0.0, 0.0, 0.0, 0.0, 0.01),
                5.0,
                0.055,
                0.0001,
                mem(0.60, 0.20, 16 * KB, 128 * MB),
            )],
        ),
        // h264ref: media encoder, regular kernels -> medium.
        bench(
            "h264ref",
            Int,
            vec![phase(
                PHASE,
                mix(0.28, 0.13, 0.10, 0.02, 0.0, 0.0, 0.0, 0.0, 0.01),
                5.0,
                0.025,
                0.002,
                mem(0.15, 0.85, 32 * KB, MB),
            )],
        ),
        // omnetpp: discrete-event simulation, pointer-heavy with
        // mispredictions -> low.
        bench(
            "omnetpp",
            Int,
            vec![phase(
                PHASE,
                mix(0.28, 0.15, 0.18, 0.005, 0.0, 0.0, 0.0, 0.0, 0.015),
                3.3,
                0.050,
                0.010,
                mem(0.05, 0.50, 32 * KB, 48 * MB),
            )],
        ),
        // astar: path-finding, data-dependent branches over a large map ->
        // low.
        bench(
            "astar",
            Int,
            vec![phase(
                PHASE,
                mix(0.29, 0.09, 0.17, 0.0, 0.0, 0.0, 0.0, 0.0, 0.01),
                3.1,
                0.080,
                0.0005,
                mem(0.05, 0.50, 24 * KB, 24 * MB),
            )],
        ),
        // xalancbmk: XML transformation, branchy with a large footprint ->
        // low/medium.
        bench(
            "xalancbmk",
            Int,
            vec![phase(
                PHASE,
                mix(0.30, 0.09, 0.22, 0.0, 0.0, 0.0, 0.0, 0.0, 0.01),
                3.4,
                0.035,
                0.015,
                mem(0.05, 0.70, 32 * KB, 8 * MB),
            )],
        ),
        // ------------------------------------------------------- SPECfp
        // bwaves: blast-wave CFD, long vectorizable streams -> high.
        bench(
            "bwaves",
            Fp,
            vec![phase(
                PHASE,
                mix(0.30, 0.08, 0.03, 0.0, 0.0, 0.16, 0.13, 0.005, 0.01),
                9.0,
                0.004,
                0.0001,
                mem(0.70, 0.15, 16 * KB, 96 * MB),
            )],
        ),
        // gamess: quantum chemistry, cache-resident compute -> medium.
        bench(
            "gamess",
            Fp,
            vec![phase(
                PHASE,
                mix(0.26, 0.08, 0.07, 0.005, 0.0, 0.16, 0.13, 0.005, 0.01),
                5.5,
                0.012,
                0.003,
                mem(0.05, 0.95, 32 * KB, 512 * KB),
            )],
        ),
        // milc: lattice QCD; memory-intensive with predictable control flow,
        // loads block the ROB head with ACE state behind them -> high
        // (paper, Section 2.3).
        bench(
            "milc",
            Fp,
            vec![phase(
                PHASE,
                mix(0.32, 0.12, 0.02, 0.0, 0.0, 0.15, 0.12, 0.002, 0.01),
                10.0,
                0.002,
                0.0002,
                mem(0.55, 0.25, 16 * KB, 128 * MB),
            )],
        ),
        // zeusmp: CFD with high IPC and MLP via full back-end queues -> high
        // (paper, Section 2.3).
        bench(
            "zeusmp",
            Fp,
            vec![phase(
                PHASE,
                mix(0.26, 0.10, 0.03, 0.005, 0.0, 0.18, 0.15, 0.005, 0.005),
                9.0,
                0.002,
                0.0003,
                mem(0.05, 0.92, 32 * KB, MB),
            )],
        ),
        // gromacs: molecular dynamics, cache-friendly kernels -> medium.
        bench(
            "gromacs",
            Fp,
            vec![phase(
                PHASE,
                mix(0.28, 0.09, 0.06, 0.005, 0.0, 0.16, 0.13, 0.008, 0.01),
                6.0,
                0.010,
                0.001,
                mem(0.05, 0.90, 32 * KB, MB),
            )],
        ),
        // cactusADM: numerical relativity stencils over big grids -> high.
        bench(
            "cactusADM",
            Fp,
            vec![phase(
                PHASE,
                mix(0.30, 0.11, 0.01, 0.0, 0.0, 0.18, 0.15, 0.003, 0.005),
                7.0,
                0.001,
                0.0002,
                mem(0.40, 0.45, 32 * KB, 48 * MB),
            )],
        ),
        // leslie3d: CFD streams -> high.
        bench(
            "leslie3d",
            Fp,
            vec![phase(
                PHASE,
                mix(0.30, 0.10, 0.04, 0.0, 0.0, 0.16, 0.13, 0.004, 0.01),
                8.5,
                0.003,
                0.0002,
                mem(0.60, 0.20, 24 * KB, 80 * MB),
            )],
        ),
        // namd: molecular dynamics, cache-resident -> medium.
        bench(
            "namd",
            Fp,
            vec![phase(
                PHASE,
                mix(0.26, 0.07, 0.05, 0.005, 0.0, 0.18, 0.15, 0.005, 0.005),
                6.5,
                0.006,
                0.0003,
                mem(0.05, 0.95, 32 * KB, 512 * KB),
            )],
        ),
        // dealII: finite elements, mixed behaviour -> medium.
        bench(
            "dealII",
            Fp,
            vec![phase(
                PHASE,
                mix(0.30, 0.10, 0.13, 0.005, 0.0, 0.11, 0.08, 0.004, 0.01),
                4.5,
                0.020,
                0.004,
                mem(0.05, 0.75, 32 * KB, 8 * MB),
            )],
        ),
        // soplex: LP solver with large sparse data -> sensitive (used in the
        // paper's Figure 11 example).
        bench(
            "soplex",
            Fp,
            vec![phase(
                PHASE,
                mix(0.32, 0.08, 0.14, 0.005, 0.0, 0.10, 0.07, 0.003, 0.01),
                6.0,
                0.020,
                0.002,
                mem(0.20, 0.55, 32 * KB, 24 * MB),
            )],
        ),
        // povray: ray tracer with near-constant behaviour; single phase ->
        // the flat ABC line in Figure 4.
        bench(
            "povray",
            Fp,
            vec![phase(
                PHASE,
                mix(0.28, 0.11, 0.12, 0.005, 0.0, 0.13, 0.10, 0.008, 0.01),
                5.0,
                0.015,
                0.002,
                mem(0.03, 0.93, 32 * KB, 512 * KB),
            )],
        ),
        // calculix: structural mechanics; a long high-occupancy compute
        // phase followed by a short, branchy, low-ABC phase, reproducing the
        // end-of-run ABC drop the paper exploits in Figure 4.
        bench(
            "calculix",
            Fp,
            vec![
                phase(
                    150_000,
                    mix(0.26, 0.08, 0.04, 0.005, 0.0, 0.18, 0.15, 0.005, 0.005),
                    7.5,
                    0.003,
                    0.0003,
                    mem(0.25, 0.60, 32 * KB, 8 * MB),
                ),
                phase(
                    40_000,
                    mix(0.22, 0.10, 0.20, 0.005, 0.0, 0.04, 0.03, 0.0, 0.02),
                    2.8,
                    0.070,
                    0.010,
                    mem(0.05, 0.85, 32 * KB, MB),
                ),
            ],
        ),
        // GemsFDTD: finite-difference time domain, streaming -> high.
        bench(
            "GemsFDTD",
            Fp,
            vec![phase(
                PHASE,
                mix(0.31, 0.10, 0.03, 0.0, 0.0, 0.15, 0.13, 0.003, 0.01),
                9.0,
                0.003,
                0.0002,
                mem(0.65, 0.15, 16 * KB, 96 * MB),
            )],
        ),
        // tonto: quantum chemistry -> medium.
        bench(
            "tonto",
            Fp,
            vec![phase(
                PHASE,
                mix(0.26, 0.09, 0.08, 0.005, 0.0, 0.15, 0.13, 0.005, 0.01),
                5.0,
                0.012,
                0.004,
                mem(0.05, 0.90, 32 * KB, MB),
            )],
        ),
        // lbm: lattice Boltzmann; almost pure streaming with virtually no
        // branches -> high.
        bench(
            "lbm",
            Fp,
            vec![phase(
                PHASE,
                mix(0.32, 0.14, 0.01, 0.0, 0.0, 0.16, 0.14, 0.002, 0.005),
                10.0,
                0.0005,
                0.0001,
                mem(0.75, 0.10, 16 * KB, 192 * MB),
            )],
        ),
        // wrf: weather model, mixed compute/memory -> medium.
        bench(
            "wrf",
            Fp,
            vec![phase(
                PHASE,
                mix(0.28, 0.09, 0.06, 0.005, 0.0, 0.16, 0.13, 0.004, 0.01),
                6.0,
                0.008,
                0.003,
                mem(0.20, 0.70, 32 * KB, 16 * MB),
            )],
        ),
        // sphinx3: speech recognition -> medium.
        bench(
            "sphinx3",
            Fp,
            vec![phase(
                PHASE,
                mix(0.30, 0.06, 0.09, 0.005, 0.0, 0.14, 0.11, 0.003, 0.01),
                5.5,
                0.015,
                0.002,
                mem(0.30, 0.60, 24 * KB, 8 * MB),
            )],
        ),
    ]
}

/// Look up one benchmark profile by name.
///
/// # Examples
///
/// ```
/// let mcf = relsim_trace::spec_profile("mcf").expect("mcf exists");
/// assert_eq!(mcf.name, "mcf");
/// assert!(relsim_trace::spec_profile("nosuch").is_none());
/// ```
pub fn spec_profile(name: &str) -> Option<BenchmarkProfile> {
    spec2006_profiles().into_iter().find(|p| p.name == name)
}

/// Names of all 29 benchmarks, in catalog order.
pub fn spec_names() -> Vec<String> {
    spec2006_profiles().into_iter().map(|p| p.name).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_has_29_valid_benchmarks() {
        let all = spec2006_profiles();
        assert_eq!(all.len(), 29);
        for p in &all {
            assert!(p.is_valid(), "{} invalid", p.name);
        }
        let ints = all.iter().filter(|p| p.suite == Suite::Int).count();
        let fps = all.iter().filter(|p| p.suite == Suite::Fp).count();
        assert_eq!(ints, 12);
        assert_eq!(fps, 17);
    }

    #[test]
    fn names_unique() {
        let names = spec_names();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }

    #[test]
    fn calculix_has_phase_change() {
        let c = spec_profile("calculix").unwrap();
        assert!(c.phases.len() >= 2, "calculix needs an end-of-run phase");
        let first = &c.phases[0];
        let last = c.phases.last().unwrap();
        assert!(
            last.branch_mispredict_rate > first.branch_mispredict_rate * 5.0,
            "final phase should be drain-heavy (low ABC)"
        );
    }

    #[test]
    fn povray_is_single_phase() {
        let p = spec_profile("povray").unwrap();
        assert_eq!(p.phases.len(), 1, "povray has near-constant ABC (Fig. 4)");
    }

    #[test]
    fn low_avf_candidates_mispredict_more_than_high() {
        let get = |n: &str| spec_profile(n).unwrap().phases[0].branch_mispredict_rate;
        for low in ["mcf", "gobmk", "sjeng", "libquantum"] {
            for high in ["milc", "lbm", "zeusmp", "leslie3d"] {
                assert!(
                    get(low) > get(high) * 5.0,
                    "{low} should mispredict far more than {high}"
                );
            }
        }
    }
}
