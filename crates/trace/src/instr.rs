//! Dynamic instruction model.
//!
//! The simulator consumes a stream of [`Instr`] values. Each instruction
//! carries everything a cycle-level core model needs: its operation class,
//! register dependency distances, a memory address (for loads and stores),
//! and front-end event annotations (branch misprediction, I-cache miss).

use serde::{Deserialize, Serialize};

/// Operation class of a dynamic instruction.
///
/// The classes map one-to-one onto the functional units of Table 2 in the
/// paper, plus loads, stores, branches and NOPs. Branches execute on an
/// integer ALU; loads and stores compute their address on an integer ALU and
/// then access the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpClass {
    /// Integer add/logic/compare (1-cycle latency).
    IntAlu,
    /// Integer multiply (3-cycle latency).
    IntMul,
    /// Integer divide (18-cycle latency, unpipelined).
    IntDiv,
    /// Floating-point add (3-cycle latency).
    FpAdd,
    /// Floating-point multiply (5-cycle latency).
    FpMul,
    /// Floating-point divide (6-cycle latency, unpipelined).
    FpDiv,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional or unconditional branch.
    Branch,
    /// No-operation. NOPs occupy pipeline resources but are never ACE.
    Nop,
}

impl OpClass {
    /// All operation classes, in a fixed order usable for indexing tables.
    pub const ALL: [OpClass; 10] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::IntDiv,
        OpClass::FpAdd,
        OpClass::FpMul,
        OpClass::FpDiv,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
        OpClass::Nop,
    ];

    /// Index of this class within [`OpClass::ALL`].
    pub fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::IntDiv => 2,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 4,
            OpClass::FpDiv => 5,
            OpClass::Load => 6,
            OpClass::Store => 7,
            OpClass::Branch => 8,
            OpClass::Nop => 9,
        }
    }

    /// True for floating-point operations (they write 128-bit registers).
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAdd | OpClass::FpMul | OpClass::FpDiv)
    }

    /// True for memory operations.
    pub fn is_mem(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether instructions of this class produce a register result.
    ///
    /// Stores, branches and NOPs do not allocate a physical destination
    /// register; everything else does.
    pub fn has_output(self) -> bool {
        !matches!(self, OpClass::Store | OpClass::Branch | OpClass::Nop)
    }
}

/// A single dynamic instruction.
///
/// Register dependencies are encoded as *dependency distances*: `src1` and
/// `src2` give the number of dynamic instructions between this instruction
/// and the producer of the corresponding source operand (1 = the immediately
/// preceding instruction). This compact encoding is standard in statistical
/// trace-driven simulation and is sufficient to model issue timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Instr {
    /// Operation class.
    pub op: OpClass,
    /// Dependency distance of the first source operand, if any.
    pub src1: Option<u16>,
    /// Dependency distance of the second source operand, if any.
    pub src2: Option<u16>,
    /// Effective address for loads and stores (byte address); 0 otherwise.
    pub addr: u64,
    /// For branches: whether the branch predictor mispredicts it.
    pub mispredict: bool,
    /// Whether fetching this instruction misses in the L1 I-cache.
    pub icache_miss: bool,
}

impl Instr {
    /// A NOP instruction with no dependencies and no events.
    pub fn nop() -> Self {
        Instr {
            op: OpClass::Nop,
            src1: None,
            src2: None,
            addr: 0,
            mispredict: false,
            icache_miss: false,
        }
    }

    /// Execution latency of this instruction class in core cycles,
    /// excluding memory-hierarchy latency for loads.
    ///
    /// Latencies follow Table 2 of the paper. Loads return the 1-cycle
    /// address-generation latency; the cache access time is added by the
    /// core model based on where the access hits.
    pub fn exec_latency(&self) -> u64 {
        match self.op {
            OpClass::IntAlu | OpClass::Branch | OpClass::Nop => 1,
            OpClass::IntMul => 3,
            OpClass::IntDiv => 18,
            OpClass::FpAdd => 3,
            OpClass::FpMul => 5,
            OpClass::FpDiv => 6,
            OpClass::Load => 1,
            OpClass::Store => 1,
        }
    }

    /// Whether this instruction produces a register value.
    pub fn has_output(&self) -> bool {
        self.op.has_output()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_classes_indexable() {
        for (i, op) in OpClass::ALL.iter().enumerate() {
            assert_eq!(op.index(), i, "index mismatch for {op:?}");
        }
    }

    #[test]
    fn latencies_match_table2() {
        let mk = |op| Instr { op, ..Instr::nop() };
        assert_eq!(mk(OpClass::IntAlu).exec_latency(), 1);
        assert_eq!(mk(OpClass::IntMul).exec_latency(), 3);
        assert_eq!(mk(OpClass::IntDiv).exec_latency(), 18);
        assert_eq!(mk(OpClass::FpAdd).exec_latency(), 3);
        assert_eq!(mk(OpClass::FpMul).exec_latency(), 5);
        assert_eq!(mk(OpClass::FpDiv).exec_latency(), 6);
    }

    #[test]
    fn output_register_rules() {
        assert!(OpClass::Load.has_output());
        assert!(OpClass::IntAlu.has_output());
        assert!(OpClass::FpMul.has_output());
        assert!(!OpClass::Store.has_output());
        assert!(!OpClass::Branch.has_output());
        assert!(!OpClass::Nop.has_output());
    }

    #[test]
    fn fp_and_mem_classification() {
        assert!(OpClass::FpAdd.is_fp());
        assert!(!OpClass::IntMul.is_fp());
        assert!(OpClass::Load.is_mem());
        assert!(OpClass::Store.is_mem());
        assert!(!OpClass::Branch.is_mem());
    }

    #[test]
    fn nop_constructor_is_inert() {
        let n = Instr::nop();
        assert_eq!(n.op, OpClass::Nop);
        assert!(n.src1.is_none() && n.src2.is_none());
        assert!(!n.mispredict && !n.icache_miss);
    }
}
