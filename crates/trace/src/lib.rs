//! # relsim-trace
//!
//! Synthetic, statistically-profiled instruction traces for the `relsim`
//! heterogeneous multicore simulator.
//!
//! This crate is the workload substrate of the reproduction of
//! *Reliability-Aware Scheduling on Heterogeneous Multicore Processors*
//! (HPCA 2017). The paper evaluates on 1-billion-instruction SPEC CPU2006
//! SimPoints; since those traces are not redistributable, this crate
//! synthesizes statistically equivalent instruction streams from
//! per-benchmark profiles (see [`spec2006_profiles`]) that preserve the
//! workload characteristics the paper's results depend on: instruction mix,
//! ILP, branch-misprediction and I-cache miss rates, memory working sets,
//! and program phase behaviour.
//!
//! # Quick start
//!
//! ```
//! use relsim_trace::{spec_profile, InstrSource, TraceGenerator};
//!
//! let profile = spec_profile("milc").expect("milc is in the catalog");
//! let mut gen = TraceGenerator::new(profile, /*seed*/ 1, /*addr_base*/ 0);
//! let instr = gen.next_instr();
//! println!("first milc instruction: {:?}", instr.op);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod generate;
mod instr;
mod profile;
mod record;
mod spec;

pub use generate::{InstrSource, TraceGenerator};
pub use instr::{Instr, OpClass};
pub use profile::{BenchmarkProfile, MemoryProfile, OpMix, PhaseProfile, Suite};
pub use record::{record_from_source, ReadTraceError, RecordedTrace, TraceWriter};
pub use spec::{spec2006_profiles, spec_names, spec_profile};
