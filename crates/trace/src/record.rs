//! Recording and replaying instruction traces.
//!
//! A [`TraceWriter`] serializes any instruction stream into a compact
//! binary format (16 bytes per instruction plus a 16-byte header), and a
//! [`RecordedTrace`] replays it as an [`InstrSource`]. This decouples
//! workload generation from simulation: traces can be generated once and
//! replayed many times, shipped between machines, or — in principle —
//! converted from real instruction traces produced by binary
//! instrumentation.

use crate::generate::InstrSource;
use crate::instr::{Instr, OpClass};
use std::io::{self, Read, Write};

const MAGIC: &[u8; 8] = b"RELSIMT\x01";

fn op_to_u8(op: OpClass) -> u8 {
    op.index() as u8
}

fn op_from_u8(v: u8) -> Option<OpClass> {
    OpClass::ALL.get(v as usize).copied()
}

/// Streaming writer for the binary trace format.
///
/// # Examples
///
/// ```
/// use relsim_trace::{Instr, RecordedTrace, TraceWriter};
///
/// let mut buf = Vec::new();
/// let mut w = TraceWriter::new(&mut buf);
/// w.write(&Instr::nop()).unwrap();
/// w.finish().unwrap();
/// let trace = RecordedTrace::read(&buf[..]).unwrap();
/// assert_eq!(trace.len(), 1);
/// ```
#[derive(Debug)]
pub struct TraceWriter<W: Write> {
    out: W,
    count: u64,
    header_written: bool,
}

impl<W: Write> TraceWriter<W> {
    /// Wrap a writer. A mutable reference also works (`&mut Vec<u8>`).
    pub fn new(out: W) -> Self {
        TraceWriter {
            out,
            count: 0,
            header_written: false,
        }
    }

    /// Append one instruction.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn write(&mut self, instr: &Instr) -> io::Result<()> {
        if !self.header_written {
            self.out.write_all(MAGIC)?;
            // Count placeholder: patched logically by the reader, which
            // trusts the trailing count written by `finish`.
            self.header_written = true;
        }
        let mut rec = [0u8; 16];
        rec[0] = op_to_u8(instr.op);
        rec[1] = (instr.mispredict as u8) | ((instr.icache_miss as u8) << 1);
        rec[2..4].copy_from_slice(&instr.src1.unwrap_or(0).to_le_bytes());
        rec[4..6].copy_from_slice(&instr.src2.unwrap_or(0).to_le_bytes());
        rec[6..8].copy_from_slice(&[0, 0]); // reserved
        rec[8..16].copy_from_slice(&instr.addr.to_le_bytes());
        self.out.write_all(&rec)?;
        self.count += 1;
        Ok(())
    }

    /// Finish the trace, writing the trailing record count.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the underlying writer.
    pub fn finish(mut self) -> io::Result<u64> {
        if !self.header_written {
            self.out.write_all(MAGIC)?;
        }
        self.out.write_all(&self.count.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.count)
    }
}

/// Errors while reading a recorded trace.
#[derive(Debug)]
pub enum ReadTraceError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The input is not a relsim trace (bad magic) or is corrupt.
    Malformed(&'static str),
}

impl std::fmt::Display for ReadTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ReadTraceError::Malformed(what) => write!(f, "malformed trace: {what}"),
        }
    }
}

impl std::error::Error for ReadTraceError {}

impl From<io::Error> for ReadTraceError {
    fn from(e: io::Error) -> Self {
        ReadTraceError::Io(e)
    }
}

/// An in-memory recorded trace, replayable as an [`InstrSource`].
///
/// Replay loops back to the beginning when the recording is exhausted
/// (matching the restart semantics of the live generator). Wrong-path
/// requests replay *future* instructions from a separate cursor — a common
/// approximation in trace-driven simulation, since recorded traces contain
/// the correct path only.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordedTrace {
    instrs: Vec<Instr>,
    pos: usize,
    wp_pos: usize,
    /// Completed replay passes over the recording.
    pub loops: u64,
}

impl RecordedTrace {
    /// Build directly from instructions.
    ///
    /// # Panics
    ///
    /// Panics if `instrs` is empty.
    pub fn from_instrs(instrs: Vec<Instr>) -> Self {
        assert!(!instrs.is_empty(), "empty trace");
        RecordedTrace {
            instrs,
            pos: 0,
            wp_pos: 0,
            loops: 0,
        }
    }

    /// Parse the binary format from any reader.
    ///
    /// # Errors
    ///
    /// Returns [`ReadTraceError`] when the input is not a valid trace.
    pub fn read<R: Read>(mut input: R) -> Result<Self, ReadTraceError> {
        let mut magic = [0u8; 8];
        input.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(ReadTraceError::Malformed("bad magic"));
        }
        let mut body = Vec::new();
        input.read_to_end(&mut body)?;
        if body.len() < 8 || (body.len() - 8) % 16 != 0 {
            return Err(ReadTraceError::Malformed("truncated body"));
        }
        let n = (body.len() - 8) / 16;
        let mut count_bytes = [0u8; 8];
        count_bytes.copy_from_slice(&body[body.len() - 8..]);
        if u64::from_le_bytes(count_bytes) != n as u64 {
            return Err(ReadTraceError::Malformed("count mismatch"));
        }
        let mut instrs = Vec::with_capacity(n);
        for rec in body[..body.len() - 8].chunks_exact(16) {
            let op = op_from_u8(rec[0]).ok_or(ReadTraceError::Malformed("bad opcode"))?;
            let src1 = u16::from_le_bytes([rec[2], rec[3]]);
            let src2 = u16::from_le_bytes([rec[4], rec[5]]);
            let mut addr_bytes = [0u8; 8];
            addr_bytes.copy_from_slice(&rec[8..16]);
            instrs.push(Instr {
                op,
                src1: (src1 != 0).then_some(src1),
                src2: (src2 != 0).then_some(src2),
                addr: u64::from_le_bytes(addr_bytes),
                mispredict: rec[1] & 1 != 0,
                icache_miss: rec[1] & 2 != 0,
            });
        }
        if instrs.is_empty() {
            return Err(ReadTraceError::Malformed("empty trace"));
        }
        Ok(Self::from_instrs(instrs))
    }

    /// Number of recorded instructions.
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Always false (empty traces are rejected at construction).
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Restart replay from the beginning.
    pub fn reset(&mut self) {
        self.pos = 0;
        self.wp_pos = 0;
        self.loops = 0;
    }
}

impl InstrSource for RecordedTrace {
    fn next_instr(&mut self) -> Instr {
        let i = self.instrs[self.pos];
        self.pos += 1;
        if self.pos == self.instrs.len() {
            self.pos = 0;
            self.loops += 1;
        }
        self.wp_pos = self.pos;
        i
    }

    fn wrong_path_instr(&mut self) -> Instr {
        // Replay upcoming instructions as speculative filler, stripped of
        // their events (a wrong path does not redirect again).
        let mut i = self.instrs[self.wp_pos];
        self.wp_pos = (self.wp_pos + 1) % self.instrs.len();
        i.mispredict = false;
        i.icache_miss = false;
        i
    }
}

/// Record `n` correct-path instructions from any source.
pub fn record_from_source<S: InstrSource, W: Write>(
    source: &mut S,
    n: u64,
    out: W,
) -> io::Result<u64> {
    let mut w = TraceWriter::new(out);
    for _ in 0..n {
        w.write(&source.next_instr())?;
    }
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::TraceGenerator;
    use crate::spec::spec_profile;

    fn demo_instrs() -> Vec<Instr> {
        vec![
            Instr {
                op: OpClass::Load,
                src1: Some(3),
                src2: None,
                addr: 0xdead_b000,
                mispredict: false,
                icache_miss: true,
            },
            Instr {
                op: OpClass::Branch,
                src1: Some(1),
                src2: None,
                addr: 0,
                mispredict: true,
                icache_miss: false,
            },
            Instr::nop(),
        ]
    }

    #[test]
    fn round_trip_preserves_instructions() {
        let instrs = demo_instrs();
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        for i in &instrs {
            w.write(i).unwrap();
        }
        assert_eq!(w.finish().unwrap(), 3);
        let t = RecordedTrace::read(&buf[..]).unwrap();
        assert_eq!(t.len(), 3);
        let mut t = t;
        for want in &instrs {
            assert_eq!(&t.next_instr(), want);
        }
    }

    #[test]
    fn replay_loops_like_the_paper_restart_rule() {
        let mut t = RecordedTrace::from_instrs(demo_instrs());
        for _ in 0..7 {
            let _ = t.next_instr();
        }
        assert_eq!(t.loops, 2);
        assert_eq!(t.next_instr(), demo_instrs()[1]);
    }

    #[test]
    fn wrong_path_replays_future_without_events() {
        let mut t = RecordedTrace::from_instrs(demo_instrs());
        let _ = t.next_instr(); // consume the load
        let wp = t.wrong_path_instr(); // peeks the branch
        assert_eq!(wp.op, OpClass::Branch);
        assert!(!wp.mispredict, "events stripped on the wrong path");
        // Correct path unaffected.
        assert!(t.next_instr().mispredict);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            RecordedTrace::read(&b"not a trace"[..]),
            Err(ReadTraceError::Io(_)) | Err(ReadTraceError::Malformed(_))
        ));
        let mut buf = Vec::new();
        TraceWriter::new(&mut buf).finish().unwrap();
        assert!(matches!(
            RecordedTrace::read(&buf[..]),
            Err(ReadTraceError::Malformed("empty trace"))
        ));
        // Corrupt the trailing count.
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf);
        w.write(&Instr::nop()).unwrap();
        w.finish().unwrap();
        let last = buf.len() - 1;
        buf[last] ^= 0xff;
        assert!(matches!(
            RecordedTrace::read(&buf[..]),
            Err(ReadTraceError::Malformed("count mismatch"))
        ));
    }

    #[test]
    fn recorded_generator_trace_matches_live_generation() {
        let profile = spec_profile("hmmer").unwrap();
        let mut live = TraceGenerator::new(profile.clone(), 9, 0);
        let mut buf = Vec::new();
        record_from_source(&mut live, 5000, &mut buf).unwrap();
        let mut replay = RecordedTrace::read(&buf[..]).unwrap();
        let mut fresh = TraceGenerator::new(profile, 9, 0);
        for i in 0..5000 {
            assert_eq!(replay.next_instr(), fresh.next_instr(), "diverged at {i}");
        }
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn empty_trace_rejected() {
        let _ = RecordedTrace::from_instrs(Vec::new());
    }
}
