//! Statistical workload profiles.
//!
//! A [`BenchmarkProfile`] is a compact statistical description of a program:
//! its instruction mix, dependency-distance distribution (instruction-level
//! parallelism), branch-misprediction and I-cache miss rates, and memory
//! access behaviour (working-set sizes and streaming/random mix), optionally
//! split into a sequence of program phases.
//!
//! Profiles are the substitution this reproduction makes for SPEC CPU2006
//! SimPoint traces (see DESIGN.md §1): each profile is calibrated so that
//! the resulting big-core AVF, CPI stack and phase behaviour qualitatively
//! match the corresponding benchmark in the paper.

use serde::{Deserialize, Serialize};

/// Instruction-mix fractions. All fields are probabilities; the non-listed
/// remainder (up to 1.0) is assigned to plain integer ALU operations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OpMix {
    /// Fraction of loads.
    pub load: f64,
    /// Fraction of stores.
    pub store: f64,
    /// Fraction of branches.
    pub branch: f64,
    /// Fraction of integer multiplies.
    pub int_mul: f64,
    /// Fraction of integer divides.
    pub int_div: f64,
    /// Fraction of floating-point adds.
    pub fp_add: f64,
    /// Fraction of floating-point multiplies.
    pub fp_mul: f64,
    /// Fraction of floating-point divides.
    pub fp_div: f64,
    /// Fraction of NOPs (never ACE).
    pub nop: f64,
}

impl OpMix {
    /// A typical integer-code mix: mostly ALU ops, loads, stores, branches.
    pub fn int_default() -> Self {
        OpMix {
            load: 0.25,
            store: 0.10,
            branch: 0.18,
            int_mul: 0.01,
            int_div: 0.001,
            fp_add: 0.0,
            fp_mul: 0.0,
            fp_div: 0.0,
            nop: 0.02,
        }
    }

    /// A typical floating-point mix: fewer branches, substantial FP work.
    pub fn fp_default() -> Self {
        OpMix {
            load: 0.28,
            store: 0.10,
            branch: 0.05,
            int_mul: 0.005,
            int_div: 0.0,
            fp_add: 0.14,
            fp_mul: 0.12,
            fp_div: 0.005,
            nop: 0.02,
        }
    }

    /// Sum of all explicit fractions (the integer-ALU remainder is
    /// `1.0 - total()`).
    pub fn total(&self) -> f64 {
        self.load
            + self.store
            + self.branch
            + self.int_mul
            + self.int_div
            + self.fp_add
            + self.fp_mul
            + self.fp_div
            + self.nop
    }

    /// Whether the mix is valid: all fractions non-negative and summing to
    /// at most 1.0 (leaving a non-negative integer-ALU remainder).
    pub fn is_valid(&self) -> bool {
        let fields = [
            self.load,
            self.store,
            self.branch,
            self.int_mul,
            self.int_div,
            self.fp_add,
            self.fp_mul,
            self.fp_div,
            self.nop,
        ];
        fields.iter().all(|f| *f >= 0.0) && self.total() <= 1.0 + 1e-9
    }
}

/// Memory access behaviour of a phase.
///
/// Each load/store address is drawn from one of three streams:
/// a sequential *streaming* walk (spatial locality, prefetch-like reuse of
/// cache lines), a small *hot* working set (temporal locality, L1-resident),
/// and a large *cold* working set (capacity misses that exercise L2, the
/// shared L3 and memory depending on `cold_bytes`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// Probability that an access belongs to the streaming walk.
    pub stream_fraction: f64,
    /// Probability that an access hits the hot working set.
    /// The remainder (1 - stream - hot) goes to the cold working set.
    pub hot_fraction: f64,
    /// Size of the hot working set in bytes (choose ≤ L1D to model hits).
    pub hot_bytes: u64,
    /// Size of the cold working set in bytes. Sizes beyond the L3 capacity
    /// produce main-memory traffic.
    pub cold_bytes: u64,
    /// Stride of the streaming walk in bytes.
    pub stream_stride: u64,
}

impl MemoryProfile {
    /// Cache-friendly default: nearly everything in a small hot set.
    pub fn cache_resident() -> Self {
        MemoryProfile {
            stream_fraction: 0.05,
            hot_fraction: 0.90,
            hot_bytes: 16 << 10,
            cold_bytes: 512 << 10,
            stream_stride: 8,
        }
    }

    /// Streaming default: large sequential walks through memory.
    pub fn streaming() -> Self {
        MemoryProfile {
            stream_fraction: 0.70,
            hot_fraction: 0.20,
            hot_bytes: 16 << 10,
            cold_bytes: 64 << 20,
            stream_stride: 8,
        }
    }

    /// Pointer-chasing default: random accesses over a huge working set.
    pub fn pointer_chasing() -> Self {
        MemoryProfile {
            stream_fraction: 0.05,
            hot_fraction: 0.35,
            hot_bytes: 16 << 10,
            cold_bytes: 256 << 20,
            stream_stride: 8,
        }
    }

    /// Whether the fractions are valid probabilities.
    pub fn is_valid(&self) -> bool {
        self.stream_fraction >= 0.0
            && self.hot_fraction >= 0.0
            && self.stream_fraction + self.hot_fraction <= 1.0 + 1e-9
            && self.hot_bytes > 0
            && self.cold_bytes > 0
            && self.stream_stride > 0
    }
}

/// One program phase: a statistically homogeneous region of execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Length of the phase in dynamic instructions. After the last phase the
    /// generator wraps back to the first, so phases also define the period
    /// of the program's time-varying behaviour.
    pub len_instrs: u64,
    /// Instruction mix.
    pub mix: OpMix,
    /// Mean register-dependency distance. Larger values mean more ILP:
    /// consumers are further from producers, so more instructions can issue
    /// in parallel.
    pub mean_dep_dist: f64,
    /// Probability that a branch is mispredicted.
    pub branch_mispredict_rate: f64,
    /// Probability that fetching an instruction misses the L1 I-cache.
    pub icache_miss_rate: f64,
    /// Memory behaviour.
    pub mem: MemoryProfile,
}

impl PhaseProfile {
    /// A cache-resident, well-predicted compute phase of the given length.
    pub fn compute(len_instrs: u64) -> Self {
        PhaseProfile {
            len_instrs,
            mix: OpMix::fp_default(),
            mean_dep_dist: 6.0,
            branch_mispredict_rate: 0.01,
            icache_miss_rate: 0.0005,
            mem: MemoryProfile::cache_resident(),
        }
    }

    /// Validity of all contained distributions.
    pub fn is_valid(&self) -> bool {
        self.len_instrs > 0
            && self.mix.is_valid()
            && self.mean_dep_dist >= 1.0
            && (0.0..=1.0).contains(&self.branch_mispredict_rate)
            && (0.0..=1.0).contains(&self.icache_miss_rate)
            && self.mem.is_valid()
    }
}

/// Which SPEC CPU2006 suite a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// SPECint 2006.
    Int,
    /// SPECfp 2006.
    Fp,
}

/// A complete statistical profile of one benchmark.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkProfile {
    /// Benchmark name (e.g. `"mcf"`).
    pub name: String,
    /// Suite membership.
    pub suite: Suite,
    /// Ordered program phases. Must be non-empty.
    pub phases: Vec<PhaseProfile>,
}

impl BenchmarkProfile {
    /// Create a single-phase profile.
    pub fn single_phase(name: impl Into<String>, suite: Suite, phase: PhaseProfile) -> Self {
        BenchmarkProfile {
            name: name.into(),
            suite,
            phases: vec![phase],
        }
    }

    /// Total instructions across one pass of all phases.
    pub fn period_instrs(&self) -> u64 {
        self.phases.iter().map(|p| p.len_instrs).sum()
    }

    /// Validity of the profile and all phases.
    pub fn is_valid(&self) -> bool {
        !self.phases.is_empty() && self.phases.iter().all(PhaseProfile::is_valid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mixes_valid() {
        assert!(OpMix::int_default().is_valid());
        assert!(OpMix::fp_default().is_valid());
        assert!(OpMix::int_default().total() < 1.0);
    }

    #[test]
    fn invalid_mix_detected() {
        let mut m = OpMix::int_default();
        m.load = 0.9; // total now > 1
        assert!(!m.is_valid());
        let mut m = OpMix::int_default();
        m.store = -0.1;
        assert!(!m.is_valid());
    }

    #[test]
    fn memory_profiles_valid() {
        assert!(MemoryProfile::cache_resident().is_valid());
        assert!(MemoryProfile::streaming().is_valid());
        assert!(MemoryProfile::pointer_chasing().is_valid());
    }

    #[test]
    fn phase_and_profile_validity() {
        let p = PhaseProfile::compute(1_000_000);
        assert!(p.is_valid());
        let b = BenchmarkProfile::single_phase("test", Suite::Fp, p.clone());
        assert!(b.is_valid());
        assert_eq!(b.period_instrs(), 1_000_000);

        let empty = BenchmarkProfile {
            name: "empty".into(),
            suite: Suite::Int,
            phases: vec![],
        };
        assert!(!empty.is_valid());

        let mut bad = p;
        bad.mean_dep_dist = 0.5;
        assert!(!bad.is_valid());
    }
}
