//! The two-tier entry store, its single-flight registry, and the
//! process-wide instance.

use crate::hash::Key;
use relsim_obs::warn;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Magic prefix of every persisted entry (8 bytes).
const MAGIC: [u8; 8] = *b"RELSIMC\0";
/// Bump when the on-disk entry framing changes; readers treat any other
/// version as a miss. (Payload *content* invalidation is the key's job,
/// via the model-version guard hashed into it.)
const FORMAT_VERSION: u32 = 1;
/// magic + version + payload_len + payload checksum.
const HEADER_LEN: usize = 8 + 4 + 8 + 16;

/// How a [`Store`] is set up.
#[derive(Debug, Clone, Default)]
pub struct CacheConfig {
    /// Persistent-tier directory; `None` keeps the store memory-only.
    pub dir: Option<PathBuf>,
}

/// Monotonic counters describing one store's traffic, snapshotted for
/// manifests and end-of-run logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Lookups served from the cache (memory, disk, or after waiting out
    /// another caller's in-flight computation).
    pub hits: u64,
    /// Hits served from the in-memory tier.
    pub memory_hits: u64,
    /// Hits served from the persistent tier (then promoted to memory).
    pub disk_hits: u64,
    /// Lookups that found nothing and handed the caller a compute lease.
    pub misses: u64,
    /// Entries written (memory, plus disk when configured).
    pub stores: u64,
    /// Entries dropped: corrupt/truncated/version-mismatched disk files
    /// and explicit invalidations after an undecodable payload.
    pub invalidations: u64,
    /// Payload bytes read from the persistent tier.
    pub bytes_read: u64,
    /// Payload bytes written to the persistent tier.
    pub bytes_written: u64,
}

impl CacheStats {
    /// Total lookups resolved (hits + misses).
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache; 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let n = self.lookups();
        if n == 0 {
            0.0
        } else {
            self.hits as f64 / n as f64
        }
    }
}

#[derive(Default)]
struct StatCells {
    hits: AtomicU64,
    memory_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    stores: AtomicU64,
    invalidations: AtomicU64,
    bytes_read: AtomicU64,
    bytes_written: AtomicU64,
}

/// One in-flight computation; waiters block on the condvar until the
/// leader's lease is dropped.
struct FlightSlot {
    done: Mutex<bool>,
    cv: Condvar,
}

/// Acquire a mutex, recovering from poisoning instead of panicking.
///
/// A long-lived process (the `relsim-serve` daemon in particular) must
/// survive a thread that panicked while holding a cache lock: every
/// value these mutexes guard is valid at every instruction boundary
/// (map inserts/removes and a `bool` flag — no multi-step invariants),
/// so the poison flag carries no information here and propagating it
/// would let one crashed request take down every unrelated cache user.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Which tier served a hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// The in-process map.
    Memory,
    /// The persistent directory.
    Disk,
}

impl Tier {
    /// Lowercase name for events and logs.
    pub fn name(self) -> &'static str {
        match self {
            Tier::Memory => "memory",
            Tier::Disk => "disk",
        }
    }
}

/// Outcome of [`Store::lookup_or_lead`].
pub enum Lookup<'a> {
    /// The payload was already cached (or another caller just finished
    /// computing it).
    Hit(Arc<Vec<u8>>, Tier),
    /// Nothing cached and nobody else is computing it: the caller holds
    /// the compute lease and must [`Store::put`] (or just drop the lease
    /// on failure, waking any waiters to try for themselves).
    Lead(Lease<'a>),
}

/// The single-flight compute lease for one key. This is a drop guard:
/// dropping it — with or without a preceding [`Store::put`], on the
/// clean failure path *or while unwinding from a panic* — removes the
/// key from the in-flight registry, marks the slot done, and wakes
/// every waiter. A waiter that then re-probes and still misses takes
/// over as the next leader, so a crashed leader never strands the key.
pub struct Lease<'a> {
    store: &'a Store,
    key: Key,
}

impl Drop for Lease<'_> {
    fn drop(&mut self) {
        // This runs during panic unwinding, so it must not be able to
        // panic itself (a second panic aborts the process): every lock
        // is acquired with poison recovery, never `expect`.
        let slot = lock_recover(&self.store.inflight).remove(&self.key.0);
        if let Some(slot) = slot {
            *lock_recover(&slot.done) = true;
            slot.cv.notify_all();
        }
    }
}

/// A content-addressed payload store: in-memory tier, optional
/// persistent tier, and a single-flight registry for concurrent lookups.
pub struct Store {
    dir: Option<PathBuf>,
    mem: Mutex<HashMap<u128, Arc<Vec<u8>>>>,
    inflight: Mutex<HashMap<u128, Arc<FlightSlot>>>,
    stats: StatCells,
    disk_write_failed: AtomicBool,
}

impl Store {
    /// Open a store. The persistent directory is created lazily on first
    /// write; an unusable directory degrades to memory-only with a
    /// warning, never an error.
    pub fn new(config: CacheConfig) -> Self {
        Store {
            dir: config.dir,
            mem: Mutex::new(HashMap::new()),
            inflight: Mutex::new(HashMap::new()),
            stats: StatCells::default(),
            disk_write_failed: AtomicBool::new(false),
        }
    }

    /// The persistent-tier directory, if configured.
    pub fn dir(&self) -> Option<&PathBuf> {
        self.dir.as_ref()
    }

    fn entry_path(&self, key: Key) -> Option<PathBuf> {
        let hex = key.hex();
        // Two-level fan-out keeps directories small at full-grid scale.
        self.dir
            .as_ref()
            .map(|d| d.join(&hex[..2]).join(format!("{hex}.rsc")))
    }

    /// Probe both tiers without taking a lease. Corrupt disk entries are
    /// dropped (warned, counted) and read as a miss.
    fn probe(&self, key: Key) -> Option<(Arc<Vec<u8>>, Tier)> {
        if let Some(p) = lock_recover(&self.mem).get(&key.0).cloned() {
            return Some((p, Tier::Memory));
        }
        let path = self.entry_path(key)?;
        let raw = std::fs::read(&path).ok()?;
        match decode_entry(&raw) {
            Ok(payload) => {
                self.stats
                    .bytes_read
                    .fetch_add(payload.len() as u64, Ordering::Relaxed);
                let arc = Arc::new(payload);
                lock_recover(&self.mem).insert(key.0, arc.clone());
                Some((arc, Tier::Disk))
            }
            Err(reason) => {
                warn!("cache: dropping corrupt entry {path:?} ({reason}); recomputing");
                let _ = std::fs::remove_file(&path);
                self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Probe both tiers *without* taking a lease on a miss. A hit counts
    /// in [`CacheStats`] exactly like a [`Store::lookup_or_lead`] hit; a
    /// miss counts nothing — the caller is expected to come back through
    /// [`Store::lookup_or_lead`] (which will record the miss) if it wants
    /// the entry computed. This is the warm-path short-circuit for
    /// callers that must not block or queue work on a cold key, e.g. the
    /// `relsim-serve` admission check.
    pub fn peek(&self, key: Key) -> Option<(Arc<Vec<u8>>, Tier)> {
        let (payload, tier) = self.probe(key)?;
        self.stats.hits.fetch_add(1, Ordering::Relaxed);
        match tier {
            Tier::Memory => self.stats.memory_hits.fetch_add(1, Ordering::Relaxed),
            Tier::Disk => self.stats.disk_hits.fetch_add(1, Ordering::Relaxed),
        };
        Some((payload, tier))
    }

    /// Look up `key`; on a miss, either become the single in-flight
    /// computer (receiving a [`Lease`]) or wait for the current one and
    /// re-probe. Each call resolves exactly one hit or one miss in
    /// [`CacheStats`].
    pub fn lookup_or_lead(&self, key: Key) -> Lookup<'_> {
        loop {
            if let Some((payload, tier)) = self.peek(key) {
                return Lookup::Hit(payload, tier);
            }
            let waiting = {
                let mut inflight = lock_recover(&self.inflight);
                match inflight.entry(key.0) {
                    Entry::Vacant(v) => {
                        v.insert(Arc::new(FlightSlot {
                            done: Mutex::new(false),
                            cv: Condvar::new(),
                        }));
                        None
                    }
                    Entry::Occupied(o) => Some(o.get().clone()),
                }
            };
            match waiting {
                None => {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    return Lookup::Lead(Lease { store: self, key });
                }
                Some(slot) => {
                    let mut done = lock_recover(&slot.done);
                    while !*done {
                        done = slot.cv.wait(done).unwrap_or_else(|e| e.into_inner());
                    }
                    // Leader finished (or failed): re-probe. If it failed,
                    // the next iteration takes the lease.
                }
            }
        }
    }

    /// Insert a payload under `key`: memory tier always, persistent tier
    /// when configured (atomic temp-file + rename). Callers holding a
    /// [`Lease`] must put *before* dropping it so waiters find the entry.
    pub fn put(&self, key: Key, payload: Vec<u8>) {
        let arc = Arc::new(payload);
        lock_recover(&self.mem).insert(key.0, arc.clone());
        self.stats.stores.fetch_add(1, Ordering::Relaxed);
        if let Some(path) = self.entry_path(key) {
            let entry = encode_entry(&arc);
            match relsim_obs::write_atomic(&path, &entry) {
                Ok(()) => {
                    self.stats
                        .bytes_written
                        .fetch_add(arc.len() as u64, Ordering::Relaxed);
                }
                Err(e) => {
                    // Warn once; a read-only or full disk degrades the
                    // store to memory-only rather than spamming stderr.
                    if !self.disk_write_failed.swap(true, Ordering::Relaxed) {
                        warn!("cache: cannot persist entries under {:?} ({e}); continuing memory-only", self.dir);
                    }
                }
            }
        }
    }

    /// Drop `key` from both tiers (e.g. after its payload failed to
    /// decode at a higher layer).
    pub fn invalidate(&self, key: Key) {
        lock_recover(&self.mem).remove(&key.0);
        if let Some(path) = self.entry_path(key) {
            let _ = std::fs::remove_file(&path);
        }
        self.stats.invalidations.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot the traffic counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.stats.hits.load(Ordering::Relaxed),
            memory_hits: self.stats.memory_hits.load(Ordering::Relaxed),
            disk_hits: self.stats.disk_hits.load(Ordering::Relaxed),
            misses: self.stats.misses.load(Ordering::Relaxed),
            stores: self.stats.stores.load(Ordering::Relaxed),
            invalidations: self.stats.invalidations.load(Ordering::Relaxed),
            bytes_read: self.stats.bytes_read.load(Ordering::Relaxed),
            bytes_written: self.stats.bytes_written.load(Ordering::Relaxed),
        }
    }
}

/// Frame a payload for disk: magic, format version, length, checksum,
/// bytes. Every field is validated on the way back in.
fn encode_entry(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&Key::of_bytes(payload).0.to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Parse and validate a framed entry; any inconsistency is an `Err`
/// naming the first check that failed.
fn decode_entry(bytes: &[u8]) -> Result<Vec<u8>, String> {
    if bytes.len() < HEADER_LEN {
        return Err(format!("truncated header: {} bytes", bytes.len()));
    }
    if bytes[..8] != MAGIC {
        return Err("bad magic".to_string());
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != FORMAT_VERSION {
        return Err(format!(
            "format version {version}, expected {FORMAT_VERSION}"
        ));
    }
    let len = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")) as usize;
    let body = &bytes[HEADER_LEN..];
    if body.len() != len {
        return Err(format!(
            "payload is {} bytes, header says {len}",
            body.len()
        ));
    }
    let checksum = u128::from_le_bytes(bytes[20..36].try_into().expect("16 bytes"));
    if Key::of_bytes(body).0 != checksum {
        return Err("payload checksum mismatch".to_string());
    }
    Ok(body.to_vec())
}

/// The process-wide store. `None` (the default) disables caching
/// everywhere; binaries install a store via [`configure`] from their CLI
/// flags, while library users and tests run uncached unless they opt in.
static GLOBAL: Mutex<Option<Arc<Store>>> = Mutex::new(None);

/// Install (or, with `None`, remove) the process-wide store.
pub fn configure(config: Option<CacheConfig>) {
    *lock_recover(&GLOBAL) = config.map(|c| Arc::new(Store::new(c)));
}

/// The process-wide store, if one is configured.
pub fn global() -> Option<Arc<Store>> {
    lock_recover(&GLOBAL).clone()
}

/// Whether a process-wide store is configured. Callers use this to skip
/// key derivation entirely when caching is off.
pub fn enabled() -> bool {
    lock_recover(&GLOBAL).is_some()
}

/// Traffic counters of the process-wide store, if one is configured.
pub fn global_stats() -> Option<CacheStats> {
    global().map(|s| s.stats())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("relsim-cache-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn lead<'a>(store: &'a Store, key: Key) -> Lease<'a> {
        match store.lookup_or_lead(key) {
            Lookup::Lead(lease) => lease,
            Lookup::Hit(..) => panic!("expected a miss"),
        }
    }

    #[test]
    fn memory_round_trip_and_stats() {
        let store = Store::new(CacheConfig::default());
        let key = Key::of(&"memory-round-trip");
        let lease = lead(&store, key);
        store.put(key, b"payload".to_vec());
        drop(lease);
        match store.lookup_or_lead(key) {
            Lookup::Hit(p, Tier::Memory) => assert_eq!(p.as_slice(), b"payload"),
            _ => panic!("expected a memory hit"),
        }
        let s = store.stats();
        assert_eq!((s.misses, s.hits, s.memory_hits, s.stores), (1, 1, 1, 1));
        assert_eq!(s.bytes_written, 0, "no disk tier configured");
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disk_round_trip_across_store_instances() {
        let dir = temp_dir("disk");
        let key = Key::of(&("disk", 1u64));
        {
            let store = Store::new(CacheConfig {
                dir: Some(dir.clone()),
            });
            let lease = lead(&store, key);
            store.put(key, vec![42u8; 1000]);
            drop(lease);
            assert_eq!(store.stats().bytes_written, 1000);
        }
        // A fresh store (fresh process, conceptually) reads it back.
        let store = Store::new(CacheConfig {
            dir: Some(dir.clone()),
        });
        match store.lookup_or_lead(key) {
            Lookup::Hit(p, Tier::Disk) => assert_eq!(p.as_slice(), &[42u8; 1000][..]),
            _ => panic!("expected a disk hit"),
        }
        // The disk hit promoted the entry to memory.
        match store.lookup_or_lead(key) {
            Lookup::Hit(_, Tier::Memory) => {}
            _ => panic!("expected a memory hit after promotion"),
        }
        let s = store.stats();
        assert_eq!((s.disk_hits, s.memory_hits, s.bytes_read), (1, 1, 1000));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entries_are_a_logged_miss_not_an_error() {
        let dir = temp_dir("poison");
        let key = Key::of(&"poisoned");
        let store = Store::new(CacheConfig {
            dir: Some(dir.clone()),
        });
        let lease = lead(&store, key);
        store.put(key, b"good payload".to_vec());
        drop(lease);

        let path = store.entry_path(key).unwrap();
        let poison = |bytes: Vec<u8>| {
            std::fs::write(&path, bytes).unwrap();
        };
        let full = std::fs::read(&path).unwrap();

        // Each corruption mode must surface as a miss (lease) in a fresh
        // store, and must delete the bad file.
        let cases: Vec<(&str, Vec<u8>)> = vec![
            ("truncated header", full[..10].to_vec()),
            ("truncated payload", full[..full.len() - 3].to_vec()),
            ("bad magic", {
                let mut b = full.clone();
                b[0] ^= 0xff;
                b
            }),
            ("bad version", {
                let mut b = full.clone();
                b[8] = 0xee;
                b
            }),
            ("flipped payload byte", {
                let mut b = full.clone();
                let last = b.len() - 1;
                b[last] ^= 0x01;
                b
            }),
        ];
        for (what, bytes) in cases {
            poison(bytes);
            let fresh = Store::new(CacheConfig {
                dir: Some(dir.clone()),
            });
            match fresh.lookup_or_lead(key) {
                Lookup::Lead(lease) => {
                    // Recompute + overwrite heals the entry.
                    fresh.put(key, b"good payload".to_vec());
                    drop(lease);
                }
                Lookup::Hit(..) => panic!("{what}: corrupt entry served as a hit"),
            }
            assert_eq!(fresh.stats().invalidations, 1, "{what}");
            let healed = Store::new(CacheConfig {
                dir: Some(dir.clone()),
            });
            match healed.lookup_or_lead(key) {
                Lookup::Hit(p, _) => assert_eq!(p.as_slice(), b"good payload", "{what}"),
                Lookup::Lead(_) => panic!("{what}: healed entry missing"),
            };
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn single_flight_runs_one_computation() {
        let store = Arc::new(Store::new(CacheConfig::default()));
        let key = Key::of(&"single-flight");
        let computed = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = store.clone();
                let computed = computed.clone();
                s.spawn(move || match store.lookup_or_lead(key) {
                    Lookup::Lead(lease) => {
                        // Simulate work so the other threads queue up.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        computed.fetch_add(1, Ordering::SeqCst);
                        store.put(key, b"flight".to_vec());
                        drop(lease);
                    }
                    Lookup::Hit(p, _) => assert_eq!(p.as_slice(), b"flight"),
                });
            }
        });
        assert_eq!(computed.load(Ordering::SeqCst), 1, "exactly one leader");
        let s = store.stats();
        assert_eq!(s.misses, 1);
        assert_eq!(s.hits, 7);
    }

    #[test]
    fn panicking_leader_wakes_waiters_and_poisons_nothing() {
        // Regression test for the daemon-killing failure mode: a leader
        // that panics mid-computation used to poison the flight-slot and
        // registry mutexes, turning every concurrent waiter's
        // `.expect("… poisoned")` into a cascade of panics. With the
        // drop-guard lease and poison recovery, waiters must make
        // progress and the store must stay fully usable.
        let store = Arc::new(Store::new(CacheConfig::default()));
        let key = Key::of(&"panicking-leader");
        let rescued = Arc::new(AtomicU64::new(0));
        std::thread::scope(|s| {
            // Leader: takes the lease, then unwinds without putting.
            let leader_store = store.clone();
            s.spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _lease = lead(&leader_store, key);
                    std::thread::sleep(std::time::Duration::from_millis(40));
                    panic!("leader exploded mid-compute");
                }));
                assert!(result.is_err(), "leader must have panicked");
            });
            // Waiters: queue up behind the doomed leader.
            for _ in 0..4 {
                let store = store.clone();
                let rescued = rescued.clone();
                s.spawn(move || {
                    // Give the leader time to take the lease first.
                    std::thread::sleep(std::time::Duration::from_millis(10));
                    match store.lookup_or_lead(key) {
                        Lookup::Lead(lease) => {
                            rescued.fetch_add(1, Ordering::SeqCst);
                            store.put(key, b"recovered".to_vec());
                            drop(lease);
                        }
                        Lookup::Hit(p, _) => assert_eq!(p.as_slice(), b"recovered"),
                    }
                });
            }
        });
        assert_eq!(
            rescued.load(Ordering::SeqCst),
            1,
            "exactly one waiter inherits the lease after the panic"
        );
        // The store is still healthy for unrelated users.
        match store.lookup_or_lead(key) {
            Lookup::Hit(p, _) => assert_eq!(p.as_slice(), b"recovered"),
            Lookup::Lead(_) => panic!("entry missing after recovery"),
        };
    }

    #[test]
    fn poisoned_mutexes_are_recovered_not_propagated() {
        // Inject real poison: panic a thread while it holds each lock,
        // then assert every public operation still works. This simulates
        // a panic at the worst possible instant rather than relying on
        // the drop-guard ordering above.
        let store = Arc::new(Store::new(CacheConfig::default()));
        let key = Key::of(&"poison-injection");
        let lease = lead(&store, key);
        store.put(key, b"before-poison".to_vec());
        drop(lease);

        let poison_mem = store.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poison_mem.mem.lock().unwrap();
            panic!("poison the memory tier");
        })
        .join();
        let poison_inflight = store.clone();
        let _ = std::thread::spawn(move || {
            let _guard = poison_inflight.inflight.lock().unwrap();
            panic!("poison the inflight registry");
        })
        .join();

        // Reads, writes, invalidation, and fresh leases all survive.
        match store.lookup_or_lead(key) {
            Lookup::Hit(p, Tier::Memory) => assert_eq!(p.as_slice(), b"before-poison"),
            _ => panic!("expected a memory hit through the poisoned lock"),
        }
        store.put(key, b"after-poison".to_vec());
        assert_eq!(store.peek(key).unwrap().0.as_slice(), b"after-poison");
        store.invalidate(key);
        let lease = lead(&store, key);
        store.put(key, b"healed".to_vec());
        drop(lease);
        assert_eq!(store.peek(key).unwrap().0.as_slice(), b"healed");
    }

    #[test]
    fn peek_hits_count_and_misses_take_no_lease() {
        let store = Store::new(CacheConfig::default());
        let key = Key::of(&"peek");
        assert!(store.peek(key).is_none());
        // A peek miss records nothing and leaves the key leasable.
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (0, 0));
        let lease = lead(&store, key);
        store.put(key, b"peeked".to_vec());
        drop(lease);
        match store.peek(key) {
            Some((p, Tier::Memory)) => assert_eq!(p.as_slice(), b"peeked"),
            other => panic!(
                "expected a memory peek hit, got {:?}",
                other.map(|(_, t)| t)
            ),
        }
        let s = store.stats();
        assert_eq!((s.hits, s.memory_hits, s.misses), (1, 1, 1));
    }

    #[test]
    fn failed_leader_hands_the_lease_to_a_waiter() {
        let store = Arc::new(Store::new(CacheConfig::default()));
        let key = Key::of(&"failed-leader");
        let lease = lead(&store, key);
        let follower = {
            let store = store.clone();
            std::thread::spawn(move || match store.lookup_or_lead(key) {
                Lookup::Lead(lease) => {
                    store.put(key, b"rescued".to_vec());
                    drop(lease);
                    true
                }
                Lookup::Hit(..) => false,
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(lease); // leader "fails": no put
        assert!(follower.join().unwrap(), "waiter inherits the lease");
        match store.lookup_or_lead(key) {
            Lookup::Hit(p, _) => assert_eq!(p.as_slice(), b"rescued"),
            Lookup::Lead(_) => panic!("entry missing after rescue"),
        };
    }

    #[test]
    fn global_store_defaults_to_disabled() {
        // Serialize against other tests that might configure the global.
        assert!(global().is_none() || global().is_some());
        configure(None);
        assert!(!enabled());
        assert!(global_stats().is_none());
        configure(Some(CacheConfig::default()));
        assert!(enabled());
        assert_eq!(global_stats().unwrap().lookups(), 0);
        configure(None);
    }

    #[test]
    fn entry_framing_rejects_length_lies() {
        let mut e = encode_entry(b"abc");
        // Claim one byte more than is present.
        e[12] = 4;
        assert!(decode_entry(&e).is_err());
        let good = encode_entry(b"abc");
        assert_eq!(decode_entry(&good).unwrap(), b"abc");
    }
}
