//! The 128-bit content key and the hash behind it.
//!
//! Keys must be stable across processes and platforms (they name files
//! in the persistent tier), so the hash is a fixed function of the input
//! bytes: MurmurHash3 x64/128, implemented here byte-for-byte against
//! the reference algorithm in safe Rust. Cryptographic strength is not a
//! goal — the cache is a same-trust-domain performance tier, and a
//! 128-bit universe makes accidental collisions across a few million
//! grid points vanishingly unlikely.

use serde::Serialize;

/// A 128-bit content address: the hash of the canonical serialization of
/// everything that determines a cached result.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Key(pub u128);

impl Key {
    /// Hash raw bytes into a key (seed 0).
    pub fn of_bytes(bytes: &[u8]) -> Key {
        Key(murmur3_x64_128(bytes, 0))
    }

    /// Hash the canonical (compact, field-order-deterministic) JSON
    /// serialization of `input`. The vendored serializer writes
    /// `Value::Object` entries in declaration order and floats in
    /// shortest round-trip form, so equal inputs always produce equal
    /// bytes and therefore equal keys.
    pub fn of<T: Serialize + ?Sized>(input: &T) -> Key {
        let bytes = serde_json::to_vec(input).expect("canonical serialization cannot fail");
        Key::of_bytes(&bytes)
    }

    /// The key as 32 lowercase hex digits (file names, events, logs).
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl std::fmt::Display for Key {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const C1: u64 = 0x87c3_7b91_1142_53d5;
const C2: u64 = 0x4cf5_ad43_2745_937f;

#[inline]
fn fmix64(mut k: u64) -> u64 {
    k ^= k >> 33;
    k = k.wrapping_mul(0xff51_afd7_ed55_8ccd);
    k ^= k >> 33;
    k = k.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    k ^= k >> 33;
    k
}

#[inline]
fn mix_k1(mut k1: u64) -> u64 {
    k1 = k1.wrapping_mul(C1);
    k1 = k1.rotate_left(31);
    k1.wrapping_mul(C2)
}

#[inline]
fn mix_k2(mut k2: u64) -> u64 {
    k2 = k2.wrapping_mul(C2);
    k2 = k2.rotate_left(33);
    k2.wrapping_mul(C1)
}

/// MurmurHash3 x64/128 of `data`, as `(h2 << 64) | h1`.
pub fn murmur3_x64_128(data: &[u8], seed: u64) -> u128 {
    let mut h1 = seed;
    let mut h2 = seed;
    let nblocks = data.len() / 16;

    for block in data.chunks_exact(16).take(nblocks) {
        let k1 = u64::from_le_bytes(block[..8].try_into().expect("8-byte half"));
        let k2 = u64::from_le_bytes(block[8..].try_into().expect("8-byte half"));
        h1 ^= mix_k1(k1);
        h1 = h1.rotate_left(27);
        h1 = h1.wrapping_add(h2);
        h1 = h1.wrapping_mul(5).wrapping_add(0x52dc_e729);
        h2 ^= mix_k2(k2);
        h2 = h2.rotate_left(31);
        h2 = h2.wrapping_add(h1);
        h2 = h2.wrapping_mul(5).wrapping_add(0x3849_5ab5);
    }

    let tail = &data[nblocks * 16..];
    let mut k1 = 0u64;
    let mut k2 = 0u64;
    for (i, &b) in tail.iter().enumerate() {
        if i < 8 {
            k1 |= (b as u64) << (8 * i);
        } else {
            k2 |= (b as u64) << (8 * (i - 8));
        }
    }
    if tail.len() > 8 {
        h2 ^= mix_k2(k2);
    }
    if !tail.is_empty() {
        h1 ^= mix_k1(k1);
    }

    h1 ^= data.len() as u64;
    h2 ^= data.len() as u64;
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    h1 = fmix64(h1);
    h2 = fmix64(h2);
    h1 = h1.wrapping_add(h2);
    h2 = h2.wrapping_add(h1);
    ((h2 as u128) << 64) | h1 as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vectors computed with the canonical MurmurHash3 x64/128
    /// implementation (seed 0), pinning this port byte-for-byte: a
    /// drifting hash would silently orphan every persisted entry.
    #[test]
    fn matches_reference_vectors() {
        assert_eq!(murmur3_x64_128(b"", 0), 0);
        assert_eq!(
            murmur3_x64_128(b"hello", 0),
            0x5b1e_906a_48ae_1d19_cbd8_a7b3_41bd_9b02
        );
        assert_eq!(
            murmur3_x64_128(b"hello, world", 0),
            0x4cdc_bc07_9642_414d_342f_ac62_3a5e_bc8e
        );
        assert_eq!(
            murmur3_x64_128(b"The quick brown fox jumps over the lazy dog", 0),
            0x7a43_3ca9_c49a_9347_e34b_bc7b_bc07_1b6c
        );
    }

    #[test]
    fn all_tail_lengths_hash_distinctly() {
        // Exercise every tail length 0..=16 plus a multi-block input; all
        // 34 digests must be distinct and stable across calls.
        let data: Vec<u8> = (0u8..34).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..data.len() {
            let h = murmur3_x64_128(&data[..len], 0);
            assert_eq!(h, murmur3_x64_128(&data[..len], 0));
            assert!(seen.insert(h), "collision at prefix length {len}");
        }
    }

    #[test]
    fn single_byte_flips_change_the_key() {
        let base: Vec<u8> = (0u8..64).collect();
        let k0 = Key::of_bytes(&base);
        for i in 0..base.len() {
            let mut flipped = base.clone();
            flipped[i] ^= 1;
            assert_ne!(Key::of_bytes(&flipped), k0, "flip at byte {i}");
        }
    }

    #[test]
    fn key_of_serializable_inputs_is_field_sensitive() {
        let k = |v: &(u64, &str, f64)| Key::of(v);
        let base = (7u64, "milc", 0.5f64);
        assert_eq!(k(&base), k(&(7, "milc", 0.5)));
        assert_ne!(k(&base), k(&(8, "milc", 0.5)));
        assert_ne!(k(&base), k(&(7, "mcf", 0.5)));
        assert_ne!(k(&base), k(&(7, "milc", 0.25)));
    }

    #[test]
    fn hex_is_32_lowercase_digits() {
        let h = Key(0xdead_beef).hex();
        assert_eq!(h.len(), 32);
        assert_eq!(h, "000000000000000000000000deadbeef");
        assert_eq!(Key(0xdead_beef).to_string(), h);
    }
}
