//! relsim-cache: a content-addressed store for whole simulation-run
//! results.
//!
//! Every figure in the evaluation re-runs overlapping `mix × scheduler ×
//! config` grid points, and every re-invocation of the harness starts
//! cold. This crate removes that redundancy without touching fidelity:
//!
//! * results are addressed by a stable 128-bit [`Key`] — the hash of a
//!   canonical JSON serialization of *every input that determines the
//!   output* (system config, workload profiles and seeds, scheduler,
//!   sampling parameters, engine flags, and a model-version guard).
//!   Perturbing any single input field changes the key; two runs with the
//!   same key are the same deterministic computation;
//! * a [`Store`] holds entries in two tiers: an in-memory map for repeats
//!   within one process, and a persistent directory (`.relsim-cache/`)
//!   written atomically (temp file + rename) for repeats across
//!   invocations. Disk entries carry a checksummed header, so a
//!   truncated or corrupted file is a logged miss that recomputes and
//!   overwrites — never an error;
//! * concurrent lookups of the same key are collapsed by a single-flight
//!   registry ([`Store::lookup_or_lead`]): one caller computes, the
//!   waiters block on a condvar and re-probe when the leader finishes
//!   (or fails, in which case a waiter inherits the lease).
//!
//! The crate is deliberately value-agnostic: entries are opaque byte
//! payloads. The simulation layer (`relsim::cache`) defines what goes in
//! a payload and derives the keys; binaries opt in through
//! `relsim_bench::obs_init` (`--cache` / `--no-cache` / `--cache-dir`).
//! The process-wide store defaults to disabled, so library users and
//! tests see no caching unless they ask for it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hash;
mod store;

pub use hash::{murmur3_x64_128, Key};
pub use store::{
    configure, enabled, global, global_stats, CacheConfig, CacheStats, Lease, Lookup, Store, Tier,
};
