//! Flat-arena building blocks for the data-oriented core engines.
//!
//! Two pieces live here:
//!
//! * [`ReadyMask`] — a 256-bit bitmask of issue-ready ROB slots, scanned
//!   oldest-first with `trailing_zeros` instead of a sorted `Vec<u64>`
//!   maintained by binary-search insert/remove.
//! * [`Ring`] — a fixed-capacity ring buffer for `Copy` payloads,
//!   replacing the `VecDeque` fetch queues (whose logical capacity is
//!   known at construction) with an allocation-free structure.
//!
//! Both are `Clone`, so checkpoint capture stays a plain clone.

/// Bits in the ready mask; bounds the ROB capacity the mask can address.
pub const MASK_BITS: usize = 256;
const WORDS: usize = MASK_BITS / 64;

/// A 256-bit mask of ready ROB slots, indexed by `seq & (cap - 1)`.
///
/// Because live ROB sequence numbers are contiguous (`[head_seq,
/// head_seq + len)` with `len <= cap <= 256`), each live entry maps to a
/// distinct bit. Age order is recovered by rotating the mask right by the
/// head slot: after rotation, bit position `p` corresponds to sequence
/// `head_seq + p`, so an ascending bit scan enumerates entries
/// oldest-first — exactly the order the old sorted `ready` vector had.
#[derive(Debug, Clone, Default)]
pub struct ReadyMask {
    words: [u64; WORDS],
}

impl ReadyMask {
    /// Empty mask.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the bit for `slot`.
    #[inline]
    pub fn set(&mut self, slot: usize) {
        debug_assert!(slot < MASK_BITS);
        self.words[slot / 64] |= 1u64 << (slot % 64);
    }

    /// Clear the bit for `slot`.
    #[inline]
    pub fn clear(&mut self, slot: usize) {
        debug_assert!(slot < MASK_BITS);
        self.words[slot / 64] &= !(1u64 << (slot % 64));
    }

    /// (Exercised by unit tests; not every core uses it.)
    #[allow(dead_code)]
    /// Whether the bit for `slot` is set.
    #[inline]
    pub fn get(&self, slot: usize) -> bool {
        self.words[slot / 64] & (1u64 << (slot % 64)) != 0
    }

    /// Whether any bit is set.
    #[inline]
    pub fn any(&self) -> bool {
        self.words.iter().any(|&w| w != 0)
    }

    /// Clear every bit.
    #[inline]
    pub fn reset(&mut self) {
        self.words = [0; WORDS];
    }

    /// (Exercised by unit tests; not every core uses it.)
    #[allow(dead_code)]
    /// Number of set bits.
    #[inline]
    pub fn count(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Collect up to `max` ready sequences in age order (oldest first)
    /// into `out`. `head_seq` is the oldest live sequence; `cap_mask` is
    /// `cap - 1` for the power-of-two slot count in use.
    ///
    /// Rotation: a bit at absolute slot `s` represents sequence
    /// `head_seq + ((s - head_slot) mod cap)`. Rotating the in-use `cap`
    /// bits right by `head_slot` places that sequence's bit at position
    /// `(s - head_slot) mod cap`, making ascending bit order equal age
    /// order.
    #[inline]
    pub fn collect_oldest(
        &self,
        head_seq: u64,
        cap_mask: u64,
        max: usize,
        out: &mut [u64],
    ) -> usize {
        let head_slot = (head_seq & cap_mask) as u32;
        let cap = cap_mask as usize + 1;
        let mut n = 0;
        if cap <= 64 {
            // Single-word wheel: rotate within the low `cap` bits.
            let w = self.words[0];
            debug_assert!(cap == 64 || w >> cap == 0);
            let mut rot = if cap == 64 {
                w.rotate_right(head_slot)
            } else if head_slot == 0 {
                w
            } else {
                let bits = (1u64 << cap) - 1;
                ((w >> head_slot) | (w << (cap as u32 - head_slot))) & bits
            };
            while rot != 0 && n < max {
                let p = rot.trailing_zeros() as u64;
                rot &= rot - 1;
                out[n] = head_seq + p;
                n += 1;
            }
        } else {
            // Multi-word (cap is a multiple of 64): walk rotated positions
            // p = 0..cap word by word, reading the word holding absolute
            // slot (head_slot + p) mod cap. Bits at offset tz within the
            // shifted word are positions p + tz; the final (wrap-around)
            // word may expose bits for positions >= cap, which were
            // already enumerated in the first partial word and must stop
            // the scan.
            let mut p = 0u64;
            'outer: while (p as usize) < cap && n < max {
                let s = (head_slot as u64 + p) & cap_mask;
                let word_idx = (s / 64) as usize;
                let bit = (s % 64) as u32;
                let mut w = self.words[word_idx] >> bit;
                while w != 0 {
                    let tz = w.trailing_zeros() as u64;
                    if (p + tz) as usize >= cap {
                        break 'outer;
                    }
                    out[n] = head_seq + p + tz;
                    n += 1;
                    if n == max {
                        break 'outer;
                    }
                    w &= w - 1;
                }
                p += 64 - bit as u64;
            }
        }
        n
    }
}

/// Fixed-capacity ring buffer of `Copy` items (fetch queues).
#[derive(Debug, Clone)]
pub struct Ring<T: Copy> {
    buf: Box<[Option<T>]>,
    head: usize,
    len: usize,
    cap: usize,
}

impl<T: Copy> Ring<T> {
    /// A ring holding at most `cap` items. Backing storage rounds up to a
    /// power of two for mask addressing.
    pub fn with_capacity(cap: usize) -> Self {
        let store = cap.next_power_of_two().max(1);
        Ring {
            buf: vec![None; store].into_boxed_slice(),
            head: 0,
            len: 0,
            cap,
        }
    }

    /// (Exercised by unit tests; not every core uses it.)
    #[allow(dead_code)]
    /// Number of items queued.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// (Exercised by unit tests; not every core uses it.)
    #[allow(dead_code)]
    /// Whether the ring is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the ring is at its logical capacity.
    #[inline]
    pub fn is_full(&self) -> bool {
        self.len >= self.cap
    }

    /// Oldest item, if any.
    #[inline]
    pub fn front(&self) -> Option<&T> {
        if self.len == 0 {
            None
        } else {
            self.buf[self.head].as_ref()
        }
    }

    /// Append an item; panics if full (callers gate on `is_full`).
    #[inline]
    pub fn push_back(&mut self, item: T) {
        assert!(self.len < self.cap, "ring overflow");
        let mask = self.buf.len() - 1;
        self.buf[(self.head + self.len) & mask] = Some(item);
        self.len += 1;
    }

    /// Remove and return the oldest item.
    #[inline]
    pub fn pop_front(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let mask = self.buf.len() - 1;
        let item = self.buf[self.head].take();
        self.head = (self.head + 1) & mask;
        self.len -= 1;
        item
    }

    /// Drop every item.
    #[inline]
    pub fn clear(&mut self) {
        while self.pop_front().is_some() {}
    }

    /// (Exercised by unit tests; not every core uses it.)
    #[allow(dead_code)]
    /// Iterate items oldest-first.
    pub fn iter(&self) -> impl Iterator<Item = &T> + '_ {
        let mask = self.buf.len() - 1;
        (0..self.len).filter_map(move |i| self.buf[(self.head + i) & mask].as_ref())
    }

    /// Iterate items oldest-first, mutably (order is storage order, which
    /// callers only use for order-independent updates like time shifts).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> + '_ {
        let store = self.buf.len();
        let mask = store - 1;
        let head = self.head;
        let len = self.len;
        self.buf
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, slot)| {
                let logical = (i + store - head) & mask;
                if logical < len {
                    slot.as_mut()
                } else {
                    None
                }
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference model: keep a sorted Vec of seqs alongside the mask and
    /// compare `collect_oldest` against its prefix at every step.
    #[test]
    fn mask_matches_sorted_vec_model() {
        for cap in [16usize, 64, 128, 256] {
            let cap_mask = cap as u64 - 1;
            let mut mask = ReadyMask::new();
            let mut model: Vec<u64> = Vec::new();
            let mut head_seq = 0u64;
            let mut next_seq = 0u64;
            let mut state = 0x2545f4914f6cdd1du64;
            let mut rng = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            let mut out = [0u64; 8];
            for _ in 0..4000 {
                match rng() % 4 {
                    // Dispatch: extend the live window, maybe ready.
                    0 | 1 => {
                        if next_seq - head_seq < cap as u64 {
                            let seq = next_seq;
                            next_seq += 1;
                            if rng() % 2 == 0 {
                                mask.set((seq & cap_mask) as usize);
                                let pos = model.binary_search(&seq).unwrap_err();
                                model.insert(pos, seq);
                            }
                        }
                    }
                    // Commit the head (only when it is not ready —
                    // matching the real core where committed entries are
                    // done, hence not in the ready set).
                    2 => {
                        if head_seq < next_seq && !mask.get((head_seq & cap_mask) as usize) {
                            head_seq += 1;
                        }
                    }
                    // Toggle readiness of a random live entry.
                    _ => {
                        if head_seq < next_seq {
                            let seq = head_seq + rng() % (next_seq - head_seq);
                            let slot = (seq & cap_mask) as usize;
                            if mask.get(slot) {
                                mask.clear(slot);
                                let pos = model.binary_search(&seq).unwrap();
                                model.remove(pos);
                            } else {
                                mask.set(slot);
                                let pos = model.binary_search(&seq).unwrap_err();
                                model.insert(pos, seq);
                            }
                        }
                    }
                }
                let want: Vec<u64> = model.iter().take(8).copied().collect();
                let n = mask.collect_oldest(head_seq, cap_mask, 8, &mut out);
                assert_eq!(
                    &out[..n],
                    &want[..],
                    "cap={cap} head={head_seq} next={next_seq}"
                );
                assert_eq!(mask.count() as usize, model.len());
                assert_eq!(mask.any(), !model.is_empty());
            }
        }
    }

    #[test]
    fn mask_wraps_across_slot_boundary() {
        let cap_mask = 127u64;
        let mut mask = ReadyMask::new();
        // head_seq near a wrap point: live window [250, 300).
        let head_seq = 250u64;
        for seq in [250u64, 255, 256, 257, 299] {
            mask.set((seq & cap_mask) as usize);
        }
        let mut out = [0u64; 8];
        let n = mask.collect_oldest(head_seq, cap_mask, 8, &mut out);
        assert_eq!(&out[..n], &[250, 255, 256, 257, 299]);
    }

    #[test]
    fn ring_fifo_and_wrap() {
        let mut r: Ring<u32> = Ring::with_capacity(3);
        assert!(r.is_empty());
        r.push_back(1);
        r.push_back(2);
        r.push_back(3);
        assert!(r.is_full());
        assert_eq!(r.front(), Some(&1));
        assert_eq!(r.pop_front(), Some(1));
        r.push_back(4);
        assert_eq!(r.iter().copied().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(r.pop_front(), Some(2));
        assert_eq!(r.pop_front(), Some(3));
        assert_eq!(r.pop_front(), Some(4));
        assert_eq!(r.pop_front(), None);
        r.push_back(9);
        r.clear();
        assert!(r.is_empty());
    }
}
