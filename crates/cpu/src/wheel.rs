//! Calendar wheel of completion events for the out-of-order core.
//!
//! Replaces the `BinaryHeap<Reverse<(tick, seq, epoch)>>` the core used to
//! poll every cycle. Near events (due within [`WHEEL`] ticks) are bucketed
//! by `tick & (WHEEL - 1)`; far events (deep DRAM queueing delays) go to a
//! small binary-heap sidecar. Because the wheel only ever holds ticks in
//! the half-open window `(cursor, cursor + WHEEL]` — which contains
//! exactly one representative of each residue class — a slot never mixes
//! ticks. That invariant is what makes the hot path cheap:
//!
//! * draining a due slot is a whole-`Vec` move, no per-entry tick
//!   comparisons (every resident of an occupied slot in the due residue
//!   range is due by construction);
//! * the exact minimum resident tick is the first occupied slot in
//!   circular order after the cursor (tick order equals circular-distance
//!   order when slots are tick-pure), a one-or-two-word bitmap scan,
//!   `min`-ed with the sidecar's `peek`.
//!
//! # Equivalence contract
//!
//! The wheel must be observationally identical to the heap it replaces,
//! because skipped-tick counts and CPI stacks feed byte-compared
//! artifacts:
//!
//! * [`EventWheel::earliest`] is the **exact** minimum tick over every
//!   resident event — including events whose ROB entry was since flushed
//!   (the consumer filters those by epoch, exactly as it filtered stale
//!   heap entries). `next_event` horizons therefore match the old
//!   `heap.peek()` to the tick.
//! * [`EventWheel::drain_due`] yields due events sorted by
//!   `(tick, seq, epoch)` ascending — the heap's pop order. Order matters:
//!   two same-tick completions can both be mispredicted branches, and the
//!   older one must flush before the younger is (epoch-)filtered.
//! * Far events (more than [`WHEEL`] ticks out) never enter the wheel;
//!   they wait in the sidecar heap and are popped when due. DRAM queueing
//!   delay is unbounded, so this path is routine, not a corner case — and
//!   keeping it heap-shaped means its cost matches the old design instead
//!   of re-scanning aliased slots on every drain.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Number of tick buckets; power of two. Covers every L1/L2/L3 latency and
/// the common DRAM round trip in one rotation; deeper queueing delays go
/// to the far-event sidecar (see module docs).
const WHEEL: usize = 512;
const SLOT_MASK: u64 = WHEEL as u64 - 1;
const OCC_WORDS: usize = WHEEL / 64;

/// One pending completion: `(tick, seq, epoch)`, same triple the heap
/// carried.
pub type WheelEvent = (u64, u64, u32);

/// Calendar wheel of `(tick, seq, epoch)` completion events with a
/// binary-heap sidecar for far-future events.
#[derive(Debug, Clone)]
pub struct EventWheel {
    /// Per-slot event lists. All residents of a slot share one tick (see
    /// module docs). Slots hold few entries and reuse their allocation,
    /// so steady-state pushes never allocate.
    slots: Box<[Vec<WheelEvent>]>,
    /// Occupancy bitmap: bit `s` of word `s / 64` set iff slot `s` is
    /// non-empty.
    occ: [u64; OCC_WORDS],
    /// Events scheduled more than [`WHEEL`] ticks out at push time.
    far: BinaryHeap<Reverse<WheelEvent>>,
    /// Resident event count in the wheel (excludes `far`).
    pending: usize,
    /// Every event with `tick <= cursor` has been drained.
    cursor: u64,
    /// Exact minimum tick over all resident events (wheel and sidecar);
    /// `u64::MAX` when empty.
    earliest: u64,
}

impl Default for EventWheel {
    fn default() -> Self {
        Self::new()
    }
}

impl EventWheel {
    /// An empty wheel at tick 0. Slot lists and the sidecar get their
    /// capacity up front: a slot holds at most an issue-width burst of
    /// completions sharing one tick, so a small fixed capacity removes
    /// the grow branch from steady-state pushes entirely (the
    /// `alloc_steady` gate counts the difference).
    pub fn new() -> Self {
        EventWheel {
            // Not `vec![...; WHEEL]`: cloning an empty Vec sheds its
            // capacity, so build each slot's allocation individually.
            slots: (0..WHEEL).map(|_| Vec::with_capacity(8)).collect(),
            occ: [0; OCC_WORDS],
            far: BinaryHeap::with_capacity(64),
            pending: 0,
            cursor: 0,
            earliest: u64::MAX,
        }
    }

    /// (Exercised by unit tests; not every core uses it.)
    #[allow(dead_code)]
    /// Number of resident events.
    pub fn len(&self) -> usize {
        self.pending + self.far.len()
    }

    /// (Exercised by unit tests; not every core uses it.)
    #[allow(dead_code)]
    /// Whether any event is resident.
    pub fn is_empty(&self) -> bool {
        self.pending == 0 && self.far.is_empty()
    }

    /// Exact minimum tick over resident events (`u64::MAX` when empty) —
    /// the drop-in replacement for `heap.peek()`.
    #[inline]
    pub fn earliest(&self) -> u64 {
        self.earliest
    }

    /// Schedule a completion. `tick` must be beyond the drained horizon
    /// (completions are always scheduled at least one cycle out).
    #[inline]
    pub fn push(&mut self, tick: u64, seq: u64, epoch: u32) {
        debug_assert!(
            tick > self.cursor,
            "event at {tick} behind cursor {}",
            self.cursor
        );
        if tick - self.cursor > WHEEL as u64 {
            self.far.push(Reverse((tick, seq, epoch)));
        } else {
            let s = (tick & SLOT_MASK) as usize;
            let slot = &mut self.slots[s];
            debug_assert!(
                slot.is_empty() || slot[0].0 == tick,
                "slot {s} mixes ticks {} and {tick}",
                slot[0].0
            );
            slot.push((tick, seq, epoch));
            self.occ[s / 64] |= 1u64 << (s % 64);
            self.pending += 1;
        }
        if tick < self.earliest {
            self.earliest = tick;
        }
    }

    /// Exact minimum tick among wheel residents: the tick of the first
    /// occupied slot in circular order after the cursor (`u64::MAX` when
    /// the wheel part is empty).
    fn wheel_min(&self) -> u64 {
        if self.pending == 0 {
            return u64::MAX;
        }
        let start = ((self.cursor + 1) & SLOT_MASK) as usize;
        let (sw, sb) = (start / 64, start % 64);
        let bits = self.occ[sw] & (u64::MAX << sb);
        if bits != 0 {
            let s = sw * 64 + bits.trailing_zeros() as usize;
            return self.slots[s][0].0;
        }
        for i in 1..=OCC_WORDS {
            let w = (sw + i) % OCC_WORDS;
            let mut bits = self.occ[w];
            if w == sw {
                // Wrap-around tail of the starting word: bits below `sb`.
                bits &= (1u64 << sb) - 1;
            }
            if bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                return self.slots[s][0].0;
            }
        }
        unreachable!("pending > 0 but no occupied slot")
    }

    /// Move every event with `tick <= now` into `out`, sorted ascending by
    /// `(tick, seq, epoch)`. `out` is a caller-owned scratch buffer (its
    /// capacity is reused tick over tick); it is cleared first.
    pub fn drain_due(&mut self, now: u64, out: &mut Vec<WheelEvent>) {
        out.clear();
        if self.earliest > now {
            self.cursor = now;
            return;
        }
        let window = now - self.cursor;
        if window >= WHEEL as u64 {
            // The window laps the wheel: every wheel resident is due.
            for w in 0..OCC_WORDS {
                let mut bits = self.occ[w];
                while bits != 0 {
                    let s = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    self.pending -= self.slots[s].len();
                    out.append(&mut self.slots[s]);
                }
                self.occ[w] = 0;
            }
        } else {
            // Residues (cursor, now] visit each slot at most once, and
            // every resident of an occupied slot in this range is due
            // (slots are tick-pure; see module docs).
            let a = ((self.cursor + 1) & SLOT_MASK) as usize;
            let b = (now & SLOT_MASK) as usize;
            if a <= b {
                self.scan_range(a, b, out);
            } else {
                self.scan_range(a, WHEEL - 1, out);
                self.scan_range(0, b, out);
            }
        }
        while let Some(&Reverse(e)) = self.far.peek() {
            if e.0 > now {
                break;
            }
            self.far.pop();
            out.push(e);
        }
        self.cursor = now;
        out.sort_unstable();
        // Re-establish the exact minimum over what is left resident.
        let far_min = self.far.peek().map_or(u64::MAX, |&Reverse((t, _, _))| t);
        self.earliest = self.wheel_min().min(far_min);
    }

    /// Take every occupied slot in `[lo, hi]` (inclusive) wholesale.
    fn scan_range(&mut self, lo: usize, hi: usize, out: &mut Vec<WheelEvent>) {
        let (wl, wh) = (lo / 64, hi / 64);
        for w in wl..=wh {
            let mut bits = self.occ[w];
            if w == wl {
                bits &= u64::MAX << (lo % 64);
            }
            if w == wh {
                let top = hi % 64;
                if top < 63 {
                    bits &= (1u64 << (top + 1)) - 1;
                }
            }
            self.occ[w] &= !bits;
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.pending -= self.slots[s].len();
                out.append(&mut self.slots[s]);
            }
        }
    }

    /// Discard every event (pipeline squash). Slot allocations are kept.
    pub fn clear(&mut self) {
        for w in 0..OCC_WORDS {
            let mut bits = self.occ[w];
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                self.slots[s].clear();
            }
            self.occ[w] = 0;
        }
        self.far.clear();
        self.pending = 0;
        self.earliest = u64::MAX;
        // cursor keeps its value: it is a high-water mark of drained time.
    }

    /// Shift every resident event's tick forward by `delta` (fast-forward
    /// time splice). Re-buckets through `scratch`, whose capacity is
    /// reused across windows.
    pub fn shift(&mut self, delta: u64, scratch: &mut Vec<WheelEvent>) {
        scratch.clear();
        for w in 0..OCC_WORDS {
            let mut bits = self.occ[w];
            while bits != 0 {
                let s = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                scratch.append(&mut self.slots[s]);
            }
            self.occ[w] = 0;
        }
        while let Some(Reverse(e)) = self.far.pop() {
            scratch.push(e);
        }
        self.pending = 0;
        let old_earliest = self.earliest;
        self.earliest = u64::MAX;
        self.cursor += delta;
        for &(t, seq, epoch) in scratch.iter() {
            self.push(t + delta, seq, epoch);
        }
        debug_assert!(old_earliest == u64::MAX || self.earliest == old_earliest + delta);
        scratch.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Differential oracle: the wheel must pop exactly what the old heap
    /// popped, in the same order, under an adversarial schedule that
    /// includes far-horizon events and long jumps.
    #[test]
    fn matches_binary_heap_order_and_contents() {
        let mut wheel = EventWheel::new();
        let mut heap: BinaryHeap<Reverse<WheelEvent>> = BinaryHeap::new();
        let mut out = Vec::new();
        let mut now = 0u64;
        // Deterministic pseudo-random schedule.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for step in 0..2000 {
            // Advance time by a mix of tiny steps and wheel-lapping jumps.
            let jump = match rng() % 10 {
                0 => 1,
                1..=6 => 1 + rng() % 8,
                7 | 8 => rng() % 300,
                _ => WHEEL as u64 + rng() % 2000,
            };
            now += jump;
            // Push a few events at assorted horizons, including far ones
            // (beyond a full wheel rotation).
            for _ in 0..(rng() % 4) {
                let base = now + 1 + rng() % 40;
                let tick = if rng() % 5 == 0 {
                    base + WHEEL as u64 * (1 + rng() % 3)
                } else {
                    base
                };
                let seq = rng() % 64;
                let epoch = (rng() % 3) as u32;
                wheel.push(tick, seq, epoch);
                heap.push(Reverse((tick, seq, epoch)));
            }
            wheel.drain_due(now, &mut out);
            let mut expect = Vec::new();
            while let Some(&Reverse(e)) = heap.peek() {
                if e.0 > now {
                    break;
                }
                heap.pop();
                expect.push(e);
            }
            assert_eq!(out, expect, "step {step} at now={now}");
            assert_eq!(
                wheel.earliest(),
                heap.peek().map(|&Reverse((t, _, _))| t).unwrap_or(u64::MAX),
                "earliest mismatch at step {step}"
            );
            assert_eq!(wheel.len(), heap.len());
        }
    }

    #[test]
    fn earliest_tracks_pushes_and_drains() {
        let mut w = EventWheel::new();
        assert_eq!(w.earliest(), u64::MAX);
        w.push(100, 1, 0);
        w.push(50, 2, 0);
        w.push(50 + WHEEL as u64, 3, 0); // same residue as seq 2 -> sidecar
        assert_eq!(w.earliest(), 50);
        let mut out = Vec::new();
        w.drain_due(50, &mut out);
        assert_eq!(out, vec![(50, 2, 0)]);
        assert_eq!(w.earliest(), 100);
        w.drain_due(100, &mut out);
        assert_eq!(out, vec![(100, 1, 0)]);
        assert_eq!(w.earliest(), 50 + WHEEL as u64);
        w.drain_due(5000, &mut out);
        assert_eq!(out, vec![(50 + WHEEL as u64, 3, 0)]);
        assert!(w.is_empty());
        assert_eq!(w.earliest(), u64::MAX);
    }

    #[test]
    fn same_tick_events_drain_in_seq_order() {
        let mut w = EventWheel::new();
        w.push(10, 7, 1);
        w.push(10, 3, 0);
        w.push(10, 5, 2);
        let mut out = Vec::new();
        w.drain_due(10, &mut out);
        assert_eq!(out, vec![(10, 3, 0), (10, 5, 2), (10, 7, 1)]);
    }

    #[test]
    fn shift_moves_every_event() {
        let mut w = EventWheel::new();
        w.push(10, 1, 0);
        w.push(700, 2, 0);
        let mut scratch = Vec::new();
        w.shift(1000, &mut scratch);
        assert_eq!(w.earliest(), 1010);
        let mut out = Vec::new();
        w.drain_due(2000, &mut out);
        assert_eq!(out, vec![(1010, 1, 0), (1700, 2, 0)]);
    }

    #[test]
    fn clear_empties_but_keeps_cursor_monotone() {
        let mut w = EventWheel::new();
        let mut out = Vec::new();
        w.drain_due(300, &mut out);
        w.push(400, 1, 0);
        w.push(300 + WHEEL as u64 * 2, 2, 0); // sidecar resident
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.earliest(), u64::MAX);
        // Pushes after a clear must still land beyond the cursor.
        w.push(301, 2, 0);
        w.drain_due(301, &mut out);
        assert_eq!(out, vec![(301, 2, 0)]);
    }

    /// The boundary between wheel and sidecar (exactly WHEEL ticks out)
    /// stays in the wheel; one past it goes to the sidecar. Both drain
    /// identically.
    #[test]
    fn wheel_sidecar_boundary() {
        let mut w = EventWheel::new();
        w.push(WHEEL as u64, 1, 0); // distance == WHEEL: wheel
        w.push(WHEEL as u64 + 1, 2, 0); // distance == WHEEL + 1: sidecar
        assert_eq!(w.earliest(), WHEEL as u64);
        let mut out = Vec::new();
        w.drain_due(WHEEL as u64 + 1, &mut out);
        assert_eq!(out, vec![(WHEEL as u64, 1, 0), (WHEEL as u64 + 1, 2, 0)]);
        assert!(w.is_empty());
    }
}
