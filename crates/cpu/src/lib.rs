//! # relsim-cpu
//!
//! Cycle-level core models for the `relsim` heterogeneous multicore
//! simulator: a big 4-wide out-of-order core ([`OooCore`]) and a small
//! 2-wide in-order core ([`InorderCore`]), configured per Table 2 of
//! *Reliability-Aware Scheduling on Heterogeneous Multicore Processors*
//! (HPCA 2017).
//!
//! The models reproduce the microarchitectural mechanisms the paper's
//! reliability analysis depends on: ROB fill-up under memory stalls,
//! wrong-path execution after branch mispredictions, front-end drains, and
//! finite back-end resources. Committed instructions are reported to a
//! [`RetireObserver`] with full dispatch/issue/finish/commit timestamps,
//! from which the ACE counters in `relsim-ace` derive per-structure
//! occupancy.
//!
//! # Quick start
//!
//! ```
//! use relsim_cpu::{Core, CoreConfig, RecordingObserver};
//! use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
//! use relsim_trace::{spec_profile, TraceGenerator};
//!
//! let mut core = Core::new(CoreConfig::big(), PrivateCacheConfig::default());
//! let mut shared = SharedMem::new(SharedMemConfig::default());
//! let mut src = TraceGenerator::new(spec_profile("milc").unwrap(), 1, 0);
//! let mut obs = RecordingObserver::default();
//! for tick in 0..50_000 {
//!     core.tick(tick, &mut src, &mut shared, &mut obs);
//! }
//! let ipc = core.committed() as f64 / core.cycles() as f64;
//! println!("milc on the big core: IPC = {ipc:.2}");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod checkpoint;
mod config;
mod core;
mod cpi;
mod events;
mod ff;
mod fu;
mod inorder;
mod ooo;
mod wheel;

pub use crate::core::Core;
pub use checkpoint::{Checkpoint, StateDigest};
pub use config::{BitWidths, CoreConfig, CoreKind, FuConfig};
pub use cpi::{CpiStack, StallCause, CPI_COMPONENT_NAMES};
pub use events::{NullObserver, RecordingObserver, RetireEvent, RetireObserver};
pub use fu::FuPool;
pub use inorder::InorderCore;
pub use ooo::OooCore;
