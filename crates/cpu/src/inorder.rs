//! Cycle-level model of the small in-order core.
//!
//! A 2-wide, 5-stage, stall-on-use in-order pipeline (Table 2). Compared to
//! the big core it exposes far fewer vulnerable bits (no ROB, tiny issue
//! queue, architectural register file only), but executes more slowly — the
//! reliability/performance trade-off the paper's scheduler exploits.
//!
//! # Data-oriented layout
//!
//! The pipeline latch is a flat fixed-capacity ring of [`PipeEntry`]
//! (array-of-structs: at `width * depth = 10` entries the whole ring is a
//! couple of cache lines, so splitting fields into separate arrays would
//! only add address arithmetic — see DESIGN.md §16). Issue is strictly
//! in-order, so the issued entries always form a prefix of the ring;
//! `issued_len` tracks that prefix and replaces the per-cycle
//! first-unissued linear scan in both `issue` and `next_event`.

use crate::config::{CoreConfig, CoreKind};
use crate::cpi::{CpiStack, StallCause};
use crate::events::{RetireEvent, RetireObserver};
use crate::fu::FuPool;
use relsim_mem::{MemLevel, PrivateCacheConfig, PrivateCaches, SharedMem};
use relsim_obs::span::{self, Stage};
use relsim_trace::{Instr, InstrSource, OpClass};

const CP_RING: usize = 256;

#[derive(Debug, Clone, Copy)]
struct PipeEntry {
    instr: Instr,
    seq: u64,
    wrong_path: bool,
    fetch: u64,
    /// Tick at which the instruction has cleared the front-end stages and
    /// may issue.
    avail: u64,
    issue_at: u64,
    finish_at: u64,
    issued: bool,
    mem_level: Option<MemLevel>,
    /// Producer seqs resolved at fetch time (dependency distances are
    /// relative to the fetch-order position of this instruction).
    deps: [Option<u64>; 2],
}

impl PipeEntry {
    fn empty() -> Self {
        PipeEntry {
            instr: Instr::nop(),
            seq: 0,
            wrong_path: false,
            fetch: 0,
            avail: 0,
            issue_at: 0,
            finish_at: 0,
            issued: false,
            mem_level: None,
            deps: [None, None],
        }
    }
}

/// The small in-order core (Table 2 configuration by default).
///
/// # Examples
///
/// ```
/// use relsim_cpu::{CoreConfig, InorderCore, NullObserver};
/// use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
/// use relsim_trace::{spec_profile, TraceGenerator};
///
/// let mut core = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
/// let mut shared = SharedMem::new(SharedMemConfig::default());
/// let mut src = TraceGenerator::new(spec_profile("hmmer").unwrap(), 1, 0);
/// let mut obs = NullObserver;
/// for tick in 0..10_000 {
///     core.tick(tick, &mut src, &mut shared, &mut obs);
/// }
/// assert!(core.committed() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct InorderCore {
    cfg: CoreConfig,
    caches: PrivateCaches,

    // --- Pipeline ring (flat fixed-capacity arena) ---
    //
    // Logical position i lives at slot (pipe_head + i) & slot_mask.
    // Unlike the ROB, in-order seqs are NOT contiguous across a flush
    // (`next_seq` is not rewound), so slots are ring positions, not
    // seq-addressed.
    pipe: Box<[PipeEntry]>,
    slot_mask: usize,
    pipe_head: usize,
    pipe_len: usize,
    /// Issued entries always form a prefix of the ring (issue is strictly
    /// in-order; writeback pops issued heads; flushes remove only
    /// unissued suffixes). Length of that prefix.
    issued_len: usize,
    /// Logical capacity (`width * depth`, may be below the ring's
    /// power-of-two storage).
    pipe_capacity: usize,
    next_seq: u64,
    fu: FuPool,
    sq_used: u32,

    cp_ring: [u64; CP_RING],
    cp_count: u64,

    in_wrong_path: bool,
    fetch_stall_until: u64,
    fetch_stall_icache: bool,
    branch_refill_until: u64,
    /// Misprediction bubble cycles not yet charged to the branch CPI
    /// component (see the same field on `OooCore`).
    branch_debt: u64,
    pending_fetch: Option<Instr>,
    /// Dead-tick cache (see the same field on `OooCore`): boundaries
    /// strictly before this tick only bump the cycle counter and charge
    /// one CPI stall. 0 = unknown.
    quiet_until: u64,

    cycles: u64,
    committed: u64,
    wrong_path_fetched: u64,
    icache_misses: u64,
    branch_mispredicts: u64,
    cpi: CpiStack,
    class_counts: [u64; 10],
    loads_by_level: [u64; 4],
}

impl InorderCore {
    /// Build an idle core with cold caches.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is not an in-order configuration
    /// (`kind == CoreKind::Small`).
    pub fn new(cfg: CoreConfig, cache_cfg: PrivateCacheConfig) -> Self {
        assert_eq!(
            cfg.kind,
            CoreKind::Small,
            "InorderCore requires a small-core config"
        );
        let caches = PrivateCaches::new(cache_cfg, cfg.ticks_per_cycle);
        let pipe_capacity = (cfg.width * cfg.depth) as usize;
        let store = pipe_capacity.next_power_of_two().max(1);
        InorderCore {
            fu: FuPool::new(cfg.fu),
            caches,
            pipe: vec![PipeEntry::empty(); store].into_boxed_slice(),
            slot_mask: store - 1,
            pipe_head: 0,
            pipe_len: 0,
            issued_len: 0,
            pipe_capacity,
            next_seq: 0,
            sq_used: 0,
            cp_ring: [u64::MAX; CP_RING],
            cp_count: 0,
            in_wrong_path: false,
            fetch_stall_until: 0,
            fetch_stall_icache: false,
            branch_refill_until: 0,
            branch_debt: 0,
            pending_fetch: None,
            quiet_until: 0,
            cycles: 0,
            committed: 0,
            wrong_path_fetched: 0,
            icache_misses: 0,
            branch_mispredicts: 0,
            cpi: CpiStack::default(),
            class_counts: [0; 10],
            loads_by_level: [0; 4],
            cfg,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Correct-path instructions written back so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Core cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Accumulated CPI stack.
    pub fn cpi_stack(&self) -> &CpiStack {
        &self.cpi
    }

    /// Committed instruction counts per [`OpClass`] index.
    pub fn class_counts(&self) -> &[u64; 10] {
        &self.class_counts
    }

    /// Committed loads served by each memory level (L1, L2, L3, Memory).
    pub fn loads_by_level(&self) -> &[u64; 4] {
        &self.loads_by_level
    }

    /// Wrong-path instructions fetched so far.
    pub fn wrong_path_fetched(&self) -> u64 {
        self.wrong_path_fetched
    }

    /// Mispredicted branches written back so far.
    pub fn branch_mispredicts(&self) -> u64 {
        self.branch_mispredicts
    }

    /// I-cache miss stalls taken so far.
    pub fn icache_misses(&self) -> u64 {
        self.icache_misses
    }

    /// The core's private caches.
    pub fn caches(&self) -> &PrivateCaches {
        &self.caches
    }

    /// Mutable access to the private caches.
    pub fn caches_mut(&mut self) -> &mut PrivateCaches {
        &mut self.caches
    }

    /// Squash all in-flight state (application migration).
    pub fn reset_pipeline(&mut self) {
        self.quiet_until = 0;
        self.pipe_len = 0;
        self.issued_len = 0;
        self.pending_fetch = None;
        self.sq_used = 0;
        self.in_wrong_path = false;
        self.fetch_stall_until = 0;
        self.fetch_stall_icache = false;
        self.branch_refill_until = 0;
        self.branch_debt = 0;
        self.cp_ring = [u64::MAX; CP_RING];
        self.cp_count = 0;
        self.fu.reset();
    }

    /// Ring slot of logical position `i` (0 = oldest).
    #[inline]
    fn slot(&self, i: usize) -> usize {
        (self.pipe_head + i) & self.slot_mask
    }

    /// Entry at logical position `i`.
    #[inline]
    fn at(&self, i: usize) -> &PipeEntry {
        &self.pipe[self.slot(i)]
    }

    fn pipe_index(&self, seq: u64) -> Option<usize> {
        if self.pipe_len == 0 {
            return None;
        }
        let front = self.at(0).seq;
        if seq < front {
            return None;
        }
        let idx = (seq - front) as usize;
        // Pipe seqs are contiguous (flush removes a suffix, writeback a
        // prefix), so direct indexing is valid — but guard against gaps
        // introduced by flushes followed by new fetches.
        if idx < self.pipe_len && self.at(idx).seq == seq {
            return Some(idx);
        }
        // Fall back to binary search over logical positions (post-flush
        // seq gap).
        let mut lo = 0usize;
        let mut hi = self.pipe_len;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.at(mid).seq < seq {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < self.pipe_len && self.at(lo).seq == seq).then_some(lo)
    }

    /// Resolve a dependency distance against the *current* fetch position.
    /// Must be called at fetch time, before the instruction itself enters
    /// the ring. Returns the producer's seq, or `None` if the producer is
    /// out of the tracking window (treated as already complete).
    fn resolve_producer(&self, d: u16) -> Option<u64> {
        let d = d as u64;
        if d == 0 || d > self.cp_count || d > CP_RING as u64 {
            return None;
        }
        let idx = ((self.cp_count - d) % CP_RING as u64) as usize;
        let seq = self.cp_ring[idx];
        (seq != u64::MAX).then_some(seq)
    }

    /// When is the operand produced by `producer_seq` ready? `None` means
    /// "not determined yet" (producer hasn't issued).
    fn operand_ready_at(&self, producer_seq: u64) -> Option<u64> {
        match self.pipe_index(producer_seq) {
            Some(i) => {
                let p = self.at(i);
                if p.issued {
                    Some(p.finish_at)
                } else {
                    None
                }
            }
            None => Some(0), // already written back
        }
    }

    fn writeback(&mut self, now: u64, shared: &mut SharedMem, obs: &mut dyn RetireObserver) -> u32 {
        let mut n = 0;
        while n < self.cfg.width {
            if self.pipe_len == 0 {
                break;
            }
            let s = self.pipe_head;
            let e = self.pipe[s];
            if !e.issued || e.finish_at > now {
                break;
            }
            self.pipe_head = (self.pipe_head + 1) & self.slot_mask;
            self.pipe_len -= 1;
            self.issued_len -= 1;
            debug_assert!(!e.wrong_path, "wrong-path instruction reached writeback");
            if e.instr.op == OpClass::Store {
                self.sq_used -= 1;
                let _ = self.caches.access_data(e.instr.addr, true, now, shared);
            }
            self.committed += 1;
            self.class_counts[e.instr.op.index()] += 1;
            if e.instr.op == OpClass::Load {
                let li = match e.mem_level {
                    Some(MemLevel::L1) => 0,
                    Some(MemLevel::L2) => 1,
                    Some(MemLevel::L3) => 2,
                    Some(MemLevel::Memory) => 3,
                    None => 0,
                };
                self.loads_by_level[li] += 1;
            }
            if e.instr.op == OpClass::Branch && e.instr.mispredict {
                self.branch_mispredicts += 1;
            }
            obs.on_retire(&RetireEvent {
                op: e.instr.op,
                dispatch: e.fetch,
                issue: e.issue_at,
                finish: e.finish_at,
                commit: now,
                exec_latency: e.instr.exec_latency(),
                has_output: e.instr.has_output(),
            });
            n += 1;
        }
        n
    }

    /// Returns the number of instructions issued.
    fn issue(&mut self, now: u64, shared: &mut SharedMem) -> u32 {
        // Strictly in-order: issued entries form a prefix, so the oldest
        // unissued entry is at logical position `issued_len`. All issued:
        // nothing to select (the FU pool's per-cycle counters are only
        // read via `try_issue` below, so skipping `new_cycle` is
        // unobservable).
        if self.issued_len == self.pipe_len {
            return 0;
        }
        self.fu.new_cycle();
        let tpc = self.cfg.ticks_per_cycle;
        let mut issued = 0;
        let mut idx = self.issued_len;
        while issued < self.cfg.width && idx < self.pipe_len {
            let e = self.at(idx);
            if e.avail > now {
                break;
            }
            // Operand readiness.
            let r1 = e.deps[0].map(|p| self.operand_ready_at(p));
            let r2 = e.deps[1].map(|p| self.operand_ready_at(p));
            let ready_at = match (r1, r2) {
                (Some(None), _) | (_, Some(None)) => break, // producer not issued
                (a, b) => a.flatten().unwrap_or(0).max(b.flatten().unwrap_or(0)),
            };
            if ready_at > now {
                break;
            }
            let op = self.at(idx).instr.op;
            if op == OpClass::Store && self.sq_used >= self.cfg.sq_size {
                break;
            }
            if op != OpClass::Nop && !self.fu.try_issue(op, now, tpc) {
                break;
            }
            let (finish_at, mem_level) = match op {
                OpClass::Load => {
                    let addr = self.at(idx).instr.addr;
                    let o = self.caches.access_data(addr, false, now + tpc, shared);
                    (o.complete_at, Some(o.level))
                }
                OpClass::Store => {
                    self.sq_used += 1;
                    (now + tpc, None)
                }
                OpClass::Nop => (now + tpc, None),
                _ => (now + self.at(idx).instr.exec_latency() * tpc, None),
            };
            let s = self.slot(idx);
            let e = &mut self.pipe[s];
            e.issued = true;
            e.issue_at = now;
            e.finish_at = finish_at;
            e.mem_level = mem_level;
            let mispredicted = e.instr.mispredict && !e.wrong_path && op == OpClass::Branch;
            self.issued_len += 1;
            if mispredicted {
                // The branch resolves at finish; schedule the flush then.
                // For the short in-order pipeline we flush conservatively at
                // issue+latency by remembering the resolve tick.
                let resolve = finish_at;
                self.flush_after_seq(self.pipe[s].seq, resolve);
            }
            issued += 1;
            idx += 1;
        }
        issued
    }

    /// Remove all entries younger than `seq` and redirect fetch at
    /// `resolve`. The removed suffix is always unissued (a mispredicted
    /// branch flushes at its own issue, before anything younger can
    /// issue), so `issued_len` is unaffected.
    fn flush_after_seq(&mut self, seq: u64, resolve: u64) {
        while self.pipe_len > 0 {
            let s = self.slot(self.pipe_len - 1);
            let e = &self.pipe[s];
            if e.seq <= seq {
                break;
            }
            if e.issued && e.instr.op == OpClass::Store {
                self.sq_used -= 1;
            }
            debug_assert!(!e.issued, "flushed a suffix entry that had issued");
            self.pipe_len -= 1;
        }
        debug_assert!(self.issued_len <= self.pipe_len);
        self.pending_fetch = None;
        self.in_wrong_path = false;
        self.fetch_stall_icache = false;
        let tpc = self.cfg.ticks_per_cycle;
        self.fetch_stall_until = self.fetch_stall_until.max(resolve + tpc);
        self.branch_refill_until = resolve + (self.cfg.frontend_delay() + 2) * tpc;
        self.branch_debt = (self.branch_debt + self.cfg.frontend_delay() + 2).min(32);
    }

    /// Returns whether fetch changed state (pushed instructions or took an
    /// I-cache stall); see `OooCore::fetch` on why the unconditional
    /// `fetch_stall_icache` clear does not count as work.
    fn fetch(&mut self, now: u64, src: &mut dyn InstrSource) -> bool {
        if now < self.fetch_stall_until {
            return false;
        }
        self.fetch_stall_icache = false;
        let tpc = self.cfg.ticks_per_cycle;
        let fe_delay = self.cfg.frontend_delay() * tpc;
        let mut n = 0;
        while n < self.cfg.width && self.pipe_len < self.pipe_capacity {
            let instr = if self.in_wrong_path {
                self.wrong_path_fetched += 1;
                src.wrong_path_instr()
            } else if let Some(p) = self.pending_fetch.take() {
                p
            } else {
                let i = src.next_instr();
                if i.icache_miss {
                    self.icache_misses += 1;
                    self.pending_fetch = Some(Instr {
                        icache_miss: false,
                        ..i
                    });
                    self.fetch_stall_until = now + self.cfg.icache_penalty * tpc;
                    self.fetch_stall_icache = true;
                    return true;
                }
                i
            };
            let wrong_path = self.in_wrong_path;
            let is_mispredict = !wrong_path && instr.op == OpClass::Branch && instr.mispredict;
            let seq = self.next_seq;
            self.next_seq += 1;
            // Resolve producers against the ring *before* this instruction
            // is added to it.
            let deps = [
                instr.src1.and_then(|d| self.resolve_producer(d)),
                instr.src2.and_then(|d| self.resolve_producer(d)),
            ];
            if !wrong_path {
                let idx = (self.cp_count % CP_RING as u64) as usize;
                self.cp_ring[idx] = seq;
                self.cp_count += 1;
            }
            let s = self.slot(self.pipe_len);
            self.pipe[s] = PipeEntry {
                instr,
                seq,
                wrong_path,
                fetch: now,
                avail: now + fe_delay,
                issue_at: now,
                finish_at: u64::MAX,
                issued: false,
                mem_level: None,
                deps,
            };
            self.pipe_len += 1;
            n += 1;
            if is_mispredict {
                self.in_wrong_path = true;
                break;
            }
        }
        n > 0
    }

    fn account_cpi(&mut self, commits: u32, now: u64) {
        if commits > 0 {
            self.cpi.commit_cycle();
            return;
        }
        let cause = if self.pipe_len > 0 {
            let head = &self.pipe[self.pipe_head];
            if head.issued && head.instr.op == OpClass::Load && head.finish_at > now {
                match head.mem_level {
                    Some(MemLevel::Memory) => StallCause::Memory,
                    Some(MemLevel::L3) => StallCause::Llc,
                    _ => StallCause::Resource,
                }
            } else if !head.issued && head.avail > now && now < self.branch_refill_until {
                // The pipeline is refilling after a misprediction flush.
                StallCause::Branch
            } else if self.branch_debt > 0 {
                self.branch_debt -= 1;
                StallCause::Branch
            } else {
                // Stall-on-use: the head (or something before it) is waiting
                // on an outstanding load or a busy unit.
                StallCause::Resource
            }
        } else if self.fetch_stall_icache && now < self.fetch_stall_until {
            StallCause::ICache
        } else if self.in_wrong_path || now < self.branch_refill_until {
            StallCause::Branch
        } else {
            StallCause::Resource
        };
        self.cpi.stall_cycle(cause);
    }

    /// Conservative event horizon: the earliest tick strictly after `now`
    /// at which this core's architectural state can change; see
    /// [`OooCore::next_event`](crate::OooCore::next_event) for the
    /// contract. For the in-order pipe the horizon is the min over the
    /// head's writeback time, the issue time of the oldest unissued entry
    /// (front-end `avail`, producer results, unpipelined-divider busy
    /// time), and the end of a fetch stall when the pipe has room.
    pub fn next_event(&self, now: u64) -> u64 {
        let tpc = self.cfg.ticks_per_cycle;
        let nb = (now / tpc + 1) * tpc;
        // Fetch can make progress at the next boundary.
        if self.pipe_len < self.pipe_capacity && nb >= self.fetch_stall_until {
            return nb;
        }
        let mut h = u64::MAX;
        if self.pipe_len > 0 {
            let head = &self.pipe[self.pipe_head];
            if head.issued {
                h = h.min(head.finish_at);
            }
        }
        // Issue is strictly in-order, so only the oldest unissued entry
        // can change state (issued entries form a prefix of the pipe).
        if self.issued_len < self.pipe_len {
            let e = self.at(self.issued_len);
            // A store blocked on a full SQ can only be unblocked by a
            // store writeback at the pipe head; `sq_used > 0` implies the
            // head is issued, so `head.finish_at` above already bounds it.
            let sq_blocked = e.instr.op == OpClass::Store && self.sq_used >= self.cfg.sq_size;
            if !sq_blocked {
                let mut bound = e.avail;
                let mut unknown = false;
                for dep in e.deps.iter().flatten() {
                    match self.operand_ready_at(*dep) {
                        Some(r) => bound = bound.max(r),
                        // Producer not issued: cannot happen for the
                        // oldest unissued entry, but stay conservative.
                        None => unknown = true,
                    }
                }
                match e.instr.op {
                    OpClass::IntDiv => bound = bound.max(self.fu.int_div_busy_at()),
                    OpClass::FpDiv => bound = bound.max(self.fu.fp_div_busy_at()),
                    _ => {}
                }
                if unknown {
                    return nb;
                }
                h = h.min(bound);
            }
        }
        if self.pipe_len < self.pipe_capacity {
            h = h.min(self.fetch_stall_until);
        }
        if h == u64::MAX {
            return nb; // nothing in flight at all: never skip blind
        }
        h.max(nb)
    }

    /// Charge the dead ticks `[from, to)` in closed form; see
    /// [`OooCore::skip_to`](crate::OooCore::skip_to) for the contract.
    /// Replays the per-cycle stall classification of `account_cpi` as
    /// range arithmetic over the skipped cycle boundaries.
    pub fn skip_to(&mut self, from: u64, to: u64) {
        let tpc = self.cfg.ticks_per_cycle;
        // Cycle boundaries t = k*tpc in [from, to): k in [a, b).
        let a = from.div_ceil(tpc);
        let b = to.div_ceil(tpc);
        if b <= a {
            return;
        }
        let n = b - a;
        self.cycles += n;
        if self.pipe_len > 0 {
            let head = &self.pipe[self.pipe_head];
            if head.issued {
                if head.instr.op == OpClass::Load {
                    // The skip ends no later than head.finish_at, so the
                    // load is outstanding on every skipped cycle.
                    let cause = match head.mem_level {
                        Some(MemLevel::Memory) => StallCause::Memory,
                        Some(MemLevel::L3) => StallCause::Llc,
                        _ => StallCause::Resource,
                    };
                    self.cpi.stall_cycles(cause, n);
                } else {
                    // Issued non-load head: branch debt first, then
                    // stall-on-use resource cycles.
                    let n_debt = n.min(self.branch_debt);
                    self.branch_debt -= n_debt;
                    self.cpi.stall_cycles(StallCause::Branch, n_debt);
                    self.cpi.stall_cycles(StallCause::Resource, n - n_debt);
                }
            } else {
                // Unissued head: cycles before min(avail, refill deadline)
                // are misprediction refill, the rest consume branch debt
                // and then count as resource stalls.
                let t_lim = head.avail.min(self.branch_refill_until);
                let k_b = t_lim.div_ceil(tpc).clamp(a, b);
                let n_refill = k_b - a;
                let rest = n - n_refill;
                let n_debt = rest.min(self.branch_debt);
                self.branch_debt -= n_debt;
                self.cpi.stall_cycles(StallCause::Branch, n_refill + n_debt);
                self.cpi.stall_cycles(StallCause::Resource, rest - n_debt);
            }
        } else {
            // Empty pipe: an I-cache stall window charges ICache, then the
            // wrong-path/refill window charges Branch, then Resource (the
            // empty-pipe path consumes no branch debt).
            let k_fsu = if self.fetch_stall_icache {
                self.fetch_stall_until.div_ceil(tpc).clamp(a, b)
            } else {
                a
            };
            self.cpi.stall_cycles(StallCause::ICache, k_fsu - a);
            if self.in_wrong_path {
                self.cpi.stall_cycles(StallCause::Branch, b - k_fsu);
            } else {
                let k_bru = self.branch_refill_until.div_ceil(tpc).clamp(k_fsu, b);
                self.cpi.stall_cycles(StallCause::Branch, k_bru - k_fsu);
                self.cpi.stall_cycles(StallCause::Resource, b - k_bru);
            }
        }
    }

    /// Advance the core by one global tick (no-op between cycle
    /// boundaries; see [`OooCore::tick`](crate::OooCore::tick)).
    pub fn tick(
        &mut self,
        now: u64,
        src: &mut dyn InstrSource,
        shared: &mut SharedMem,
        obs: &mut dyn RetireObserver,
    ) {
        if !now.is_multiple_of(self.cfg.ticks_per_cycle) {
            return;
        }
        self.cycles += 1;
        // One global-flag read per cycle (see OooCore::tick).
        let prof = span::enabled();
        // Dead-tick fast path (see OooCore::tick).
        if now < self.quiet_until && !prof {
            self.account_cpi(0, now);
            return;
        }
        let commits = span::scoped(prof, Stage::Commit, || self.writeback(now, shared, obs));
        let issued = span::scoped(prof, Stage::SelectIssue, || self.issue(now, shared));
        let fetched = span::scoped(prof, Stage::Fetch, || self.fetch(now, src));
        self.quiet_until = if commits == 0 && issued == 0 && !fetched {
            self.next_event(now)
        } else {
            0
        };
        span::scoped(prof, Stage::CpiAccount, || self.account_cpi(commits, now));
    }

    /// Shift every in-flight absolute timestamp forward by `delta` ticks;
    /// see [`OooCore`](crate::OooCore)'s `shift_time` for the rationale.
    fn shift_time(&mut self, start: u64, delta: u64) {
        self.quiet_until = 0;
        for i in 0..self.pipe_len {
            let s = (self.pipe_head + i) & self.slot_mask;
            let e = &mut self.pipe[s];
            e.fetch += delta;
            e.issue_at += delta;
            if e.finish_at != u64::MAX {
                e.finish_at += delta;
            }
            if e.avail > start {
                e.avail += delta;
            }
        }
        if self.fetch_stall_until > start {
            self.fetch_stall_until += delta;
        }
        if self.branch_refill_until > start {
            self.branch_refill_until += delta;
        }
        self.fu.shift_time(start, delta);
    }

    /// Fast-forward across the tick window `[start, start + ticks)`
    /// without cycle timing; see
    /// [`OooCore::fast_forward`](crate::OooCore::fast_forward).
    pub fn fast_forward(
        &mut self,
        start: u64,
        ticks: u64,
        instructions: u64,
        template: &CpiStack,
        src: &mut dyn InstrSource,
        shared: &mut SharedMem,
    ) {
        let cycles = crate::ff::cycles_in_window(start, ticks, self.cfg.ticks_per_cycle);
        self.cycles += cycles;
        self.cpi = self.cpi.merged(&template.scaled_to(cycles));
        self.shift_time(start, ticks);
        crate::ff::functional_warm(
            &mut self.caches,
            src,
            shared,
            start,
            ticks,
            instructions,
            crate::ff::FfCounters {
                committed: &mut self.committed,
                branch_mispredicts: &mut self.branch_mispredicts,
                icache_misses: &mut self.icache_misses,
                class_counts: &mut self.class_counts,
                loads_by_level: &mut self.loads_by_level,
            },
        );
    }

    /// Current pipeline occupancy.
    pub fn pipe_occupancy(&self) -> usize {
        self.pipe_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RecordingObserver;
    use relsim_mem::SharedMemConfig;
    use relsim_trace::TraceGenerator;

    struct Script {
        instrs: Vec<Instr>,
        pos: usize,
    }

    impl InstrSource for Script {
        fn next_instr(&mut self) -> Instr {
            let i = self.instrs.get(self.pos).copied().unwrap_or(Instr::nop());
            self.pos += 1;
            i
        }
        fn wrong_path_instr(&mut self) -> Instr {
            Instr {
                op: OpClass::IntAlu,
                src1: Some(1),
                ..Instr::nop()
            }
        }
    }

    fn run(core: &mut InorderCore, src: &mut dyn InstrSource, ticks: u64) -> RecordingObserver {
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = RecordingObserver::default();
        for t in 0..ticks {
            core.tick(t, src, &mut shared, &mut obs);
        }
        obs
    }

    fn alu() -> Instr {
        Instr {
            op: OpClass::IntAlu,
            src1: None,
            ..Instr::nop()
        }
    }

    #[test]
    fn independent_alus_flow_at_width_two() {
        let mut core = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
        let mut src = Script {
            instrs: vec![alu(); 5000],
            pos: 0,
        };
        let obs = run(&mut core, &mut src, 2000);
        assert!(
            core.committed() >= 2 * (2000 - 30),
            "committed {}",
            core.committed()
        );
        assert!(obs.events.iter().all(|e| e.is_well_formed()));
    }

    #[test]
    fn stall_on_use_after_long_load() {
        // load (misses to memory) followed immediately by a dependent use:
        // everything behind stalls.
        let mut v = Vec::new();
        for i in 0..200u64 {
            v.push(Instr {
                op: OpClass::Load,
                src1: None,
                src2: None,
                addr: 0x100000 + i * 64 * 997, // big strides: mostly misses
                mispredict: false,
                icache_miss: false,
            });
            v.push(Instr {
                op: OpClass::IntAlu,
                src1: Some(1), // depends on the load
                ..Instr::nop()
            });
        }
        let mut core = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
        let mut src = Script { instrs: v, pos: 0 };
        run(&mut core, &mut src, 8000);
        let ipc = core.committed() as f64 / core.cycles() as f64;
        assert!(ipc < 0.5, "stall-on-use should crush IPC, got {ipc}");
        let s = core.cpi_stack();
        assert!(s.resource + s.llc + s.memory > 0);
    }

    #[test]
    fn in_order_issue_never_reorders() {
        let mut core = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("povray").unwrap();
        let mut src = TraceGenerator::new(p, 3, 0);
        let obs = run(&mut core, &mut src, 20_000);
        for w in obs.events.windows(2) {
            assert!(w[0].issue <= w[1].issue, "issue must be in order");
            assert!(w[0].commit <= w[1].commit);
        }
    }

    #[test]
    fn small_core_slower_than_big_core_on_same_trace() {
        use crate::ooo::OooCore;
        let p = relsim_trace::spec_profile("hmmer").unwrap();
        let mut big = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut small = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
        let mut src_b = TraceGenerator::new(p.clone(), 3, 0);
        let mut src_s = TraceGenerator::new(p, 3, 0);
        let mut shared_b = SharedMem::new(SharedMemConfig::default());
        let mut shared_s = SharedMem::new(SharedMemConfig::default());
        let mut obs = crate::events::NullObserver;
        for t in 0..50_000 {
            big.tick(t, &mut src_b, &mut shared_b, &mut obs);
            small.tick(t, &mut src_s, &mut shared_s, &mut obs);
        }
        assert!(
            big.committed() as f64 > 1.3 * small.committed() as f64,
            "big {} vs small {}",
            big.committed(),
            small.committed()
        );
    }

    #[test]
    fn mispredicts_flush_and_cost_cycles() {
        let mk = |mis| {
            let mut v = Vec::new();
            for _ in 0..400 {
                for _ in 0..4 {
                    v.push(alu());
                }
                v.push(Instr {
                    op: OpClass::Branch,
                    src1: Some(1),
                    mispredict: mis,
                    ..Instr::nop()
                });
            }
            v
        };
        let mut good = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
        run(
            &mut good,
            &mut Script {
                instrs: mk(false),
                pos: 0,
            },
            3000,
        );
        let mut bad = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
        run(
            &mut bad,
            &mut Script {
                instrs: mk(true),
                pos: 0,
            },
            3000,
        );
        assert!(bad.committed() < good.committed());
        assert!(bad.cpi_stack().branch > 0);
        assert!(bad.wrong_path_fetched() > 0);
    }

    #[test]
    fn reset_pipeline_supports_migration() {
        let mut core = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("milc").unwrap();
        let mut src = TraceGenerator::new(p, 1, 0);
        run(&mut core, &mut src, 3000);
        core.reset_pipeline();
        assert_eq!(core.pipe_occupancy(), 0);
        let before = core.committed();
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = crate::events::NullObserver;
        for t in 3000..9000 {
            core.tick(t, &mut src, &mut shared, &mut obs);
        }
        assert!(core.committed() > before);
    }

    #[test]
    fn cpi_stack_total_matches_cycles() {
        let mut core = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("gcc").unwrap();
        let mut src = TraceGenerator::new(p, 9, 0);
        run(&mut core, &mut src, 30_000);
        assert_eq!(core.cpi_stack().total(), core.cycles());
    }
}
