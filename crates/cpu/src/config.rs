//! Core configurations reproducing Table 2 of the paper.

use serde::{Deserialize, Serialize};

/// The two core types of the heterogeneous multicore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CoreKind {
    /// Big 4-wide out-of-order core.
    Big,
    /// Small 2-wide in-order core.
    Small,
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreKind::Big => write!(f, "big"),
            CoreKind::Small => write!(f, "small"),
        }
    }
}

impl CoreKind {
    /// The other core type.
    pub fn other(self) -> CoreKind {
        match self {
            CoreKind::Big => CoreKind::Small,
            CoreKind::Small => CoreKind::Big,
        }
    }
}

/// Number of functional units and latency per operation class
/// (shared structure between both core types; counts differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuConfig {
    /// Integer adders/ALUs (also used for branches and address generation).
    pub int_add: u32,
    /// Integer multipliers.
    pub int_mul: u32,
    /// Integer dividers (unpipelined).
    pub int_div: u32,
    /// FP adders.
    pub fp_add: u32,
    /// FP multipliers.
    pub fp_mul: u32,
    /// FP dividers (unpipelined).
    pub fp_div: u32,
}

impl FuConfig {
    /// Big-core FU mix from Table 2.
    pub fn big() -> Self {
        FuConfig {
            int_add: 3,
            int_mul: 1,
            int_div: 1,
            fp_add: 1,
            fp_mul: 1,
            fp_div: 1,
        }
    }

    /// Small-core FU mix from Table 2.
    pub fn small() -> Self {
        FuConfig {
            int_add: 2,
            int_mul: 1,
            int_div: 1,
            fp_add: 1,
            fp_mul: 1,
            fp_div: 1,
        }
    }

    /// Total number of functional units.
    pub fn total(&self) -> u32 {
        self.int_add + self.int_mul + self.int_div + self.fp_add + self.fp_mul + self.fp_div
    }
}

/// ACE-relevant bit widths per structure entry, from Table 2 (taken from
/// Nair et al. in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BitWidths {
    /// Bits per ROB entry (big core) or per pipeline-stage latch (small).
    pub rob_entry: u64,
    /// Bits per issue-queue entry.
    pub iq_entry: u64,
    /// Bits per load-queue entry.
    pub lq_entry: u64,
    /// Bits per store-queue entry.
    pub sq_entry: u64,
    /// Bits per integer register.
    pub int_reg: u64,
    /// Bits per FP register.
    pub fp_reg: u64,
    /// Bits of state in an integer functional unit's datapath.
    pub int_fu: u64,
    /// Bits of state in an FP functional unit's datapath.
    pub fp_fu: u64,
    /// Fraction of architectural-register bits that hold live (ACE) values
    /// at any time. Mukherjee-style ACE analysis tracks write-to-last-read
    /// liveness; a register holding a dead value is not ACE. Reported
    /// register-file liveness for SPEC-class codes is low (many registers
    /// hold dead or short-lived values); 0.15 calibrates the oracle
    /// scheduling potential (Figure 3) to the paper's 27.2% (see the
    /// `ablation_liveness` bench for the sweep). Setting 1.0 restores the
    /// literal "all architectural registers are ACE" reading.
    pub arch_reg_live_fraction: f64,
}

impl Default for BitWidths {
    fn default() -> Self {
        BitWidths {
            rob_entry: 76,
            iq_entry: 32,
            lq_entry: 80,
            sq_entry: 144,
            int_reg: 64,
            fp_reg: 128,
            int_fu: 64,
            fp_fu: 128,
            arch_reg_live_fraction: 0.15,
        }
    }
}

/// Full configuration of one core.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoreConfig {
    /// Core type.
    pub kind: CoreKind,
    /// Global ticks per core cycle: 1 at the 2.66 GHz reference frequency,
    /// 2 when the core runs at 1.33 GHz (Section 6.4).
    pub ticks_per_cycle: u64,
    /// Fetch/dispatch/commit width.
    pub width: u32,
    /// Pipeline depth in stages (front-end refill penalty).
    pub depth: u32,
    /// ROB entries (0 for the in-order core, which has no ROB).
    pub rob_size: u32,
    /// Issue-queue entries.
    pub iq_size: u32,
    /// Load-queue entries (0 for the in-order core).
    pub lq_size: u32,
    /// Store-queue entries.
    pub sq_size: u32,
    /// Physical integer registers.
    pub int_regs: u32,
    /// Physical FP registers.
    pub fp_regs: u32,
    /// Architectural integer registers (always ACE; also reserved out of
    /// the physical file for renaming purposes).
    pub arch_int_regs: u32,
    /// Architectural FP registers.
    pub arch_fp_regs: u32,
    /// Functional units.
    pub fu: FuConfig,
    /// Stall cycles charged for an L1 I-cache miss (L2 hit latency).
    pub icache_penalty: u64,
    /// ACE bit widths.
    pub bits: BitWidths,
}

impl CoreConfig {
    /// The big out-of-order core of Table 2 at the reference frequency.
    pub fn big() -> Self {
        CoreConfig {
            kind: CoreKind::Big,
            ticks_per_cycle: 1,
            width: 4,
            depth: 8,
            rob_size: 128,
            iq_size: 64,
            lq_size: 64,
            sq_size: 64,
            int_regs: 120,
            fp_regs: 96,
            arch_int_regs: 16,
            arch_fp_regs: 16,
            fu: FuConfig::big(),
            icache_penalty: 8,
            bits: BitWidths::default(),
        }
    }

    /// The small in-order core of Table 2 at the reference frequency.
    pub fn small() -> Self {
        CoreConfig {
            kind: CoreKind::Small,
            ticks_per_cycle: 1,
            width: 2,
            depth: 5,
            rob_size: 0,
            iq_size: 4,
            lq_size: 0,
            sq_size: 10,
            int_regs: 16,
            fp_regs: 16,
            arch_int_regs: 16,
            arch_fp_regs: 16,
            fu: FuConfig::small(),
            icache_penalty: 8,
            bits: BitWidths::default(),
        }
    }

    /// A copy of this configuration running at half frequency
    /// (2 global ticks per core cycle ≙ 1.33 GHz vs the 2.66 GHz reference).
    pub fn at_half_frequency(self) -> Self {
        self.at_frequency_divisor(2)
    }

    /// A copy of this configuration clocked at `1/divisor` of the
    /// reference frequency (the core performs one cycle every `divisor`
    /// global ticks). `divisor = 1` is the 2.66 GHz reference.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn at_frequency_divisor(mut self, divisor: u64) -> Self {
        assert!(divisor >= 1, "frequency divisor must be at least 1");
        self.ticks_per_cycle = divisor;
        self
    }

    /// Front-end delay in core cycles from fetch to dispatch/issue
    /// readiness (pipeline depth minus the execute and writeback stages).
    pub fn frontend_delay(&self) -> u64 {
        (self.depth.saturating_sub(2)) as u64
    }

    /// Number of physical registers available for renaming
    /// (physical minus architectural), per bank.
    pub fn rename_int_regs(&self) -> u32 {
        self.int_regs.saturating_sub(self.arch_int_regs)
    }

    /// Same for the FP bank.
    pub fn rename_fp_regs(&self) -> u32 {
        self.fp_regs.saturating_sub(self.arch_fp_regs)
    }

    /// Total ACE-relevant bits in this core — the denominator of AVF.
    ///
    /// For the big core: ROB + IQ + LQ + SQ + physical register files +
    /// functional-unit datapaths. For the small core: pipeline-stage
    /// latches (width × depth × rob_entry bits) + IQ + SQ + architectural
    /// register file + FU datapaths.
    pub fn total_bits(&self) -> u64 {
        let b = &self.bits;
        let storage = if self.kind == CoreKind::Big {
            u64::from(self.rob_size) * b.rob_entry
                + u64::from(self.iq_size) * b.iq_entry
                + u64::from(self.lq_size) * b.lq_entry
                + u64::from(self.sq_size) * b.sq_entry
                + u64::from(self.int_regs) * b.int_reg
                + u64::from(self.fp_regs) * b.fp_reg
        } else {
            u64::from(self.width) * u64::from(self.depth) * b.rob_entry
                + u64::from(self.iq_size) * b.iq_entry
                + u64::from(self.sq_size) * b.sq_entry
                + u64::from(self.int_regs) * b.int_reg
                + u64::from(self.fp_regs) * b.fp_reg
        };
        let fu_bits = u64::from(self.fu.int_add + self.fu.int_mul + self.fu.int_div) * b.int_fu
            + u64::from(self.fu.fp_add + self.fu.fp_mul + self.fu.fp_div) * b.fp_fu;
        storage + fu_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_big_core() {
        let c = CoreConfig::big();
        assert_eq!(c.width, 4);
        assert_eq!(c.depth, 8);
        assert_eq!(c.rob_size, 128);
        assert_eq!(c.iq_size, 64);
        assert_eq!(c.lq_size, 64);
        assert_eq!(c.sq_size, 64);
        assert_eq!(c.int_regs, 120);
        assert_eq!(c.fp_regs, 96);
        assert_eq!(c.fu.int_add, 3);
        assert_eq!(c.bits.rob_entry, 76);
        assert_eq!(c.bits.sq_entry, 144);
    }

    #[test]
    fn table2_small_core() {
        let c = CoreConfig::small();
        assert_eq!(c.width, 2);
        assert_eq!(c.depth, 5);
        assert_eq!(c.iq_size, 4);
        assert_eq!(c.sq_size, 10);
        assert_eq!(c.int_regs, 16);
        assert_eq!(c.fp_regs, 16);
        assert_eq!(c.fu.int_add, 2);
    }

    #[test]
    fn big_core_has_many_more_bits_than_small() {
        let big = CoreConfig::big().total_bits();
        let small = CoreConfig::small().total_bits();
        assert!(
            big > 3 * small,
            "big core ({big} bits) should dwarf small core ({small} bits)"
        );
    }

    #[test]
    fn half_frequency_scales_ticks() {
        let c = CoreConfig::small().at_half_frequency();
        assert_eq!(c.ticks_per_cycle, 2);
        let c = CoreConfig::big().at_frequency_divisor(3);
        assert_eq!(c.ticks_per_cycle, 3);
    }

    #[test]
    #[should_panic(expected = "frequency divisor")]
    fn zero_divisor_rejected() {
        let _ = CoreConfig::big().at_frequency_divisor(0);
    }

    #[test]
    fn frontend_delay_follows_depth() {
        assert_eq!(CoreConfig::big().frontend_delay(), 6);
        assert_eq!(CoreConfig::small().frontend_delay(), 3);
    }

    #[test]
    fn rename_registers_exclude_architectural() {
        let c = CoreConfig::big();
        assert_eq!(c.rename_int_regs(), 104);
        assert_eq!(c.rename_fp_regs(), 80);
        let s = CoreConfig::small();
        assert_eq!(s.rename_int_regs(), 0, "in-order core does not rename");
    }

    #[test]
    fn kind_other_flips() {
        assert_eq!(CoreKind::Big.other(), CoreKind::Small);
        assert_eq!(CoreKind::Small.other(), CoreKind::Big);
        assert_eq!(CoreKind::Big.to_string(), "big");
    }
}
