//! Functional fast-forward: the non-cycle-timed half of the interval
//! sampling engine (Pac-Sim-style, see PAPERS.md).
//!
//! During a fast-forward window the core does not simulate the pipeline.
//! Instead it drains an estimated number of instructions from the trace
//! generator — keeping the application's program position exactly where
//! detailed simulation would have left it — and plays their memory
//! references through the cache hierarchy so that cache, prefetcher, and
//! DRAM-controller state stay warm for the next detailed interval.
//! Cycle-level effects (stalls, wrong-path fetch, finite queues) are not
//! modeled; the caller extrapolates cycles and CPI-stack components from
//! the preceding detailed interval instead.

use relsim_mem::{MemLevel, PrivateCaches, SharedMem};
use relsim_trace::{InstrSource, OpClass};

/// Number of core cycle boundaries (multiples of `ticks_per_cycle`)
/// inside the half-open tick window `[start, start + ticks)`. Matches
/// exactly what the detailed per-tick loop would have counted, so
/// fast-forwarded runs keep `cycles` consistent with frequency scaling.
pub(crate) fn cycles_in_window(start: u64, ticks: u64, ticks_per_cycle: u64) -> u64 {
    (start + ticks).div_ceil(ticks_per_cycle) - start.div_ceil(ticks_per_cycle)
}

/// Mutable views of the per-core commit counters updated during
/// functional warming.
pub(crate) struct FfCounters<'a> {
    pub committed: &'a mut u64,
    pub branch_mispredicts: &'a mut u64,
    pub icache_misses: &'a mut u64,
    pub class_counts: &'a mut [u64; 10],
    pub loads_by_level: &'a mut [u64; 4],
}

/// Functionally execute `instructions` instructions from `src` across the
/// tick window `[start, start + ticks)`, warming `caches` (and through
/// them the shared memory system) without cycle timing. Access timestamps
/// are spread evenly across the window so time-dependent memory state
/// (MSHR windows, DRAM controller queues, prefetch streams) advances
/// plausibly and deterministically.
pub(crate) fn functional_warm(
    caches: &mut PrivateCaches,
    src: &mut dyn InstrSource,
    shared: &mut SharedMem,
    start: u64,
    ticks: u64,
    instructions: u64,
    c: FfCounters<'_>,
) {
    relsim_obs::span::scope(relsim_obs::span::Stage::FfWarm, || {
        functional_warm_inner(caches, src, shared, start, ticks, instructions, c)
    })
}

fn functional_warm_inner(
    caches: &mut PrivateCaches,
    src: &mut dyn InstrSource,
    shared: &mut SharedMem,
    start: u64,
    ticks: u64,
    instructions: u64,
    c: FfCounters<'_>,
) {
    for i in 0..instructions {
        let now = start + ((i as u128 * ticks as u128) / instructions.max(1) as u128) as u64;
        let instr = src.next_instr();
        if instr.icache_miss {
            *c.icache_misses += 1;
        }
        *c.committed += 1;
        c.class_counts[instr.op.index()] += 1;
        match instr.op {
            OpClass::Load => {
                let o = caches.access_data(instr.addr, false, now, shared);
                let li = match o.level {
                    MemLevel::L1 => 0,
                    MemLevel::L2 => 1,
                    MemLevel::L3 => 2,
                    MemLevel::Memory => 3,
                };
                c.loads_by_level[li] += 1;
            }
            OpClass::Store => {
                let _ = caches.access_data(instr.addr, true, now, shared);
            }
            OpClass::Branch if instr.mispredict => {
                *c.branch_mispredicts += 1;
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_window_counts_cycle_boundaries() {
        // Full-rate core: one cycle per tick.
        assert_eq!(cycles_in_window(0, 100, 1), 100);
        assert_eq!(cycles_in_window(37, 100, 1), 100);
        // Half-rate core: cycle boundaries at even ticks.
        assert_eq!(cycles_in_window(0, 100, 2), 50);
        assert_eq!(cycles_in_window(1, 100, 2), 50);
        assert_eq!(cycles_in_window(0, 101, 2), 51);
        assert_eq!(cycles_in_window(2, 3, 2), 2); // ticks 2,3,4 → 2 and 4
        assert_eq!(cycles_in_window(3, 1, 2), 0);
    }

    #[test]
    fn window_counts_match_tick_loop() {
        for tpc in [1u64, 2, 3, 5] {
            for start in 0..12u64 {
                for ticks in 0..40u64 {
                    let expected = (start..start + ticks).filter(|t| t % tpc == 0).count() as u64;
                    assert_eq!(
                        cycles_in_window(start, ticks, tpc),
                        expected,
                        "start {start} ticks {ticks} tpc {tpc}"
                    );
                }
            }
        }
    }
}
