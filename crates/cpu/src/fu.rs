//! Functional-unit pool with per-cycle issue limits.
//!
//! Adders and multipliers are fully pipelined (one new operation per unit
//! per cycle); dividers are unpipelined and stay busy for their full
//! latency, matching the long latencies of Table 2.

use crate::config::FuConfig;
use relsim_trace::OpClass;

/// Pool of functional units shared by the issue stage.
#[derive(Debug, Clone)]
pub struct FuPool {
    cfg: FuConfig,
    /// Per-class issues this cycle: int add, int mul, fp add, fp mul.
    issued_now: [u32; 4],
    int_div_busy_until: u64,
    fp_div_busy_until: u64,
}

impl FuPool {
    /// Build an idle pool.
    pub fn new(cfg: FuConfig) -> Self {
        FuPool {
            cfg,
            issued_now: [0; 4],
            int_div_busy_until: 0,
            fp_div_busy_until: 0,
        }
    }

    /// The pool's configuration.
    pub fn config(&self) -> FuConfig {
        self.cfg
    }

    /// Start a new cycle (resets per-cycle issue counters).
    pub fn new_cycle(&mut self) {
        self.issued_now = [0; 4];
    }

    /// Shift pending unit-busy deadlines forward by `delta` ticks (the
    /// fast-forward time splice); deadlines at or before `start` are
    /// already inert and stay put.
    pub fn shift_time(&mut self, start: u64, delta: u64) {
        if self.int_div_busy_until > start {
            self.int_div_busy_until += delta;
        }
        if self.fp_div_busy_until > start {
            self.fp_div_busy_until += delta;
        }
    }

    /// Make all units idle again (pipeline squash).
    pub fn reset(&mut self) {
        self.issued_now = [0; 4];
        self.int_div_busy_until = 0;
        self.fp_div_busy_until = 0;
    }

    /// Tick until which the (unpipelined) integer divider stays busy.
    /// Used by the event-horizon next-event computation: a divider op at
    /// the head of an in-order pipeline cannot issue before this tick.
    pub fn int_div_busy_at(&self) -> u64 {
        self.int_div_busy_until
    }

    /// Tick until which the (unpipelined) FP divider stays busy.
    pub fn fp_div_busy_at(&self) -> u64 {
        self.fp_div_busy_until
    }

    /// Try to claim a unit for `op` at tick `now`; returns whether issue
    /// may proceed. `ticks_per_cycle` converts divider latencies to ticks.
    pub fn try_issue(&mut self, op: OpClass, now: u64, ticks_per_cycle: u64) -> bool {
        match op {
            // Loads, stores, branches and plain ALU ops share the integer
            // adders (address generation / condition evaluation).
            OpClass::IntAlu | OpClass::Load | OpClass::Store | OpClass::Branch | OpClass::Nop => {
                if self.issued_now[0] < self.cfg.int_add {
                    self.issued_now[0] += 1;
                    true
                } else {
                    false
                }
            }
            OpClass::IntMul => {
                if self.issued_now[1] < self.cfg.int_mul {
                    self.issued_now[1] += 1;
                    true
                } else {
                    false
                }
            }
            OpClass::FpAdd => {
                if self.issued_now[2] < self.cfg.fp_add {
                    self.issued_now[2] += 1;
                    true
                } else {
                    false
                }
            }
            OpClass::FpMul => {
                if self.issued_now[3] < self.cfg.fp_mul {
                    self.issued_now[3] += 1;
                    true
                } else {
                    false
                }
            }
            OpClass::IntDiv => {
                if now >= self.int_div_busy_until {
                    self.int_div_busy_until = now + 18 * ticks_per_cycle;
                    true
                } else {
                    false
                }
            }
            OpClass::FpDiv => {
                if now >= self.fp_div_busy_until {
                    self.fp_div_busy_until = now + 6 * ticks_per_cycle;
                    true
                } else {
                    false
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_add_limited_per_cycle() {
        let mut fu = FuPool::new(FuConfig::big());
        fu.new_cycle();
        assert!(fu.try_issue(OpClass::IntAlu, 0, 1));
        assert!(fu.try_issue(OpClass::Load, 0, 1));
        assert!(fu.try_issue(OpClass::Branch, 0, 1));
        assert!(!fu.try_issue(OpClass::IntAlu, 0, 1), "only 3 int adders");
        fu.new_cycle();
        assert!(
            fu.try_issue(OpClass::IntAlu, 1, 1),
            "next cycle frees slots"
        );
    }

    #[test]
    fn divider_is_unpipelined() {
        let mut fu = FuPool::new(FuConfig::big());
        fu.new_cycle();
        assert!(fu.try_issue(OpClass::IntDiv, 0, 1));
        fu.new_cycle();
        assert!(!fu.try_issue(OpClass::IntDiv, 1, 1), "busy for 18 cycles");
        assert!(!fu.try_issue(OpClass::IntDiv, 17, 1));
        assert!(fu.try_issue(OpClass::IntDiv, 18, 1));
    }

    #[test]
    fn fp_units_independent_of_int() {
        let mut fu = FuPool::new(FuConfig::big());
        fu.new_cycle();
        for _ in 0..3 {
            assert!(fu.try_issue(OpClass::IntAlu, 0, 1));
        }
        assert!(fu.try_issue(OpClass::FpAdd, 0, 1));
        assert!(fu.try_issue(OpClass::FpMul, 0, 1));
        assert!(!fu.try_issue(OpClass::FpAdd, 0, 1), "single fp adder");
    }

    #[test]
    fn frequency_scales_divider_occupancy() {
        let mut fu = FuPool::new(FuConfig::small());
        fu.new_cycle();
        assert!(fu.try_issue(OpClass::FpDiv, 0, 2));
        assert!(!fu.try_issue(OpClass::FpDiv, 11, 2), "6 cycles x 2 ticks");
        assert!(fu.try_issue(OpClass::FpDiv, 12, 2));
    }

    #[test]
    fn busy_at_getters_track_divider_occupancy() {
        let mut fu = FuPool::new(FuConfig::big());
        assert_eq!(fu.int_div_busy_at(), 0);
        assert_eq!(fu.fp_div_busy_at(), 0);
        fu.new_cycle();
        assert!(fu.try_issue(OpClass::IntDiv, 5, 1));
        assert!(fu.try_issue(OpClass::FpDiv, 5, 2));
        assert_eq!(fu.int_div_busy_at(), 5 + 18);
        assert_eq!(fu.fp_div_busy_at(), 5 + 12);
    }

    #[test]
    fn reset_clears_busy_units() {
        let mut fu = FuPool::new(FuConfig::big());
        fu.new_cycle();
        assert!(fu.try_issue(OpClass::IntDiv, 0, 1));
        fu.reset();
        assert!(fu.try_issue(OpClass::IntDiv, 1, 1));
    }
}
