//! A unified wrapper over the two core models.

use crate::config::{CoreConfig, CoreKind};
use crate::cpi::CpiStack;
use crate::events::RetireObserver;
use crate::inorder::InorderCore;
use crate::ooo::OooCore;
use relsim_mem::{CacheStats, PrivateCacheConfig, PrivateCaches, SharedMem};
use relsim_trace::InstrSource;

/// Either core type, behind one interface.
///
/// The multicore `System` in the `relsim` crate holds a `Vec<Core>` and
/// steps every core each tick; dispatching through this enum keeps the hot
/// loop monomorphic. The variants are boxed — the arena-based core structs
/// are several KB each, and one pointer indirection per core step is
/// cheaper than copying that much state through every `Vec<Core>` move.
#[derive(Debug, Clone)]
pub enum Core {
    /// Big out-of-order core.
    Big(Box<OooCore>),
    /// Small in-order core.
    Small(Box<InorderCore>),
}

impl Core {
    /// Build a core of the kind requested by `cfg`.
    pub fn new(cfg: CoreConfig, cache_cfg: PrivateCacheConfig) -> Self {
        match cfg.kind {
            CoreKind::Big => Core::Big(Box::new(OooCore::new(cfg, cache_cfg))),
            CoreKind::Small => Core::Small(Box::new(InorderCore::new(cfg, cache_cfg))),
        }
    }

    /// The core's kind.
    pub fn kind(&self) -> CoreKind {
        match self {
            Core::Big(_) => CoreKind::Big,
            Core::Small(_) => CoreKind::Small,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        match self {
            Core::Big(c) => c.config(),
            Core::Small(c) => c.config(),
        }
    }

    /// Advance one global tick.
    pub fn tick(
        &mut self,
        now: u64,
        src: &mut dyn InstrSource,
        shared: &mut SharedMem,
        obs: &mut dyn RetireObserver,
    ) {
        match self {
            Core::Big(c) => c.tick(now, src, shared, obs),
            Core::Small(c) => c.tick(now, src, shared, obs),
        }
    }

    /// Conservative event horizon: the earliest tick strictly after `now`
    /// at which this core's architectural state can change; see
    /// [`OooCore::next_event`]. Always returns a value `> now`.
    pub fn next_event(&self, now: u64) -> u64 {
        match self {
            Core::Big(c) => c.next_event(now),
            Core::Small(c) => c.next_event(now),
        }
    }

    /// Charge the dead ticks `[from, to)` in closed form; sound only when
    /// `to` does not exceed the horizon reported by [`Self::next_event`].
    /// See [`OooCore::skip_to`].
    pub fn skip_to(&mut self, from: u64, to: u64) {
        match self {
            Core::Big(c) => c.skip_to(from, to),
            Core::Small(c) => c.skip_to(from, to),
        }
    }

    /// Correct-path instructions committed so far.
    pub fn committed(&self) -> u64 {
        match self {
            Core::Big(c) => c.committed(),
            Core::Small(c) => c.committed(),
        }
    }

    /// Core cycles elapsed.
    pub fn cycles(&self) -> u64 {
        match self {
            Core::Big(c) => c.cycles(),
            Core::Small(c) => c.cycles(),
        }
    }

    /// Accumulated CPI stack.
    pub fn cpi_stack(&self) -> &CpiStack {
        match self {
            Core::Big(c) => c.cpi_stack(),
            Core::Small(c) => c.cpi_stack(),
        }
    }

    /// Committed instruction counts per [`relsim_trace::OpClass`] index.
    pub fn class_counts(&self) -> &[u64; 10] {
        match self {
            Core::Big(c) => c.class_counts(),
            Core::Small(c) => c.class_counts(),
        }
    }

    /// Committed loads served by each memory level (L1, L2, L3, Memory).
    pub fn loads_by_level(&self) -> &[u64; 4] {
        match self {
            Core::Big(c) => c.loads_by_level(),
            Core::Small(c) => c.loads_by_level(),
        }
    }

    /// Fast-forward across a tick window without cycle timing; see
    /// [`OooCore::fast_forward`].
    pub fn fast_forward(
        &mut self,
        start: u64,
        ticks: u64,
        instructions: u64,
        template: &CpiStack,
        src: &mut dyn InstrSource,
        shared: &mut SharedMem,
    ) {
        match self {
            Core::Big(c) => c.fast_forward(start, ticks, instructions, template, src, shared),
            Core::Small(c) => c.fast_forward(start, ticks, instructions, template, src, shared),
        }
    }

    /// Squash in-flight state on application migration.
    pub fn reset_pipeline(&mut self) {
        match self {
            Core::Big(c) => c.reset_pipeline(),
            Core::Small(c) => c.reset_pipeline(),
        }
    }

    /// Private-cache statistics (L1I, L1D, L2).
    pub fn cache_stats(&self) -> (CacheStats, CacheStats, CacheStats) {
        match self {
            Core::Big(c) => c.caches().stats(),
            Core::Small(c) => c.caches().stats(),
        }
    }

    /// Mutable access to the private caches.
    pub fn caches_mut(&mut self) -> &mut PrivateCaches {
        match self {
            Core::Big(c) => c.caches_mut(),
            Core::Small(c) => c.caches_mut(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::NullObserver;
    use relsim_mem::SharedMemConfig;
    use relsim_trace::TraceGenerator;

    #[test]
    fn wrapper_dispatches_to_both_kinds() {
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = NullObserver;
        for cfg in [CoreConfig::big(), CoreConfig::small()] {
            let kind = cfg.kind;
            let mut core = Core::new(cfg, PrivateCacheConfig::default());
            assert_eq!(core.kind(), kind);
            let p = relsim_trace::spec_profile("namd").unwrap();
            let mut src = TraceGenerator::new(p, 1, 0);
            for t in 0..5000 {
                core.tick(t, &mut src, &mut shared, &mut obs);
            }
            assert!(core.committed() > 0, "{kind} committed nothing");
            assert!(core.cycles() > 0);
            assert_eq!(core.cpi_stack().total(), core.cycles());
            core.reset_pipeline();
        }
    }

    #[test]
    fn fast_forward_preserves_counter_invariants() {
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = NullObserver;
        for cfg in [CoreConfig::big(), CoreConfig::small()] {
            let mut core = Core::new(cfg, PrivateCacheConfig::default());
            let p = relsim_trace::spec_profile("milc").unwrap();
            let mut src = TraceGenerator::new(p, 7, 0);
            // Detailed interval first, so there is a CPI template.
            for t in 0..4000 {
                core.tick(t, &mut src, &mut shared, &mut obs);
            }
            let cycles_before = core.cycles();
            let committed_before = core.committed();
            let generated_before = src.generated();
            let template = *core.cpi_stack();
            core.fast_forward(4000, 16_000, 9_000, &template, &mut src, &mut shared);
            assert_eq!(core.cycles(), cycles_before + 16_000);
            assert_eq!(core.committed(), committed_before + 9_000);
            assert_eq!(
                core.cpi_stack().total(),
                core.cycles(),
                "CPI total must stay equal to cycles through a fast-forward"
            );
            let total: u64 = core.class_counts().iter().sum();
            assert_eq!(total, core.committed());
            assert!(
                src.generated() >= generated_before + 9_000,
                "trace position must advance through the window"
            );
            // Detailed simulation resumes cleanly after the window.
            for t in 20_000..24_000 {
                core.tick(t, &mut src, &mut shared, &mut obs);
            }
            assert_eq!(core.cpi_stack().total(), core.cycles());
            assert!(core.committed() > committed_before + 9_000);
        }
    }

    #[test]
    fn class_counts_sum_to_committed() {
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = NullObserver;
        let mut core = Core::new(CoreConfig::big(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("bzip2").unwrap();
        let mut src = TraceGenerator::new(p, 5, 0);
        for t in 0..10_000 {
            core.tick(t, &mut src, &mut shared, &mut obs);
        }
        let total: u64 = core.class_counts().iter().sum();
        assert_eq!(total, core.committed());
    }
}
