//! Retirement events — the interface between the core models and the
//! ACE-bit counting machinery.

use relsim_trace::OpClass;

/// Timing record of one committed (correct-path) instruction.
///
/// All timestamps are in global ticks. The ACE counters in `relsim-ace`
/// derive per-structure residency from these, exactly as the paper's
/// hardware counter architecture does at the commit stage (Section 4.2):
///
/// * ROB residency = `commit - dispatch`
/// * issue-queue residency = `issue - dispatch`
/// * load/store-queue residency = `commit - dispatch`
/// * output-register ACE time = `commit - finish`
/// * functional-unit occupancy = `exec_latency`
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetireEvent {
    /// Operation class. NOPs produce events but are never ACE.
    pub op: OpClass,
    /// Tick the instruction was dispatched into the ROB (out-of-order core)
    /// or fetched into the pipeline (in-order core).
    pub dispatch: u64,
    /// Tick the instruction started executing.
    pub issue: u64,
    /// Tick its result became available.
    pub finish: u64,
    /// Tick it committed (out-of-order) or wrote back (in-order).
    pub commit: u64,
    /// Functional-unit occupancy in core cycles.
    pub exec_latency: u64,
    /// Whether the instruction produced a register value.
    pub has_output: bool,
}

impl RetireEvent {
    /// Whether the timestamps are internally consistent
    /// (dispatch ≤ issue ≤ finish ≤ commit).
    pub fn is_well_formed(&self) -> bool {
        self.dispatch <= self.issue && self.issue <= self.finish && self.finish <= self.commit
    }
}

/// Observer of instruction retirement, implemented by ACE counters.
///
/// Core models call [`on_retire`](RetireObserver::on_retire) once per
/// committed correct-path instruction. Wrong-path instructions are squashed
/// before commit and therefore never observed — matching the paper's
/// assumption that wrong-path state is un-ACE.
pub trait RetireObserver {
    /// Called when a correct-path instruction commits.
    fn on_retire(&mut self, ev: &RetireEvent);
}

/// A no-op observer for runs that do not need ACE accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl RetireObserver for NullObserver {
    fn on_retire(&mut self, _ev: &RetireEvent) {}
}

/// An observer that records every event; useful in tests.
#[derive(Debug, Clone, Default)]
pub struct RecordingObserver {
    /// All observed events, in commit order.
    pub events: Vec<RetireEvent>,
}

impl RetireObserver for RecordingObserver {
    fn on_retire(&mut self, ev: &RetireEvent) {
        self.events.push(*ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_formedness() {
        let ev = RetireEvent {
            op: OpClass::IntAlu,
            dispatch: 10,
            issue: 12,
            finish: 13,
            commit: 20,
            exec_latency: 1,
            has_output: true,
        };
        assert!(ev.is_well_formed());
        let bad = RetireEvent { issue: 9, ..ev };
        assert!(!bad.is_well_formed());
    }

    #[test]
    fn recording_observer_collects() {
        let mut rec = RecordingObserver::default();
        let ev = RetireEvent {
            op: OpClass::Load,
            dispatch: 0,
            issue: 1,
            finish: 5,
            commit: 6,
            exec_latency: 1,
            has_output: true,
        };
        rec.on_retire(&ev);
        rec.on_retire(&ev);
        assert_eq!(rec.events.len(), 2);
        NullObserver.on_retire(&ev); // must not panic
    }
}
