//! Cycle-level model of the big out-of-order core.
//!
//! The model implements the mechanisms the paper's reliability results rely
//! on:
//!
//! * a 128-entry ROB whose head blocks on long-latency loads, filling the
//!   back-end with ACE state (the high-AVF mechanism for memory-streaming
//!   codes such as milc);
//! * branch mispredictions that keep fetching down the **wrong path** until
//!   the branch resolves; wrong-path instructions occupy the ROB, issue
//!   queue, load/store queues and registers but are squashed before commit
//!   and therefore never become ACE (the low-AVF mechanism for mcf and
//!   libquantum);
//! * front-end stalls (I-cache misses, post-misprediction refill) that
//!   drain the pipeline of vulnerable state;
//! * finite issue queue, load/store queues, physical register files and
//!   functional units.
//!
//! Instruction scheduling is event-driven (producers wake their consumers),
//! so the per-cycle cost is proportional to pipeline width, not window size.
//!
//! # Data-oriented layout
//!
//! The ROB is a flat struct-of-arrays arena addressed by `seq & (cap - 1)`
//! — live sequence numbers are contiguous, so each maps to a distinct slot
//! with no indirection. Fields read every cycle (flags, op class, finish
//! time) live in their own dense arrays; the full `Instr` payload and
//! retire timestamps are cold arrays touched only at issue/commit. The
//! ready set is a 256-bit mask scanned oldest-first with `trailing_zeros`
//! ([`crate::arena::ReadyMask`]), and completion tracking is a calendar
//! wheel ([`crate::wheel::EventWheel`]) whose per-cycle drain touches only
//! events finishing *now*. DESIGN.md §16 gives the layout and the
//! byte-equivalence argument against the previous `VecDeque`/`BinaryHeap`
//! implementation.

use crate::arena::{ReadyMask, Ring};
use crate::config::{CoreConfig, CoreKind};
use crate::cpi::{CpiStack, StallCause};
use crate::events::{RetireEvent, RetireObserver};
use crate::fu::FuPool;
use crate::wheel::{EventWheel, WheelEvent};
use relsim_mem::{MemLevel, PrivateCacheConfig, PrivateCaches, SharedMem};
use relsim_obs::span::{self, Stage};
use relsim_trace::{Instr, InstrSource, OpClass};

const CP_RING: usize = 256;

// ROB entry state, packed into one byte per slot.
const F_ISSUED: u8 = 1 << 0;
const F_DONE: u8 = 1 << 1;
const F_WRONG: u8 = 1 << 2;
/// The instruction is a mispredicted branch (cached from `Instr::mispredict`
/// so completion handling never touches the cold payload array).
const F_MISP: u8 = 1 << 3;

#[derive(Debug, Clone, Copy)]
struct Fetched {
    instr: Instr,
    wrong_path: bool,
    /// Tick at which the instruction clears the front-end pipeline and may
    /// dispatch.
    avail: u64,
}

/// The big out-of-order core (Table 2 configuration by default).
///
/// # Examples
///
/// ```
/// use relsim_cpu::{CoreConfig, NullObserver, OooCore};
/// use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
/// use relsim_trace::{spec_profile, TraceGenerator};
///
/// let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
/// let mut shared = SharedMem::new(SharedMemConfig::default());
/// let mut src = TraceGenerator::new(spec_profile("hmmer").unwrap(), 1, 0);
/// let mut obs = NullObserver;
/// for tick in 0..10_000 {
///     core.tick(tick, &mut src, &mut shared, &mut obs);
/// }
/// assert!(core.committed() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct OooCore {
    cfg: CoreConfig,
    caches: PrivateCaches,

    // --- ROB arena (struct-of-arrays; slot = seq & rob_mask) ---
    //
    // Live entries are the contiguous window [head_seq, head_seq +
    // rob_len); the invariant next_seq == head_seq + rob_len holds at all
    // times, so slot addressing never collides while rob_len <= capacity.
    /// Slot mask: `rob_size.next_power_of_two() - 1`.
    rob_mask: u64,
    /// Sequence number of the ROB head (oldest live entry).
    head_seq: u64,
    /// Live entry count.
    rob_len: usize,
    next_seq: u64,
    // Hot per-slot fields, read every cycle.
    rs_flags: Box<[u8]>,
    rs_pending: Box<[u8]>,
    rs_epoch: Box<[u32]>,
    rs_op: Box<[OpClass]>,
    rs_mem_level: Box<[Option<MemLevel>]>,
    rs_finish: Box<[u64]>,
    // Wakeup lists: consumers waiting on each slot's result (inline to
    // avoid per-entry heap allocation; overflow spills to `waiter_spill`).
    rs_waiters: Box<[[(u64, u32); 4]]>,
    rs_nwait: Box<[u8]>,
    // Cold per-slot fields, touched at issue/commit/flush only.
    rs_instr: Box<[Instr]>,
    rs_dispatch: Box<[u64]>,
    rs_issue: Box<[u64]>,

    /// Ready-to-issue slots as a bitmask, scanned oldest-first.
    ready: ReadyMask,
    /// Pending completion events, bucketed by tick.
    finish_events: EventWheel,
    /// Reused drain buffer for `finish_events` (no per-tick allocation).
    finish_scratch: Vec<WheelEvent>,
    /// Dead-tick cache: cycle boundaries strictly before this tick are
    /// known-dead (see [`Self::next_event`]), so [`Self::tick`] takes a
    /// fast path that only bumps the cycle counter and charges one CPI
    /// stall. Set after a tick that did no work; 0 = unknown.
    quiet_until: u64,
    iq_used: u32,
    lq_used: u32,
    sq_used: u32,
    int_regs_used: u32,
    fp_regs_used: u32,
    fu: FuPool,
    /// Current flush generation.
    epoch: u32,
    /// Overflow waiter registrations as (producer_seq, consumer_seq,
    /// consumer_epoch); normally empty.
    waiter_spill: Vec<(u64, u64, u32)>,

    cp_ring: [u64; CP_RING],
    cp_count: u64,

    fetch_queue: Ring<Fetched>,
    in_wrong_path: bool,
    fetch_stall_until: u64,
    fetch_stall_icache: bool,
    branch_refill_until: u64,
    /// Outstanding misprediction bubble cycles not yet charged to the
    /// branch CPI component. A flush creates a front-end bubble that only
    /// surfaces once the ROB drains; this debt routes those downstream
    /// zero-commit cycles to the branch component (a light-weight stand-in
    /// for interval analysis).
    branch_debt: u64,
    pending_fetch: Option<Instr>,

    cycles: u64,
    committed: u64,
    wrong_path_dispatched: u64,
    icache_misses: u64,
    branch_mispredicts: u64,
    cpi: CpiStack,
    class_counts: [u64; 10],
    loads_by_level: [u64; 4],
}

impl OooCore {
    /// Build an idle core with cold caches.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is not an out-of-order configuration
    /// (`kind == CoreKind::Big`, `rob_size > 0`), or if the ROB exceeds
    /// the 256 entries the ready mask can address.
    pub fn new(cfg: CoreConfig, cache_cfg: PrivateCacheConfig) -> Self {
        assert_eq!(
            cfg.kind,
            CoreKind::Big,
            "OooCore requires a big-core config"
        );
        assert!(cfg.rob_size > 0, "out-of-order core needs a ROB");
        let cap = (cfg.rob_size as usize).next_power_of_two();
        assert!(
            cap <= crate::arena::MASK_BITS,
            "ROB size {} exceeds ready-mask capacity",
            cfg.rob_size
        );
        let caches = PrivateCaches::new(cache_cfg, cfg.ticks_per_cycle);
        let fq_capacity = (cfg.width as usize) * (cfg.frontend_delay() as usize + 1);
        OooCore {
            fu: FuPool::new(cfg.fu),
            caches,
            rob_mask: cap as u64 - 1,
            head_seq: 0,
            rob_len: 0,
            next_seq: 0,
            rs_flags: vec![0; cap].into_boxed_slice(),
            rs_pending: vec![0; cap].into_boxed_slice(),
            rs_epoch: vec![0; cap].into_boxed_slice(),
            rs_op: vec![OpClass::Nop; cap].into_boxed_slice(),
            rs_mem_level: vec![None; cap].into_boxed_slice(),
            rs_finish: vec![0; cap].into_boxed_slice(),
            rs_waiters: vec![[(0, 0); 4]; cap].into_boxed_slice(),
            rs_nwait: vec![0; cap].into_boxed_slice(),
            rs_instr: vec![Instr::nop(); cap].into_boxed_slice(),
            rs_dispatch: vec![0; cap].into_boxed_slice(),
            rs_issue: vec![0; cap].into_boxed_slice(),
            ready: ReadyMask::new(),
            finish_events: EventWheel::new(),
            finish_scratch: Vec::with_capacity(64),
            quiet_until: 0,
            iq_used: 0,
            lq_used: 0,
            sq_used: 0,
            int_regs_used: 0,
            fp_regs_used: 0,
            epoch: 0,
            waiter_spill: Vec::with_capacity(16),
            cp_ring: [u64::MAX; CP_RING],
            cp_count: 0,
            fetch_queue: Ring::with_capacity(fq_capacity),
            in_wrong_path: false,
            fetch_stall_until: 0,
            fetch_stall_icache: false,
            branch_refill_until: 0,
            branch_debt: 0,
            pending_fetch: None,
            cycles: 0,
            committed: 0,
            wrong_path_dispatched: 0,
            icache_misses: 0,
            branch_mispredicts: 0,
            cpi: CpiStack::default(),
            class_counts: [0; 10],
            loads_by_level: [0; 4],
            cfg,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Correct-path instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Core cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Accumulated CPI stack.
    pub fn cpi_stack(&self) -> &CpiStack {
        &self.cpi
    }

    /// Committed instruction counts per [`OpClass`] index.
    pub fn class_counts(&self) -> &[u64; 10] {
        &self.class_counts
    }

    /// Committed loads served by each memory level (L1, L2, L3, Memory).
    pub fn loads_by_level(&self) -> &[u64; 4] {
        &self.loads_by_level
    }

    /// Wrong-path instructions dispatched into the back-end so far.
    pub fn wrong_path_dispatched(&self) -> u64 {
        self.wrong_path_dispatched
    }

    /// Mispredicted branches committed so far.
    pub fn branch_mispredicts(&self) -> u64 {
        self.branch_mispredicts
    }

    /// I-cache miss stalls taken so far.
    pub fn icache_misses(&self) -> u64 {
        self.icache_misses
    }

    /// The core's private caches.
    pub fn caches(&self) -> &PrivateCaches {
        &self.caches
    }

    /// Mutable access to the private caches (e.g. to reset statistics).
    pub fn caches_mut(&mut self) -> &mut PrivateCaches {
        &mut self.caches
    }

    /// Squash all in-flight state (used when a different application is
    /// migrated onto this core). Cache contents are deliberately kept: the
    /// incoming application starts with a cold-for-it cache, as on real
    /// hardware.
    pub fn reset_pipeline(&mut self) {
        self.quiet_until = 0;
        self.rob_len = 0;
        self.head_seq = self.next_seq;
        self.ready.reset();
        self.waiter_spill.clear();
        self.finish_events.clear();
        self.epoch = self.epoch.wrapping_add(1);
        self.fetch_queue.clear();
        self.pending_fetch = None;
        self.iq_used = 0;
        self.lq_used = 0;
        self.sq_used = 0;
        self.int_regs_used = 0;
        self.fp_regs_used = 0;
        self.in_wrong_path = false;
        self.fetch_stall_until = 0;
        self.branch_refill_until = 0;
        self.branch_debt = 0;
        self.fetch_stall_icache = false;
        self.cp_ring = [u64::MAX; CP_RING];
        self.cp_count = 0;
        self.fu.reset();
    }

    /// O(1) ROB lookup by seq: live seqs are exactly the contiguous window
    /// `[head_seq, head_seq + rob_len)`, and each maps to slot
    /// `seq & rob_mask`.
    #[inline]
    fn rob_slot(&self, seq: u64) -> Option<usize> {
        if seq.wrapping_sub(self.head_seq) < self.rob_len as u64 {
            Some((seq & self.rob_mask) as usize)
        } else {
            None
        }
    }

    /// Like [`rob_slot`](Self::rob_slot) but also validates the entry's
    /// flush generation, for references that may predate a flush.
    #[inline]
    fn rob_slot_epoch(&self, seq: u64, epoch: u32) -> Option<usize> {
        let s = self.rob_slot(seq)?;
        (self.rs_epoch[s] == epoch).then_some(s)
    }

    /// Decrement a consumer's pending-source count; set its ready bit when
    /// it reaches zero.
    fn wake(&mut self, consumer: u64, epoch: u32) {
        if let Some(s) = self.rob_slot_epoch(consumer, epoch) {
            let p = self.rs_pending[s];
            if p > 0 {
                self.rs_pending[s] = p - 1;
                if p == 1 && self.rs_flags[s] & F_ISSUED == 0 {
                    self.ready.set(s);
                }
            }
        }
    }

    /// Resolve a dependency for the instruction about to be dispatched.
    /// Returns the ROB slot and seq of the producer if its value is still
    /// being computed; `None` means the operand is already available.
    #[inline]
    fn unresolved_producer(&self, dist: u16) -> Option<(usize, u64)> {
        let d = dist as u64;
        if d == 0 || d > self.cp_count || d > CP_RING as u64 {
            return None; // out of window: treat as ready
        }
        let idx = ((self.cp_count - d) % CP_RING as u64) as usize;
        let producer_seq = self.cp_ring[idx];
        if producer_seq == u64::MAX {
            return None;
        }
        match self.rob_slot(producer_seq) {
            Some(s) if self.rs_flags[s] & F_DONE == 0 => Some((s, producer_seq)),
            _ => None, // committed or already finished
        }
    }

    /// Returns whether any event (live or stale) was drained.
    fn process_finish_events(&mut self, now: u64, prof: bool) -> bool {
        let mut due = std::mem::take(&mut self.finish_scratch);
        self.finish_events.drain_due(now, &mut due);
        let any = !due.is_empty();
        // Guards run at process time against current state, exactly as the
        // old heap loop's did: an earlier event's flush makes later events
        // in the same batch fail the epoch check, in the same order
        // ((tick, seq, epoch) ascending = heap pop order). Processing
        // never schedules new events, so the batch is complete.
        for &(tick, seq, epoch) in &due {
            let Some(s) = self.rob_slot_epoch(seq, epoch) else {
                continue;
            };
            let flags = self.rs_flags[s];
            if flags & F_ISSUED == 0 || flags & F_DONE != 0 || self.rs_finish[s] != tick {
                continue;
            }
            self.rs_flags[s] = flags | F_DONE;
            let n = self.rs_nwait[s] as usize;
            let waiters = self.rs_waiters[s];
            self.rs_nwait[s] = 0;
            let was_mispredict = flags & F_MISP != 0 && flags & F_WRONG == 0;
            span::scoped(prof, Stage::Wakeup, || {
                for &(w, we) in &waiters[..n] {
                    self.wake(w, we);
                }
                if !self.waiter_spill.is_empty() {
                    let mut i = 0;
                    while i < self.waiter_spill.len() {
                        if self.waiter_spill[i].0 == seq {
                            let (_, w, we) = self.waiter_spill.swap_remove(i);
                            self.wake(w, we);
                        } else {
                            i += 1;
                        }
                    }
                }
            });
            if was_mispredict {
                self.flush_after(seq, now);
            }
        }
        due.clear();
        self.finish_scratch = due;
        any
    }

    /// Squash everything younger than `seq` (wrong-path recovery).
    fn flush_after(&mut self, seq: u64, now: u64) {
        while self.rob_len > 0 {
            let back_seq = self.head_seq + self.rob_len as u64 - 1;
            if back_seq <= seq {
                break;
            }
            let s = (back_seq & self.rob_mask) as usize;
            self.rob_len -= 1;
            self.ready.clear(s);
            let flags = self.rs_flags[s];
            if flags & F_ISSUED == 0 {
                self.iq_used -= 1;
            }
            let op = self.rs_op[s];
            match op {
                OpClass::Load => self.lq_used -= 1,
                OpClass::Store => self.sq_used -= 1,
                _ => {}
            }
            if self.rs_instr[s].has_output() {
                if op.is_fp() {
                    self.fp_regs_used -= 1;
                } else {
                    self.int_regs_used -= 1;
                }
            }
        }
        if self.rob_len == 0 {
            self.head_seq = seq + 1;
        }
        self.next_seq = seq + 1;
        self.epoch = self.epoch.wrapping_add(1);
        self.waiter_spill.retain(|&(p, c, _)| p <= seq && c <= seq);
        self.fetch_queue.clear();
        self.pending_fetch = None;
        self.in_wrong_path = false;
        self.fetch_stall_icache = false;
        // Redirect: fetch restarts next cycle; the refill delay itself comes
        // from the front-end latency of newly fetched instructions.
        let tpc = self.cfg.ticks_per_cycle;
        self.fetch_stall_until = now + tpc;
        self.branch_refill_until = now + (self.cfg.frontend_delay() + 2) * tpc;
        self.branch_debt = (self.branch_debt + self.cfg.frontend_delay() + 2).min(64);
    }

    fn commit(&mut self, now: u64, shared: &mut SharedMem, obs: &mut dyn RetireObserver) -> u32 {
        let mut n = 0;
        while n < self.cfg.width {
            if self.rob_len == 0 {
                break;
            }
            let s = (self.head_seq & self.rob_mask) as usize;
            let flags = self.rs_flags[s];
            if flags & F_DONE == 0 || self.rs_finish[s] > now {
                break;
            }
            debug_assert!(
                flags & F_WRONG == 0,
                "wrong-path instruction reached commit"
            );
            self.head_seq += 1;
            self.rob_len -= 1;
            let op = self.rs_op[s];
            let instr = self.rs_instr[s];
            match op {
                OpClass::Load => self.lq_used -= 1,
                OpClass::Store => {
                    self.sq_used -= 1;
                    // The store leaves the SQ and drains to the memory
                    // system; nothing waits on it.
                    let _ = self.caches.access_data(instr.addr, true, now, shared);
                }
                _ => {}
            }
            if instr.has_output() {
                if op.is_fp() {
                    self.fp_regs_used -= 1;
                } else {
                    self.int_regs_used -= 1;
                }
            }
            self.committed += 1;
            self.class_counts[op.index()] += 1;
            if op == OpClass::Load {
                let li = match self.rs_mem_level[s] {
                    Some(MemLevel::L1) => 0,
                    Some(MemLevel::L2) => 1,
                    Some(MemLevel::L3) => 2,
                    Some(MemLevel::Memory) => 3,
                    None => 0,
                };
                self.loads_by_level[li] += 1;
            }
            if op == OpClass::Branch && instr.mispredict {
                self.branch_mispredicts += 1;
            }
            obs.on_retire(&RetireEvent {
                op,
                dispatch: self.rs_dispatch[s],
                issue: self.rs_issue[s],
                finish: self.rs_finish[s],
                commit: now,
                exec_latency: instr.exec_latency(),
                has_output: instr.has_output(),
            });
            n += 1;
        }
        n
    }

    fn issue(&mut self, now: u64, shared: &mut SharedMem) {
        if !self.ready.any() {
            // Nothing to select. The FU pool's per-cycle counters are only
            // ever read through `try_issue` below, so skipping `new_cycle`
            // here is unobservable.
            return;
        }
        self.fu.new_cycle();
        let mut issued = 0;
        // Examine the oldest few ready instructions only; entries skipped
        // due to busy units keep their ready bit for later cycles.
        let mut candidates = [0u64; 8];
        let n_cand = self.ready.collect_oldest(
            self.head_seq,
            self.rob_mask,
            candidates.len(),
            &mut candidates,
        );
        let tpc = self.cfg.ticks_per_cycle;
        for &seq in &candidates[..n_cand] {
            if issued >= self.cfg.width {
                break;
            }
            let Some(s) = self.rob_slot(seq) else {
                self.ready.clear((seq & self.rob_mask) as usize);
                continue;
            };
            let op = self.rs_op[s];
            if !self.fu.try_issue(op, now, tpc) {
                continue; // unit busy; stays ready for a later cycle
            }
            self.ready.clear(s);
            issued += 1;
            self.iq_used -= 1;
            let (finish_at, mem_level) = match op {
                OpClass::Load => {
                    let addr = self.rs_instr[s].addr;
                    // One cycle of address generation, then the cache walk.
                    let o = self.caches.access_data(addr, false, now + tpc, shared);
                    (o.complete_at, Some(o.level))
                }
                OpClass::Store => (now + tpc, None),
                _ => (now + self.rs_instr[s].exec_latency() * tpc, None),
            };
            self.rs_flags[s] |= F_ISSUED;
            self.rs_issue[s] = now;
            self.rs_finish[s] = finish_at;
            self.rs_mem_level[s] = mem_level;
            // The event carries the entry's own epoch: entries that survive
            // a later flush must still receive their completion.
            self.finish_events.push(finish_at, seq, self.rs_epoch[s]);
        }
    }

    /// Returns the number of instructions dispatched.
    fn dispatch(&mut self, now: u64) -> u32 {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(f) = self.fetch_queue.front() else {
                break;
            };
            if f.avail > now {
                break;
            }
            if self.rob_len >= self.cfg.rob_size as usize {
                break;
            }
            let instr = f.instr;
            let wrong_path = f.wrong_path;
            let is_nop = instr.op == OpClass::Nop;
            if !is_nop && self.iq_used >= self.cfg.iq_size {
                break;
            }
            match instr.op {
                OpClass::Load if self.lq_used >= self.cfg.lq_size => break,
                OpClass::Store if self.sq_used >= self.cfg.sq_size => break,
                _ => {}
            }
            if instr.has_output() {
                if instr.op.is_fp() {
                    if self.fp_regs_used >= self.cfg.rename_fp_regs() {
                        break;
                    }
                } else if self.int_regs_used >= self.cfg.rename_int_regs() {
                    break;
                }
            }

            // All resources available: dispatch.
            self.fetch_queue.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            match instr.op {
                OpClass::Load => self.lq_used += 1,
                OpClass::Store => self.sq_used += 1,
                _ => {}
            }
            if instr.has_output() {
                if instr.op.is_fp() {
                    self.fp_regs_used += 1;
                } else {
                    self.int_regs_used += 1;
                }
            }

            // Resolve producers before installing the new entry; register
            // this instruction as a waiter on each in-flight producer.
            let mut pending = 0u8;
            for dist in [instr.src1, instr.src2] {
                let Some(d) = dist else { continue };
                if let Some((pi, pseq)) = self.unresolved_producer(d) {
                    let epoch = self.epoch;
                    let nw = self.rs_nwait[pi] as usize;
                    if nw < self.rs_waiters[pi].len() {
                        self.rs_waiters[pi][nw] = (seq, epoch);
                        self.rs_nwait[pi] += 1;
                    } else {
                        self.waiter_spill.push((pseq, seq, epoch));
                    }
                    pending += 1;
                }
            }

            if !wrong_path {
                let idx = (self.cp_count % CP_RING as u64) as usize;
                self.cp_ring[idx] = seq;
                self.cp_count += 1;
            } else {
                self.wrong_path_dispatched += 1;
            }

            // Install the entry in its arena slot. The slot is free:
            // rob_len < rob_size <= capacity, and live seqs are contiguous.
            let s = (seq & self.rob_mask) as usize;
            let mut flags = 0u8;
            if is_nop {
                // NOPs bypass the issue queue and complete immediately.
                flags |= F_ISSUED | F_DONE;
            }
            if wrong_path {
                flags |= F_WRONG;
            }
            if instr.mispredict {
                flags |= F_MISP;
            }
            self.rs_flags[s] = flags;
            self.rs_pending[s] = pending;
            self.rs_epoch[s] = self.epoch;
            self.rs_op[s] = instr.op;
            self.rs_mem_level[s] = None;
            self.rs_finish[s] = if is_nop { now } else { u64::MAX };
            self.rs_nwait[s] = 0;
            self.rs_instr[s] = instr;
            self.rs_dispatch[s] = now;
            self.rs_issue[s] = now;
            self.rob_len += 1;
            debug_assert_eq!(self.next_seq, self.head_seq + self.rob_len as u64);
            if !is_nop {
                self.iq_used += 1;
                if pending == 0 {
                    self.ready.set(s);
                }
            }
            n += 1;
        }
        n
    }

    /// Returns whether fetch changed state (pushed instructions or took an
    /// I-cache stall). The unconditional `fetch_stall_icache` clear below
    /// does not count: every reader of that flag is guarded by
    /// `now < fetch_stall_until` (or clamps against it), so a stale `true`
    /// past the deadline is unobservable — which lets the dead-tick fast
    /// path in [`Self::tick`] skip this stage entirely.
    fn fetch(&mut self, now: u64, src: &mut dyn InstrSource) -> bool {
        if now < self.fetch_stall_until {
            return false;
        }
        self.fetch_stall_icache = false;
        let tpc = self.cfg.ticks_per_cycle;
        let fe_delay = self.cfg.frontend_delay() * tpc;
        let mut n = 0;
        while n < self.cfg.width && !self.fetch_queue.is_full() {
            let instr = if self.in_wrong_path {
                src.wrong_path_instr()
            } else if let Some(p) = self.pending_fetch.take() {
                p
            } else {
                let i = src.next_instr();
                if i.icache_miss {
                    self.icache_misses += 1;
                    self.pending_fetch = Some(Instr {
                        icache_miss: false,
                        ..i
                    });
                    self.fetch_stall_until = now + self.cfg.icache_penalty * tpc;
                    self.fetch_stall_icache = true;
                    return true;
                }
                i
            };
            let wrong_path = self.in_wrong_path;
            let is_mispredict = !wrong_path && instr.op == OpClass::Branch && instr.mispredict;
            self.fetch_queue.push_back(Fetched {
                instr,
                wrong_path,
                avail: now + fe_delay,
            });
            n += 1;
            if is_mispredict {
                self.in_wrong_path = true;
                break; // remaining fetch slots this cycle are lost
            }
        }
        n > 0
    }

    fn account_cpi(&mut self, commits: u32, now: u64) {
        if commits > 0 {
            self.cpi.commit_cycle();
            return;
        }
        let cause = if self.rob_len > 0 {
            let s = (self.head_seq & self.rob_mask) as usize;
            let flags = self.rs_flags[s];
            if flags & F_ISSUED != 0 && flags & F_DONE == 0 && self.rs_op[s] == OpClass::Load {
                // A memory-blocked ROB head dominates whatever else is
                // going on (including concurrent wrong-path fetch).
                match self.rs_mem_level[s] {
                    Some(MemLevel::Memory) => StallCause::Memory,
                    Some(MemLevel::L3) => StallCause::Llc,
                    _ => StallCause::Resource,
                }
            } else if self.in_wrong_path || now < self.branch_refill_until {
                // The back-end is starved or full of junk because fetch is
                // on (or recovering from) the wrong path.
                StallCause::Branch
            } else if self.branch_debt > 0 {
                self.branch_debt -= 1;
                StallCause::Branch
            } else {
                StallCause::Resource
            }
        } else if self.fetch_stall_icache && now < self.fetch_stall_until {
            StallCause::ICache
        } else if self.in_wrong_path || now < self.branch_refill_until {
            StallCause::Branch
        } else {
            StallCause::Resource
        };
        self.cpi.stall_cycle(cause);
    }

    /// Would the dispatch stage accept `instr` right now, resource-wise?
    /// Mirrors the gate order of [`Self::dispatch`] exactly (ROB, issue
    /// queue, LQ/SQ, rename registers), minus the `avail` time gate.
    fn can_dispatch(&self, instr: &Instr) -> bool {
        if self.rob_len >= self.cfg.rob_size as usize {
            return false;
        }
        let is_nop = instr.op == OpClass::Nop;
        if !is_nop && self.iq_used >= self.cfg.iq_size {
            return false;
        }
        match instr.op {
            OpClass::Load if self.lq_used >= self.cfg.lq_size => return false,
            OpClass::Store if self.sq_used >= self.cfg.sq_size => return false,
            _ => {}
        }
        if instr.has_output() {
            if instr.op.is_fp() {
                if self.fp_regs_used >= self.cfg.rename_fp_regs() {
                    return false;
                }
            } else if self.int_regs_used >= self.cfg.rename_int_regs() {
                return false;
            }
        }
        true
    }

    /// Conservative event horizon: the earliest tick strictly after `now`
    /// at which this core's architectural state can change. Every tick in
    /// `(now, next_event(now))` is *dead* — [`Self::tick`] there would only
    /// bump the cycle counter and charge one CPI-stack stall — so the
    /// caller may replace those ticks with one [`Self::skip_to`] call and
    /// get bit-identical results.
    ///
    /// The horizon is the min over: the next finish event (covers commit,
    /// wakeups, flushes and every resource release), the front of the
    /// fetch queue clearing the front-end (when dispatch resources are
    /// free), and the end of a fetch stall (when the fetch queue has
    /// room). When work is possible at the very next cycle boundary —
    /// fetch can run, the ROB head is committable, or ready instructions
    /// await issue — the boundary itself is returned and nothing is
    /// skipped. Returns are conservative (never later than the true next
    /// state change) and always `> now`.
    pub fn next_event(&self, now: u64) -> u64 {
        let tpc = self.cfg.ticks_per_cycle;
        let nb = (now / tpc + 1) * tpc;
        // Fetch can make progress at the next boundary.
        if !self.fetch_queue.is_full() && nb >= self.fetch_stall_until {
            return nb;
        }
        // Commit pending (done implies finish_at <= now, so the head
        // retires at the next boundary).
        if self.rob_len > 0 {
            let s = (self.head_seq & self.rob_mask) as usize;
            if self.rs_flags[s] & F_DONE != 0 {
                return nb;
            }
        }
        // Issue may proceed (conservatively: a busy divider could still
        // block, but a no-skip answer is always sound).
        if self.ready.any() {
            return nb;
        }
        // `earliest()` is the exact minimum over resident events — the
        // same value the old heap's peek returned, including events whose
        // entries were since flushed (stale-epoch events stay resident
        // until drained, exactly like stale heap entries).
        let mut h = self.finish_events.earliest();
        if let Some(f) = self.fetch_queue.front() {
            // Dispatch is gated on `avail` before resources, so when the
            // resources are free the front clears at `avail`; when they are
            // not, only a commit or flush (both finish-event-driven, so
            // already bounded above) can unblock it.
            if self.can_dispatch(&f.instr) {
                h = h.min(f.avail);
            }
        }
        if !self.fetch_queue.is_full() {
            h = h.min(self.fetch_stall_until);
        }
        if h == u64::MAX {
            return nb; // nothing in flight at all: never skip blind
        }
        h.max(nb)
    }

    /// Charge the dead ticks `[from, to)` in closed form: advance the
    /// cycle counter and CPI stack exactly as per-tick simulation would
    /// have, without simulating the ticks. Sound only when every tick in
    /// the range is dead, i.e. `to <= next_event(from - 1)` (see
    /// [`Self::next_event`]); the stall cause per skipped cycle is then a
    /// pure function of current state plus the cycle's position relative
    /// to the `branch_refill_until`/`fetch_stall_until` deadlines, which
    /// is what the arithmetic below replicates.
    pub fn skip_to(&mut self, from: u64, to: u64) {
        let tpc = self.cfg.ticks_per_cycle;
        // Cycle boundaries t = k*tpc in [from, to): k in [a, b).
        let a = from.div_ceil(tpc);
        let b = to.div_ceil(tpc);
        if b <= a {
            return;
        }
        let n = b - a;
        self.cycles += n;
        if self.rob_len > 0 {
            let s = (self.head_seq & self.rob_mask) as usize;
            let flags = self.rs_flags[s];
            if flags & F_ISSUED != 0 && flags & F_DONE == 0 && self.rs_op[s] == OpClass::Load {
                // Memory-blocked ROB head dominates every skipped cycle.
                let cause = match self.rs_mem_level[s] {
                    Some(MemLevel::Memory) => StallCause::Memory,
                    Some(MemLevel::L3) => StallCause::Llc,
                    _ => StallCause::Resource,
                };
                self.cpi.stall_cycles(cause, n);
            } else if self.in_wrong_path {
                self.cpi.stall_cycles(StallCause::Branch, n);
            } else {
                // Boundaries before branch_refill_until charge Branch;
                // the rest consume branch debt first, then Resource.
                let k_bru = self.branch_refill_until.div_ceil(tpc).clamp(a, b);
                let n_refill = k_bru - a;
                let rest = n - n_refill;
                let n_debt = rest.min(self.branch_debt);
                self.branch_debt -= n_debt;
                self.cpi.stall_cycles(StallCause::Branch, n_refill + n_debt);
                self.cpi.stall_cycles(StallCause::Resource, rest - n_debt);
            }
        } else {
            // Empty ROB: an I-cache stall window charges ICache, then the
            // wrong-path/refill window charges Branch, then Resource (the
            // per-tick empty path consumes no branch debt).
            let k_fsu = if self.fetch_stall_icache {
                self.fetch_stall_until.div_ceil(tpc).clamp(a, b)
            } else {
                a
            };
            self.cpi.stall_cycles(StallCause::ICache, k_fsu - a);
            if self.in_wrong_path {
                self.cpi.stall_cycles(StallCause::Branch, b - k_fsu);
            } else {
                let k_bru = self.branch_refill_until.div_ceil(tpc).clamp(k_fsu, b);
                self.cpi.stall_cycles(StallCause::Branch, k_bru - k_fsu);
                self.cpi.stall_cycles(StallCause::Resource, b - k_bru);
            }
        }
    }

    /// Advance the core by one global tick.
    ///
    /// The core only performs work on its own cycle boundaries (every
    /// `ticks_per_cycle` ticks); other ticks return immediately, which is
    /// how frequency scaling (Section 6.4 of the paper) is modeled.
    pub fn tick(
        &mut self,
        now: u64,
        src: &mut dyn InstrSource,
        shared: &mut SharedMem,
        obs: &mut dyn RetireObserver,
    ) {
        if !now.is_multiple_of(self.cfg.ticks_per_cycle) {
            return;
        }
        self.cycles += 1;
        // One global-flag read per cycle; every stage span below branches
        // on the local bool, keeping the disabled path near-free.
        let prof = span::enabled();
        // Dead-tick fast path: a prior workless tick proved (via
        // `next_event`) that every boundary before `quiet_until` can only
        // bump the cycle counter and charge one stall — exactly what
        // `account_cpi(0, now)` does. Disabled while profiling so the
        // span-per-stage record stays identical.
        if now < self.quiet_until && !prof {
            self.account_cpi(0, now);
            return;
        }
        let drained = span::scoped(prof, Stage::FuExecute, || {
            self.process_finish_events(now, prof)
        });
        let commits = span::scoped(prof, Stage::Commit, || self.commit(now, shared, obs));
        // Ready entries mean select/issue ran (`next_event` would return
        // the next boundary anyway, so there is nothing to cache).
        let had_ready = self.ready.any();
        span::scoped(prof, Stage::SelectIssue, || self.issue(now, shared));
        let dispatched = span::scoped(prof, Stage::RenameDispatch, || self.dispatch(now));
        let fetched = span::scoped(prof, Stage::Fetch, || self.fetch(now, src));
        self.quiet_until = if !drained && commits == 0 && !had_ready && dispatched == 0 && !fetched
        {
            self.next_event(now)
        } else {
            0
        };
        span::scoped(prof, Stage::CpiAccount, || self.account_cpi(commits, now));
    }

    /// Shift every in-flight absolute timestamp forward by `delta` ticks,
    /// as if the fast-forward window had been spliced in before the
    /// in-flight instructions' lifetimes. Detailed intervals then behave
    /// like one concatenated simulation: outstanding memory-level
    /// parallelism survives the window instead of completing instantly,
    /// and residencies observed at retire (ACE accounting) do not absorb
    /// fast-forwarded time. Historical timestamps (dispatch/issue/finish)
    /// shift unconditionally so retire-time spans stay delta-free; gating
    /// deadlines already in the past stay inert.
    fn shift_time(&mut self, start: u64, delta: u64) {
        self.quiet_until = 0;
        for i in 0..self.rob_len as u64 {
            let s = ((self.head_seq + i) & self.rob_mask) as usize;
            self.rs_dispatch[s] += delta;
            self.rs_issue[s] += delta;
            if self.rs_finish[s] != u64::MAX {
                self.rs_finish[s] += delta;
            }
        }
        let mut scratch = std::mem::take(&mut self.finish_scratch);
        self.finish_events.shift(delta, &mut scratch);
        self.finish_scratch = scratch;
        for f in self.fetch_queue.iter_mut() {
            if f.avail > start {
                f.avail += delta;
            }
        }
        if self.fetch_stall_until > start {
            self.fetch_stall_until += delta;
        }
        if self.branch_refill_until > start {
            self.branch_refill_until += delta;
        }
        self.fu.shift_time(start, delta);
    }

    /// Fast-forward across the tick window `[start, start + ticks)`
    /// without cycle timing: charge the window's cycles with a
    /// `template`-proportioned CPI stack (normally the stack delta observed
    /// over the preceding detailed interval, preserving
    /// `cpi_stack().total() == cycles()` exactly), shift in-flight pipeline
    /// state past the window via [`Self::shift_time`], and functionally
    /// execute `instructions` instructions from `src` — warming the caches
    /// and advancing the trace position.
    pub fn fast_forward(
        &mut self,
        start: u64,
        ticks: u64,
        instructions: u64,
        template: &CpiStack,
        src: &mut dyn InstrSource,
        shared: &mut SharedMem,
    ) {
        let cycles = crate::ff::cycles_in_window(start, ticks, self.cfg.ticks_per_cycle);
        self.cycles += cycles;
        self.cpi = self.cpi.merged(&template.scaled_to(cycles));
        self.shift_time(start, ticks);
        crate::ff::functional_warm(
            &mut self.caches,
            src,
            shared,
            start,
            ticks,
            instructions,
            crate::ff::FfCounters {
                committed: &mut self.committed,
                branch_mispredicts: &mut self.branch_mispredicts,
                icache_misses: &mut self.icache_misses,
                class_counts: &mut self.class_counts,
                loads_by_level: &mut self.loads_by_level,
            },
        );
    }

    /// Current ROB occupancy (for tests and occupancy diagnostics).
    pub fn rob_occupancy(&self) -> usize {
        self.rob_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RecordingObserver;
    use relsim_mem::SharedMemConfig;
    use relsim_trace::TraceGenerator;

    /// A scripted instruction source for unit tests.
    struct Script {
        instrs: Vec<Instr>,
        pos: usize,
    }

    impl Script {
        fn new(instrs: Vec<Instr>) -> Self {
            Script { instrs, pos: 0 }
        }
    }

    impl InstrSource for Script {
        fn next_instr(&mut self) -> Instr {
            let i = self.instrs.get(self.pos).copied().unwrap_or(Instr::nop());
            self.pos += 1;
            i
        }
        fn wrong_path_instr(&mut self) -> Instr {
            Instr {
                op: OpClass::IntAlu,
                src1: Some(1),
                ..Instr::nop()
            }
        }
    }

    fn run(core: &mut OooCore, src: &mut dyn InstrSource, ticks: u64) -> RecordingObserver {
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = RecordingObserver::default();
        for t in 0..ticks {
            core.tick(t, src, &mut shared, &mut obs);
        }
        obs
    }

    fn alu() -> Instr {
        Instr {
            op: OpClass::IntAlu,
            src1: None,
            ..Instr::nop()
        }
    }

    #[test]
    fn independent_alus_commit_at_full_width() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(vec![alu(); 4000]);
        // Only 3 int-add units, so IPC is bounded by 3, not width 4.
        let obs = run(&mut core, &mut src, 2000);
        assert!(
            core.committed() >= 3 * (2000 - 50),
            "committed {}",
            core.committed()
        );
        assert!(obs.events.iter().all(|e| e.is_well_formed()));
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let chain = Instr {
            op: OpClass::IntAlu,
            src1: Some(1),
            ..Instr::nop()
        };
        let mut src = Script::new(vec![chain; 2000]);
        run(&mut core, &mut src, 1000);
        // A dist-1 chain of 1-cycle ops commits at most 1 per cycle.
        assert!(core.committed() <= 1000);
        assert!(core.committed() >= 900, "committed {}", core.committed());
    }

    #[test]
    fn retire_timestamps_ordered() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("hmmer").unwrap();
        let mut src = TraceGenerator::new(p, 3, 0);
        let obs = run(&mut core, &mut src, 20_000);
        assert!(!obs.events.is_empty());
        for ev in &obs.events {
            assert!(ev.is_well_formed(), "{ev:?}");
        }
        // Commit order is monotone.
        for w in obs.events.windows(2) {
            assert!(w[0].commit <= w[1].commit);
        }
    }

    #[test]
    fn mispredicted_branch_costs_cycles_and_spawns_wrong_path() {
        let mk = |mis| {
            let mut v = Vec::new();
            for _ in 0..200 {
                for _ in 0..9 {
                    v.push(alu());
                }
                v.push(Instr {
                    op: OpClass::Branch,
                    src1: Some(1),
                    mispredict: mis,
                    ..Instr::nop()
                });
            }
            v
        };
        let mut good = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(mk(false));
        run(&mut good, &mut src, 3000);
        let mut bad = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(mk(true));
        run(&mut bad, &mut src, 3000);
        assert!(
            bad.committed() < good.committed() * 8 / 10,
            "mispredicts should hurt IPC: {} vs {}",
            bad.committed(),
            good.committed()
        );
        assert!(bad.wrong_path_dispatched() > 0);
        assert!(bad.cpi_stack().branch > 0, "branch stall cycles recorded");
        assert_eq!(good.wrong_path_dispatched(), 0);
    }

    #[test]
    fn memory_misses_block_rob_head_and_fill_rob() {
        // Loads over a huge working set with no dependencies: head blocks,
        // ROB fills behind it.
        let mut v = Vec::new();
        for i in 0..3000u64 {
            v.push(Instr {
                op: OpClass::Load,
                src1: None,
                src2: None,
                addr: i * 4096 * 17, // conflict-heavy, far apart
                mispredict: false,
                icache_miss: false,
            });
        }
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(v);
        run(&mut core, &mut src, 5000);
        let s = core.cpi_stack();
        assert!(s.memory > 0, "memory stall cycles expected, stack {s:?}");
        assert!(core.loads_by_level()[3] > 0, "memory-level loads counted");
    }

    #[test]
    fn icache_misses_stall_frontend() {
        let mut v = Vec::new();
        for i in 0..2000 {
            v.push(Instr {
                icache_miss: i % 10 == 0,
                ..alu()
            });
        }
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(v);
        run(&mut core, &mut src, 4000);
        assert!(core.icache_misses() > 0);
        assert!(core.cpi_stack().icache > 0);
    }

    #[test]
    fn nops_commit_but_use_no_issue_slots() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(vec![Instr::nop(); 4000]);
        let obs = run(&mut core, &mut src, 1200);
        assert!(core.committed() >= 4 * 1000, "nops flow at full width");
        assert!(obs.events.iter().all(|e| e.op == OpClass::Nop));
    }

    #[test]
    fn half_frequency_core_does_half_the_cycles() {
        let cfg = CoreConfig::big().at_half_frequency();
        let mut core = OooCore::new(cfg, PrivateCacheConfig::default());
        let mut src = Script::new(vec![alu(); 10_000]);
        run(&mut core, &mut src, 2000);
        assert_eq!(core.cycles(), 1000);
    }

    #[test]
    fn reset_pipeline_clears_inflight_state() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("milc").unwrap();
        let mut src = TraceGenerator::new(p, 3, 0);
        run(&mut core, &mut src, 5000);
        core.reset_pipeline();
        assert_eq!(core.rob_occupancy(), 0);
        // Core keeps running fine after the reset.
        let committed_before = core.committed();
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = RecordingObserver::default();
        for t in 5000..15_000 {
            core.tick(t, &mut src, &mut shared, &mut obs);
        }
        assert!(core.committed() > committed_before);
    }

    #[test]
    fn cpi_stack_total_matches_cycles() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("gcc").unwrap();
        let mut src = TraceGenerator::new(p, 9, 0);
        run(&mut core, &mut src, 30_000);
        assert_eq!(core.cpi_stack().total(), core.cycles());
    }
}
