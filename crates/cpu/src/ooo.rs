//! Cycle-level model of the big out-of-order core.
//!
//! The model implements the mechanisms the paper's reliability results rely
//! on:
//!
//! * a 128-entry ROB whose head blocks on long-latency loads, filling the
//!   back-end with ACE state (the high-AVF mechanism for memory-streaming
//!   codes such as milc);
//! * branch mispredictions that keep fetching down the **wrong path** until
//!   the branch resolves; wrong-path instructions occupy the ROB, issue
//!   queue, load/store queues and registers but are squashed before commit
//!   and therefore never become ACE (the low-AVF mechanism for mcf and
//!   libquantum);
//! * front-end stalls (I-cache misses, post-misprediction refill) that
//!   drain the pipeline of vulnerable state;
//! * finite issue queue, load/store queues, physical register files and
//!   functional units.
//!
//! Instruction scheduling is event-driven (producers wake their consumers),
//! so the per-cycle cost is proportional to pipeline width, not window size.

use crate::config::{CoreConfig, CoreKind};
use crate::cpi::{CpiStack, StallCause};
use crate::events::{RetireEvent, RetireObserver};
use crate::fu::FuPool;
use relsim_mem::{MemLevel, PrivateCacheConfig, PrivateCaches, SharedMem};
use relsim_obs::span::{self, Stage};
use relsim_trace::{Instr, InstrSource, OpClass};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const CP_RING: usize = 256;

#[derive(Debug, Clone)]
struct RobEntry {
    instr: Instr,
    seq: u64,
    /// Flush-generation tag: stale references (finish events, waiter
    /// registrations) from before a flush are ignored when the seq has
    /// been reused by a newer entry.
    epoch: u32,
    wrong_path: bool,
    dispatch: u64,
    issue_at: u64,
    finish_at: u64,
    issued: bool,
    done: bool,
    pending_srcs: u8,
    mem_level: Option<MemLevel>,
    /// Consumers waiting on this entry's result (inline to avoid per-entry
    /// heap allocation; overflow spills to `OooCore::waiter_spill`).
    waiters: [(u64, u32); 4],
    n_waiters: u8,
}

#[derive(Debug, Clone, Copy)]
struct Fetched {
    instr: Instr,
    wrong_path: bool,
    /// Tick at which the instruction clears the front-end pipeline and may
    /// dispatch.
    avail: u64,
}

/// The big out-of-order core (Table 2 configuration by default).
///
/// # Examples
///
/// ```
/// use relsim_cpu::{CoreConfig, NullObserver, OooCore};
/// use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
/// use relsim_trace::{spec_profile, TraceGenerator};
///
/// let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
/// let mut shared = SharedMem::new(SharedMemConfig::default());
/// let mut src = TraceGenerator::new(spec_profile("hmmer").unwrap(), 1, 0);
/// let mut obs = NullObserver;
/// for tick in 0..10_000 {
///     core.tick(tick, &mut src, &mut shared, &mut obs);
/// }
/// assert!(core.committed() > 0);
/// ```
#[derive(Debug, Clone)]
pub struct OooCore {
    cfg: CoreConfig,
    caches: PrivateCaches,

    rob: VecDeque<RobEntry>,
    next_seq: u64,
    /// Ready-to-issue seqs, kept sorted ascending (oldest first). Small
    /// (bounded by the issue queue), so a sorted Vec beats tree structures.
    ready: Vec<u64>,
    finish_events: BinaryHeap<Reverse<(u64, u64, u32)>>,
    iq_used: u32,
    lq_used: u32,
    sq_used: u32,
    int_regs_used: u32,
    fp_regs_used: u32,
    fu: FuPool,
    /// Current flush generation.
    epoch: u32,
    /// Overflow waiter registrations as (producer_seq, consumer_seq,
    /// consumer_epoch); normally empty.
    waiter_spill: Vec<(u64, u64, u32)>,

    cp_ring: [u64; CP_RING],
    cp_count: u64,

    fetch_queue: VecDeque<Fetched>,
    fq_capacity: usize,
    in_wrong_path: bool,
    fetch_stall_until: u64,
    fetch_stall_icache: bool,
    branch_refill_until: u64,
    /// Outstanding misprediction bubble cycles not yet charged to the
    /// branch CPI component. A flush creates a front-end bubble that only
    /// surfaces once the ROB drains; this debt routes those downstream
    /// zero-commit cycles to the branch component (a light-weight stand-in
    /// for interval analysis).
    branch_debt: u64,
    pending_fetch: Option<Instr>,

    cycles: u64,
    committed: u64,
    wrong_path_dispatched: u64,
    icache_misses: u64,
    branch_mispredicts: u64,
    cpi: CpiStack,
    class_counts: [u64; 10],
    loads_by_level: [u64; 4],
}

impl OooCore {
    /// Build an idle core with cold caches.
    ///
    /// # Panics
    ///
    /// Panics if `cfg` is not an out-of-order configuration
    /// (`kind == CoreKind::Big`, `rob_size > 0`).
    pub fn new(cfg: CoreConfig, cache_cfg: PrivateCacheConfig) -> Self {
        assert_eq!(
            cfg.kind,
            CoreKind::Big,
            "OooCore requires a big-core config"
        );
        assert!(cfg.rob_size > 0, "out-of-order core needs a ROB");
        let caches = PrivateCaches::new(cache_cfg, cfg.ticks_per_cycle);
        let fq_capacity = (cfg.width as usize) * (cfg.frontend_delay() as usize + 1);
        OooCore {
            fu: FuPool::new(cfg.fu),
            caches,
            rob: VecDeque::with_capacity(cfg.rob_size as usize),
            next_seq: 0,
            ready: Vec::with_capacity(64),
            finish_events: BinaryHeap::new(),
            iq_used: 0,
            lq_used: 0,
            sq_used: 0,
            int_regs_used: 0,
            fp_regs_used: 0,
            epoch: 0,
            waiter_spill: Vec::new(),
            cp_ring: [u64::MAX; CP_RING],
            cp_count: 0,
            fetch_queue: VecDeque::with_capacity(fq_capacity),
            fq_capacity,
            in_wrong_path: false,
            fetch_stall_until: 0,
            fetch_stall_icache: false,
            branch_refill_until: 0,
            branch_debt: 0,
            pending_fetch: None,
            cycles: 0,
            committed: 0,
            wrong_path_dispatched: 0,
            icache_misses: 0,
            branch_mispredicts: 0,
            cpi: CpiStack::default(),
            class_counts: [0; 10],
            loads_by_level: [0; 4],
            cfg,
        }
    }

    /// The core's configuration.
    pub fn config(&self) -> &CoreConfig {
        &self.cfg
    }

    /// Correct-path instructions committed so far.
    pub fn committed(&self) -> u64 {
        self.committed
    }

    /// Core cycles elapsed.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Accumulated CPI stack.
    pub fn cpi_stack(&self) -> &CpiStack {
        &self.cpi
    }

    /// Committed instruction counts per [`OpClass`] index.
    pub fn class_counts(&self) -> &[u64; 10] {
        &self.class_counts
    }

    /// Committed loads served by each memory level (L1, L2, L3, Memory).
    pub fn loads_by_level(&self) -> &[u64; 4] {
        &self.loads_by_level
    }

    /// Wrong-path instructions dispatched into the back-end so far.
    pub fn wrong_path_dispatched(&self) -> u64 {
        self.wrong_path_dispatched
    }

    /// Mispredicted branches committed so far.
    pub fn branch_mispredicts(&self) -> u64 {
        self.branch_mispredicts
    }

    /// I-cache miss stalls taken so far.
    pub fn icache_misses(&self) -> u64 {
        self.icache_misses
    }

    /// The core's private caches.
    pub fn caches(&self) -> &PrivateCaches {
        &self.caches
    }

    /// Mutable access to the private caches (e.g. to reset statistics).
    pub fn caches_mut(&mut self) -> &mut PrivateCaches {
        &mut self.caches
    }

    /// Squash all in-flight state (used when a different application is
    /// migrated onto this core). Cache contents are deliberately kept: the
    /// incoming application starts with a cold-for-it cache, as on real
    /// hardware.
    pub fn reset_pipeline(&mut self) {
        self.rob.clear();
        self.ready.clear();
        self.waiter_spill.clear();
        self.finish_events.clear();
        self.epoch = self.epoch.wrapping_add(1);
        self.fetch_queue.clear();
        self.pending_fetch = None;
        self.iq_used = 0;
        self.lq_used = 0;
        self.sq_used = 0;
        self.int_regs_used = 0;
        self.fp_regs_used = 0;
        self.in_wrong_path = false;
        self.fetch_stall_until = 0;
        self.branch_refill_until = 0;
        self.branch_debt = 0;
        self.fetch_stall_icache = false;
        self.cp_ring = [u64::MAX; CP_RING];
        self.cp_count = 0;
        self.fu.reset();
    }

    /// O(1) ROB lookup by seq. ROB seqs are always contiguous (a flush
    /// rewinds `next_seq`), so the slot is `seq - front.seq`.
    #[inline]
    fn rob_index(&self, seq: u64) -> Option<usize> {
        let front = self.rob.front()?.seq;
        let idx = seq.checked_sub(front)? as usize;
        match self.rob.get(idx) {
            Some(e) => {
                debug_assert_eq!(e.seq, seq);
                Some(idx)
            }
            None => None,
        }
    }

    /// Like [`rob_index`](Self::rob_index) but also validates the entry's
    /// flush generation, for references that may predate a flush.
    #[inline]
    fn rob_index_epoch(&self, seq: u64, epoch: u32) -> Option<usize> {
        let idx = self.rob_index(seq)?;
        (self.rob[idx].epoch == epoch).then_some(idx)
    }

    fn ready_insert(&mut self, seq: u64) {
        match self.ready.binary_search(&seq) {
            Ok(_) => {}
            Err(pos) => self.ready.insert(pos, seq),
        }
    }

    fn ready_remove(&mut self, seq: u64) {
        if let Ok(pos) = self.ready.binary_search(&seq) {
            self.ready.remove(pos);
        }
    }

    /// Decrement a consumer's pending-source count; insert into the ready
    /// list when it reaches zero.
    fn wake(&mut self, consumer: u64, epoch: u32) {
        if let Some(j) = self.rob_index_epoch(consumer, epoch) {
            let c = &mut self.rob[j];
            if c.pending_srcs > 0 {
                c.pending_srcs -= 1;
                if c.pending_srcs == 0 && !c.issued {
                    self.ready_insert(consumer);
                }
            }
        }
    }

    /// Resolve a dependency for the instruction about to be dispatched.
    /// Returns the ROB *index* of the producer if its value is still being
    /// computed; `None` means the operand is already available.
    #[inline]
    fn unresolved_producer(&self, dist: u16) -> Option<usize> {
        let d = dist as u64;
        if d == 0 || d > self.cp_count || d > CP_RING as u64 {
            return None; // out of window: treat as ready
        }
        let idx = ((self.cp_count - d) % CP_RING as u64) as usize;
        let producer_seq = self.cp_ring[idx];
        if producer_seq == u64::MAX {
            return None;
        }
        match self.rob_index(producer_seq) {
            Some(i) if !self.rob[i].done => Some(i),
            _ => None, // committed or already finished
        }
    }

    fn process_finish_events(&mut self, now: u64, prof: bool) {
        while let Some(&Reverse((tick, seq, epoch))) = self.finish_events.peek() {
            if tick > now {
                break;
            }
            self.finish_events.pop();
            let Some(i) = self.rob_index_epoch(seq, epoch) else {
                continue;
            };
            let e = &mut self.rob[i];
            if !e.issued || e.done || e.finish_at != tick {
                continue;
            }
            e.done = true;
            let n = e.n_waiters as usize;
            let mut waiters = [(0u64, 0u32); 4];
            waiters[..n].copy_from_slice(&e.waiters[..n]);
            e.n_waiters = 0;
            let was_mispredict = e.instr.mispredict && !e.wrong_path;
            span::scoped(prof, Stage::Wakeup, || {
                for &(w, we) in &waiters[..n] {
                    self.wake(w, we);
                }
                if !self.waiter_spill.is_empty() {
                    let mut i = 0;
                    while i < self.waiter_spill.len() {
                        if self.waiter_spill[i].0 == seq {
                            let (_, w, we) = self.waiter_spill.swap_remove(i);
                            self.wake(w, we);
                        } else {
                            i += 1;
                        }
                    }
                }
            });
            if was_mispredict {
                self.flush_after(seq, now);
            }
        }
    }

    /// Squash everything younger than `seq` (wrong-path recovery).
    fn flush_after(&mut self, seq: u64, now: u64) {
        while let Some(back) = self.rob.back() {
            if back.seq <= seq {
                break;
            }
            let e = self.rob.pop_back().expect("non-empty");
            self.ready_remove(e.seq);
            if !e.issued {
                self.iq_used -= 1;
            }
            match e.instr.op {
                OpClass::Load => self.lq_used -= 1,
                OpClass::Store => self.sq_used -= 1,
                _ => {}
            }
            if e.instr.has_output() {
                if e.instr.op.is_fp() {
                    self.fp_regs_used -= 1;
                } else {
                    self.int_regs_used -= 1;
                }
            }
        }
        self.next_seq = seq + 1;
        self.epoch = self.epoch.wrapping_add(1);
        self.waiter_spill.retain(|&(p, c, _)| p <= seq && c <= seq);
        self.fetch_queue.clear();
        self.pending_fetch = None;
        self.in_wrong_path = false;
        self.fetch_stall_icache = false;
        // Redirect: fetch restarts next cycle; the refill delay itself comes
        // from the front-end latency of newly fetched instructions.
        let tpc = self.cfg.ticks_per_cycle;
        self.fetch_stall_until = now + tpc;
        self.branch_refill_until = now + (self.cfg.frontend_delay() + 2) * tpc;
        self.branch_debt = (self.branch_debt + self.cfg.frontend_delay() + 2).min(64);
    }

    fn commit(&mut self, now: u64, shared: &mut SharedMem, obs: &mut dyn RetireObserver) -> u32 {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(head) = self.rob.front() else { break };
            if !head.done || head.finish_at > now {
                break;
            }
            let e = self.rob.pop_front().expect("non-empty");
            debug_assert!(!e.wrong_path, "wrong-path instruction reached commit");
            match e.instr.op {
                OpClass::Load => self.lq_used -= 1,
                OpClass::Store => {
                    self.sq_used -= 1;
                    // The store leaves the SQ and drains to the memory
                    // system; nothing waits on it.
                    let _ = self.caches.access_data(e.instr.addr, true, now, shared);
                }
                _ => {}
            }
            if e.instr.has_output() {
                if e.instr.op.is_fp() {
                    self.fp_regs_used -= 1;
                } else {
                    self.int_regs_used -= 1;
                }
            }
            self.committed += 1;
            self.class_counts[e.instr.op.index()] += 1;
            if e.instr.op == OpClass::Load {
                let li = match e.mem_level {
                    Some(MemLevel::L1) => 0,
                    Some(MemLevel::L2) => 1,
                    Some(MemLevel::L3) => 2,
                    Some(MemLevel::Memory) => 3,
                    None => 0,
                };
                self.loads_by_level[li] += 1;
            }
            if e.instr.op == OpClass::Branch && e.instr.mispredict {
                self.branch_mispredicts += 1;
            }
            obs.on_retire(&RetireEvent {
                op: e.instr.op,
                dispatch: e.dispatch,
                issue: e.issue_at,
                finish: e.finish_at,
                commit: now,
                exec_latency: e.instr.exec_latency(),
                has_output: e.instr.has_output(),
            });
            n += 1;
        }
        n
    }

    fn issue(&mut self, now: u64, shared: &mut SharedMem) {
        self.fu.new_cycle();
        let mut issued = 0;
        // Examine the oldest few ready instructions only; entries skipped
        // due to busy units stay in the ready list for later cycles.
        let mut candidates = [0u64; 8];
        let n_cand = self.ready.len().min(candidates.len());
        candidates[..n_cand].copy_from_slice(&self.ready[..n_cand]);
        let tpc = self.cfg.ticks_per_cycle;
        for &seq in &candidates[..n_cand] {
            if issued >= self.cfg.width {
                break;
            }
            let Some(i) = self.rob_index(seq) else {
                self.ready_remove(seq);
                continue;
            };
            let op = self.rob[i].instr.op;
            if !self.fu.try_issue(op, now, tpc) {
                continue; // unit busy; stays ready for a later cycle
            }
            self.ready_remove(seq);
            issued += 1;
            self.iq_used -= 1;
            let (finish_at, mem_level) = match op {
                OpClass::Load => {
                    let addr = self.rob[i].instr.addr;
                    // One cycle of address generation, then the cache walk.
                    let o = self.caches.access_data(addr, false, now + tpc, shared);
                    (o.complete_at, Some(o.level))
                }
                OpClass::Store => (now + tpc, None),
                _ => (now + self.rob[i].instr.exec_latency() * tpc, None),
            };
            let e = &mut self.rob[i];
            e.issued = true;
            e.issue_at = now;
            e.finish_at = finish_at;
            e.mem_level = mem_level;
            // The event carries the entry's own epoch: entries that survive
            // a later flush must still receive their completion.
            let entry_epoch = e.epoch;
            self.finish_events
                .push(Reverse((finish_at, seq, entry_epoch)));
        }
    }

    fn dispatch(&mut self, now: u64) {
        let mut n = 0;
        while n < self.cfg.width {
            let Some(f) = self.fetch_queue.front() else {
                break;
            };
            if f.avail > now {
                break;
            }
            if self.rob.len() >= self.cfg.rob_size as usize {
                break;
            }
            let instr = f.instr;
            let wrong_path = f.wrong_path;
            let is_nop = instr.op == OpClass::Nop;
            if !is_nop && self.iq_used >= self.cfg.iq_size {
                break;
            }
            match instr.op {
                OpClass::Load if self.lq_used >= self.cfg.lq_size => break,
                OpClass::Store if self.sq_used >= self.cfg.sq_size => break,
                _ => {}
            }
            if instr.has_output() {
                if instr.op.is_fp() {
                    if self.fp_regs_used >= self.cfg.rename_fp_regs() {
                        break;
                    }
                } else if self.int_regs_used >= self.cfg.rename_int_regs() {
                    break;
                }
            }

            // All resources available: dispatch.
            self.fetch_queue.pop_front();
            let seq = self.next_seq;
            self.next_seq += 1;
            match instr.op {
                OpClass::Load => self.lq_used += 1,
                OpClass::Store => self.sq_used += 1,
                _ => {}
            }
            if instr.has_output() {
                if instr.op.is_fp() {
                    self.fp_regs_used += 1;
                } else {
                    self.int_regs_used += 1;
                }
            }

            // Resolve producers before pushing the new entry; register this
            // instruction as a waiter on each still-in-flight producer.
            let mut pending = 0u8;
            for dist in [instr.src1, instr.src2] {
                let Some(d) = dist else { continue };
                if let Some(pi) = self.unresolved_producer(d) {
                    let epoch = self.epoch;
                    let p = &mut self.rob[pi];
                    if (p.n_waiters as usize) < p.waiters.len() {
                        p.waiters[p.n_waiters as usize] = (seq, epoch);
                        p.n_waiters += 1;
                    } else {
                        let pseq = p.seq;
                        self.waiter_spill.push((pseq, seq, epoch));
                    }
                    pending += 1;
                }
            }

            if !wrong_path {
                let idx = (self.cp_count % CP_RING as u64) as usize;
                self.cp_ring[idx] = seq;
                self.cp_count += 1;
            } else {
                self.wrong_path_dispatched += 1;
            }

            let entry = RobEntry {
                seq,
                epoch: self.epoch,
                wrong_path,
                dispatch: now,
                issue_at: now,
                finish_at: u64::MAX,
                issued: is_nop,
                done: is_nop,
                pending_srcs: pending,
                mem_level: None,
                waiters: [(0, 0); 4],
                n_waiters: 0,
                instr,
            };
            if is_nop {
                // NOPs bypass the issue queue and complete immediately.
                let e = self.rob.back_mut();
                debug_assert!(e.is_none() || e.unwrap().seq < seq);
                let mut entry = entry;
                entry.finish_at = now;
                self.rob.push_back(entry);
            } else {
                self.iq_used += 1;
                let ready_now = pending == 0;
                self.rob.push_back(entry);
                if ready_now {
                    // New seqs are always the largest: push to the back.
                    self.ready.push(seq);
                }
            }
            n += 1;
        }
    }

    fn fetch(&mut self, now: u64, src: &mut dyn InstrSource) {
        if now < self.fetch_stall_until {
            return;
        }
        self.fetch_stall_icache = false;
        let tpc = self.cfg.ticks_per_cycle;
        let fe_delay = self.cfg.frontend_delay() * tpc;
        let mut n = 0;
        while n < self.cfg.width && self.fetch_queue.len() < self.fq_capacity {
            let instr = if self.in_wrong_path {
                src.wrong_path_instr()
            } else if let Some(p) = self.pending_fetch.take() {
                p
            } else {
                let i = src.next_instr();
                if i.icache_miss {
                    self.icache_misses += 1;
                    self.pending_fetch = Some(Instr {
                        icache_miss: false,
                        ..i
                    });
                    self.fetch_stall_until = now + self.cfg.icache_penalty * tpc;
                    self.fetch_stall_icache = true;
                    return;
                }
                i
            };
            let wrong_path = self.in_wrong_path;
            let is_mispredict = !wrong_path && instr.op == OpClass::Branch && instr.mispredict;
            self.fetch_queue.push_back(Fetched {
                instr,
                wrong_path,
                avail: now + fe_delay,
            });
            n += 1;
            if is_mispredict {
                self.in_wrong_path = true;
                break; // remaining fetch slots this cycle are lost
            }
        }
    }

    fn account_cpi(&mut self, commits: u32, now: u64) {
        if commits > 0 {
            self.cpi.commit_cycle();
            return;
        }
        let cause = if let Some(head) = self.rob.front() {
            if head.issued && !head.done && head.instr.op == OpClass::Load {
                // A memory-blocked ROB head dominates whatever else is
                // going on (including concurrent wrong-path fetch).
                match head.mem_level {
                    Some(MemLevel::Memory) => StallCause::Memory,
                    Some(MemLevel::L3) => StallCause::Llc,
                    _ => StallCause::Resource,
                }
            } else if self.in_wrong_path || now < self.branch_refill_until {
                // The back-end is starved or full of junk because fetch is
                // on (or recovering from) the wrong path.
                StallCause::Branch
            } else if self.branch_debt > 0 {
                self.branch_debt -= 1;
                StallCause::Branch
            } else {
                StallCause::Resource
            }
        } else if self.fetch_stall_icache && now < self.fetch_stall_until {
            StallCause::ICache
        } else if self.in_wrong_path || now < self.branch_refill_until {
            StallCause::Branch
        } else {
            StallCause::Resource
        };
        self.cpi.stall_cycle(cause);
    }

    /// Would the dispatch stage accept `instr` right now, resource-wise?
    /// Mirrors the gate order of [`Self::dispatch`] exactly (ROB, issue
    /// queue, LQ/SQ, rename registers), minus the `avail` time gate.
    fn can_dispatch(&self, instr: &Instr) -> bool {
        if self.rob.len() >= self.cfg.rob_size as usize {
            return false;
        }
        let is_nop = instr.op == OpClass::Nop;
        if !is_nop && self.iq_used >= self.cfg.iq_size {
            return false;
        }
        match instr.op {
            OpClass::Load if self.lq_used >= self.cfg.lq_size => return false,
            OpClass::Store if self.sq_used >= self.cfg.sq_size => return false,
            _ => {}
        }
        if instr.has_output() {
            if instr.op.is_fp() {
                if self.fp_regs_used >= self.cfg.rename_fp_regs() {
                    return false;
                }
            } else if self.int_regs_used >= self.cfg.rename_int_regs() {
                return false;
            }
        }
        true
    }

    /// Conservative event horizon: the earliest tick strictly after `now`
    /// at which this core's architectural state can change. Every tick in
    /// `(now, next_event(now))` is *dead* — [`Self::tick`] there would only
    /// bump the cycle counter and charge one CPI-stack stall — so the
    /// caller may replace those ticks with one [`Self::skip_to`] call and
    /// get bit-identical results.
    ///
    /// The horizon is the min over: the next finish event (covers commit,
    /// wakeups, flushes and every resource release), the front of the
    /// fetch queue clearing the front-end (when dispatch resources are
    /// free), and the end of a fetch stall (when the fetch queue has
    /// room). When work is possible at the very next cycle boundary —
    /// fetch can run, the ROB head is committable, or ready instructions
    /// await issue — the boundary itself is returned and nothing is
    /// skipped. Returns are conservative (never later than the true next
    /// state change) and always `> now`.
    pub fn next_event(&self, now: u64) -> u64 {
        let tpc = self.cfg.ticks_per_cycle;
        let nb = (now / tpc + 1) * tpc;
        // Fetch can make progress at the next boundary.
        if self.fetch_queue.len() < self.fq_capacity && nb >= self.fetch_stall_until {
            return nb;
        }
        // Commit pending (done implies finish_at <= now, so the head
        // retires at the next boundary).
        if let Some(head) = self.rob.front() {
            if head.done {
                return nb;
            }
        }
        // Issue may proceed (conservatively: a busy divider could still
        // block, but a no-skip answer is always sound).
        if !self.ready.is_empty() {
            return nb;
        }
        let mut h = u64::MAX;
        if let Some(&Reverse((tick, _, _))) = self.finish_events.peek() {
            h = h.min(tick);
        }
        if let Some(f) = self.fetch_queue.front() {
            // Dispatch is gated on `avail` before resources, so when the
            // resources are free the front clears at `avail`; when they are
            // not, only a commit or flush (both finish-event-driven, so
            // already bounded above) can unblock it.
            if self.can_dispatch(&f.instr) {
                h = h.min(f.avail);
            }
        }
        if self.fetch_queue.len() < self.fq_capacity {
            h = h.min(self.fetch_stall_until);
        }
        if h == u64::MAX {
            return nb; // nothing in flight at all: never skip blind
        }
        h.max(nb)
    }

    /// Charge the dead ticks `[from, to)` in closed form: advance the
    /// cycle counter and CPI stack exactly as per-tick simulation would
    /// have, without simulating the ticks. Sound only when every tick in
    /// the range is dead, i.e. `to <= next_event(from - 1)` (see
    /// [`Self::next_event`]); the stall cause per skipped cycle is then a
    /// pure function of current state plus the cycle's position relative
    /// to the `branch_refill_until`/`fetch_stall_until` deadlines, which
    /// is what the arithmetic below replicates.
    pub fn skip_to(&mut self, from: u64, to: u64) {
        let tpc = self.cfg.ticks_per_cycle;
        // Cycle boundaries t = k*tpc in [from, to): k in [a, b).
        let a = from.div_ceil(tpc);
        let b = to.div_ceil(tpc);
        if b <= a {
            return;
        }
        let n = b - a;
        self.cycles += n;
        if let Some(head) = self.rob.front() {
            if head.issued && !head.done && head.instr.op == OpClass::Load {
                // Memory-blocked ROB head dominates every skipped cycle.
                let cause = match head.mem_level {
                    Some(MemLevel::Memory) => StallCause::Memory,
                    Some(MemLevel::L3) => StallCause::Llc,
                    _ => StallCause::Resource,
                };
                self.cpi.stall_cycles(cause, n);
            } else if self.in_wrong_path {
                self.cpi.stall_cycles(StallCause::Branch, n);
            } else {
                // Boundaries before branch_refill_until charge Branch;
                // the rest consume branch debt first, then Resource.
                let k_bru = self.branch_refill_until.div_ceil(tpc).clamp(a, b);
                let n_refill = k_bru - a;
                let rest = n - n_refill;
                let n_debt = rest.min(self.branch_debt);
                self.branch_debt -= n_debt;
                self.cpi.stall_cycles(StallCause::Branch, n_refill + n_debt);
                self.cpi.stall_cycles(StallCause::Resource, rest - n_debt);
            }
        } else {
            // Empty ROB: an I-cache stall window charges ICache, then the
            // wrong-path/refill window charges Branch, then Resource (the
            // per-tick empty path consumes no branch debt).
            let k_fsu = if self.fetch_stall_icache {
                self.fetch_stall_until.div_ceil(tpc).clamp(a, b)
            } else {
                a
            };
            self.cpi.stall_cycles(StallCause::ICache, k_fsu - a);
            if self.in_wrong_path {
                self.cpi.stall_cycles(StallCause::Branch, b - k_fsu);
            } else {
                let k_bru = self.branch_refill_until.div_ceil(tpc).clamp(k_fsu, b);
                self.cpi.stall_cycles(StallCause::Branch, k_bru - k_fsu);
                self.cpi.stall_cycles(StallCause::Resource, b - k_bru);
            }
        }
    }

    /// Advance the core by one global tick.
    ///
    /// The core only performs work on its own cycle boundaries (every
    /// `ticks_per_cycle` ticks); other ticks return immediately, which is
    /// how frequency scaling (Section 6.4 of the paper) is modeled.
    pub fn tick(
        &mut self,
        now: u64,
        src: &mut dyn InstrSource,
        shared: &mut SharedMem,
        obs: &mut dyn RetireObserver,
    ) {
        if !now.is_multiple_of(self.cfg.ticks_per_cycle) {
            return;
        }
        self.cycles += 1;
        // One global-flag read per cycle; every stage span below branches
        // on the local bool, keeping the disabled path near-free.
        let prof = span::enabled();
        span::scoped(prof, Stage::FuExecute, || {
            self.process_finish_events(now, prof)
        });
        let commits = span::scoped(prof, Stage::Commit, || self.commit(now, shared, obs));
        span::scoped(prof, Stage::SelectIssue, || self.issue(now, shared));
        span::scoped(prof, Stage::RenameDispatch, || self.dispatch(now));
        span::scoped(prof, Stage::Fetch, || self.fetch(now, src));
        span::scoped(prof, Stage::CpiAccount, || self.account_cpi(commits, now));
    }

    /// Shift every in-flight absolute timestamp forward by `delta` ticks,
    /// as if the fast-forward window had been spliced in before the
    /// in-flight instructions' lifetimes. Detailed intervals then behave
    /// like one concatenated simulation: outstanding memory-level
    /// parallelism survives the window instead of completing instantly,
    /// and residencies observed at retire (ACE accounting) do not absorb
    /// fast-forwarded time. Historical timestamps (dispatch/issue/finish)
    /// shift unconditionally so retire-time spans stay delta-free; gating
    /// deadlines already in the past stay inert.
    fn shift_time(&mut self, start: u64, delta: u64) {
        for e in &mut self.rob {
            e.dispatch += delta;
            e.issue_at += delta;
            if e.finish_at != u64::MAX {
                e.finish_at += delta;
            }
        }
        let events = std::mem::take(&mut self.finish_events);
        self.finish_events = events
            .into_iter()
            .map(|Reverse((t, seq, epoch))| Reverse((t + delta, seq, epoch)))
            .collect();
        for f in &mut self.fetch_queue {
            if f.avail > start {
                f.avail += delta;
            }
        }
        if self.fetch_stall_until > start {
            self.fetch_stall_until += delta;
        }
        if self.branch_refill_until > start {
            self.branch_refill_until += delta;
        }
        self.fu.shift_time(start, delta);
    }

    /// Fast-forward across the tick window `[start, start + ticks)`
    /// without cycle timing: charge the window's cycles with a
    /// `template`-proportioned CPI stack (normally the stack delta observed
    /// over the preceding detailed interval, preserving
    /// `cpi_stack().total() == cycles()` exactly), shift in-flight pipeline
    /// state past the window via [`Self::shift_time`], and functionally
    /// execute `instructions` instructions from `src` — warming the caches
    /// and advancing the trace position.
    pub fn fast_forward(
        &mut self,
        start: u64,
        ticks: u64,
        instructions: u64,
        template: &CpiStack,
        src: &mut dyn InstrSource,
        shared: &mut SharedMem,
    ) {
        let cycles = crate::ff::cycles_in_window(start, ticks, self.cfg.ticks_per_cycle);
        self.cycles += cycles;
        self.cpi = self.cpi.merged(&template.scaled_to(cycles));
        self.shift_time(start, ticks);
        crate::ff::functional_warm(
            &mut self.caches,
            src,
            shared,
            start,
            ticks,
            instructions,
            crate::ff::FfCounters {
                committed: &mut self.committed,
                branch_mispredicts: &mut self.branch_mispredicts,
                icache_misses: &mut self.icache_misses,
                class_counts: &mut self.class_counts,
                loads_by_level: &mut self.loads_by_level,
            },
        );
    }

    /// Current ROB occupancy (for tests and occupancy diagnostics).
    pub fn rob_occupancy(&self) -> usize {
        self.rob.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::RecordingObserver;
    use relsim_mem::SharedMemConfig;
    use relsim_trace::TraceGenerator;

    /// A scripted instruction source for unit tests.
    struct Script {
        instrs: Vec<Instr>,
        pos: usize,
    }

    impl Script {
        fn new(instrs: Vec<Instr>) -> Self {
            Script { instrs, pos: 0 }
        }
    }

    impl InstrSource for Script {
        fn next_instr(&mut self) -> Instr {
            let i = self.instrs.get(self.pos).copied().unwrap_or(Instr::nop());
            self.pos += 1;
            i
        }
        fn wrong_path_instr(&mut self) -> Instr {
            Instr {
                op: OpClass::IntAlu,
                src1: Some(1),
                ..Instr::nop()
            }
        }
    }

    fn run(core: &mut OooCore, src: &mut dyn InstrSource, ticks: u64) -> RecordingObserver {
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = RecordingObserver::default();
        for t in 0..ticks {
            core.tick(t, src, &mut shared, &mut obs);
        }
        obs
    }

    fn alu() -> Instr {
        Instr {
            op: OpClass::IntAlu,
            src1: None,
            ..Instr::nop()
        }
    }

    #[test]
    fn independent_alus_commit_at_full_width() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(vec![alu(); 4000]);
        // Only 3 int-add units, so IPC is bounded by 3, not width 4.
        let obs = run(&mut core, &mut src, 2000);
        assert!(
            core.committed() >= 3 * (2000 - 50),
            "committed {}",
            core.committed()
        );
        assert!(obs.events.iter().all(|e| e.is_well_formed()));
    }

    #[test]
    fn dependent_chain_serializes() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let chain = Instr {
            op: OpClass::IntAlu,
            src1: Some(1),
            ..Instr::nop()
        };
        let mut src = Script::new(vec![chain; 2000]);
        run(&mut core, &mut src, 1000);
        // A dist-1 chain of 1-cycle ops commits at most 1 per cycle.
        assert!(core.committed() <= 1000);
        assert!(core.committed() >= 900, "committed {}", core.committed());
    }

    #[test]
    fn retire_timestamps_ordered() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("hmmer").unwrap();
        let mut src = TraceGenerator::new(p, 3, 0);
        let obs = run(&mut core, &mut src, 20_000);
        assert!(!obs.events.is_empty());
        for ev in &obs.events {
            assert!(ev.is_well_formed(), "{ev:?}");
        }
        // Commit order is monotone.
        for w in obs.events.windows(2) {
            assert!(w[0].commit <= w[1].commit);
        }
    }

    #[test]
    fn mispredicted_branch_costs_cycles_and_spawns_wrong_path() {
        let mk = |mis| {
            let mut v = Vec::new();
            for _ in 0..200 {
                for _ in 0..9 {
                    v.push(alu());
                }
                v.push(Instr {
                    op: OpClass::Branch,
                    src1: Some(1),
                    mispredict: mis,
                    ..Instr::nop()
                });
            }
            v
        };
        let mut good = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(mk(false));
        run(&mut good, &mut src, 3000);
        let mut bad = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(mk(true));
        run(&mut bad, &mut src, 3000);
        assert!(
            bad.committed() < good.committed() * 8 / 10,
            "mispredicts should hurt IPC: {} vs {}",
            bad.committed(),
            good.committed()
        );
        assert!(bad.wrong_path_dispatched() > 0);
        assert!(bad.cpi_stack().branch > 0, "branch stall cycles recorded");
        assert_eq!(good.wrong_path_dispatched(), 0);
    }

    #[test]
    fn memory_misses_block_rob_head_and_fill_rob() {
        // Loads over a huge working set with no dependencies: head blocks,
        // ROB fills behind it.
        let mut v = Vec::new();
        for i in 0..3000u64 {
            v.push(Instr {
                op: OpClass::Load,
                src1: None,
                src2: None,
                addr: i * 4096 * 17, // conflict-heavy, far apart
                mispredict: false,
                icache_miss: false,
            });
        }
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(v);
        run(&mut core, &mut src, 5000);
        let s = core.cpi_stack();
        assert!(s.memory > 0, "memory stall cycles expected, stack {s:?}");
        assert!(core.loads_by_level()[3] > 0, "memory-level loads counted");
    }

    #[test]
    fn icache_misses_stall_frontend() {
        let mut v = Vec::new();
        for i in 0..2000 {
            v.push(Instr {
                icache_miss: i % 10 == 0,
                ..alu()
            });
        }
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(v);
        run(&mut core, &mut src, 4000);
        assert!(core.icache_misses() > 0);
        assert!(core.cpi_stack().icache > 0);
    }

    #[test]
    fn nops_commit_but_use_no_issue_slots() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let mut src = Script::new(vec![Instr::nop(); 4000]);
        let obs = run(&mut core, &mut src, 1200);
        assert!(core.committed() >= 4 * 1000, "nops flow at full width");
        assert!(obs.events.iter().all(|e| e.op == OpClass::Nop));
    }

    #[test]
    fn half_frequency_core_does_half_the_cycles() {
        let cfg = CoreConfig::big().at_half_frequency();
        let mut core = OooCore::new(cfg, PrivateCacheConfig::default());
        let mut src = Script::new(vec![alu(); 10_000]);
        run(&mut core, &mut src, 2000);
        assert_eq!(core.cycles(), 1000);
    }

    #[test]
    fn reset_pipeline_clears_inflight_state() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("milc").unwrap();
        let mut src = TraceGenerator::new(p, 3, 0);
        run(&mut core, &mut src, 5000);
        core.reset_pipeline();
        assert_eq!(core.rob_occupancy(), 0);
        // Core keeps running fine after the reset.
        let committed_before = core.committed();
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut obs = RecordingObserver::default();
        for t in 5000..15_000 {
            core.tick(t, &mut src, &mut shared, &mut obs);
        }
        assert!(core.committed() > committed_before);
    }

    #[test]
    fn cpi_stack_total_matches_cycles() {
        let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
        let p = relsim_trace::spec_profile("gcc").unwrap();
        let mut src = TraceGenerator::new(p, 9, 0);
        run(&mut core, &mut src, 30_000);
        assert_eq!(core.cpi_stack().total(), core.cycles());
    }
}
