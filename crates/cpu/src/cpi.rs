//! CPI-stack accounting (Figure 2 of the paper).
//!
//! A CPI stack splits execution cycles into a *base* (useful work)
//! component plus "lost" cycle components. Our classification follows the
//! paper's Figure 2 components: branch mispredictions, I-cache misses,
//! resource stalls, last-level-cache (L3) hits under L2 misses, and main
//! memory accesses.

use serde::{Deserialize, Serialize};

/// Cause of a zero-commit cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StallCause {
    /// Front-end is refilling after a branch misprediction, or the ROB is
    /// empty because fetch is on the wrong path.
    Branch,
    /// Fetch is stalled on an instruction-cache miss.
    ICache,
    /// Back-end resource stall: dependence chains, functional-unit
    /// contention, L1/L2-covered memory latency, or full queues.
    Resource,
    /// The ROB head is a load being served by the shared L3 (an LLC hit
    /// under an L2 miss).
    Llc,
    /// The ROB head is a load being served by main memory.
    Memory,
}

/// Accumulated cycle components of one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CpiStack {
    /// Cycles in which at least one instruction committed.
    pub base: u64,
    /// Zero-commit cycles attributed to branch mispredictions.
    pub branch: u64,
    /// Zero-commit cycles attributed to I-cache misses.
    pub icache: u64,
    /// Zero-commit cycles attributed to back-end resource stalls.
    pub resource: u64,
    /// Zero-commit cycles attributed to L3 (LLC) latency.
    pub llc: u64,
    /// Zero-commit cycles attributed to main-memory latency.
    pub memory: u64,
}

impl CpiStack {
    /// Record a committing cycle.
    pub fn commit_cycle(&mut self) {
        self.base += 1;
    }

    /// Record a zero-commit cycle with the given cause.
    pub fn stall_cycle(&mut self, cause: StallCause) {
        self.stall_cycles(cause, 1);
    }

    /// Record `n` zero-commit cycles with the given cause in one step.
    ///
    /// Used by the event-horizon skip path: a run of dead cycles whose
    /// stall cause is provably constant is charged in closed form instead
    /// of one `stall_cycle` call per cycle.
    pub fn stall_cycles(&mut self, cause: StallCause, n: u64) {
        match cause {
            StallCause::Branch => self.branch += n,
            StallCause::ICache => self.icache += n,
            StallCause::Resource => self.resource += n,
            StallCause::Llc => self.llc += n,
            StallCause::Memory => self.memory += n,
        }
    }

    /// Total cycles across all components.
    pub fn total(&self) -> u64 {
        self.base + self.branch + self.icache + self.resource + self.llc + self.memory
    }

    /// Component fractions `(base, branch, icache, resource, llc, memory)`
    /// normalized to the total; all zeros if no cycles were recorded.
    pub fn normalized(&self) -> [f64; 6] {
        let t = self.total() as f64;
        if t == 0.0 {
            return [0.0; 6];
        }
        [
            self.base as f64 / t,
            self.branch as f64 / t,
            self.icache as f64 / t,
            self.resource as f64 / t,
            self.llc as f64 / t,
            self.memory as f64 / t,
        ]
    }

    /// Fraction of cycles lost to front-end misses (branch + I-cache).
    pub fn frontend_fraction(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            (self.branch + self.icache) as f64 / t as f64
        }
    }

    /// Component-wise difference (`self - earlier`); saturates at zero.
    pub fn since(&self, earlier: &CpiStack) -> CpiStack {
        CpiStack {
            base: self.base.saturating_sub(earlier.base),
            branch: self.branch.saturating_sub(earlier.branch),
            icache: self.icache.saturating_sub(earlier.icache),
            resource: self.resource.saturating_sub(earlier.resource),
            llc: self.llc.saturating_sub(earlier.llc),
            memory: self.memory.saturating_sub(earlier.memory),
        }
    }

    /// Distribute `cycles` across the six components in proportion to
    /// this stack's composition, returning a stack whose `total()` is
    /// exactly `cycles`.
    ///
    /// Used by the fast-forward mode of the interval-sampling engine: the
    /// CPI stack observed over a detailed interval is scaled to cover the
    /// skipped cycles while preserving the `cpi_stack().total() ==
    /// cycles()` invariant bit-exactly. Rounding is deterministic
    /// largest-remainder (ties broken by component order), so sampled runs
    /// stay byte-identical across hosts and worker counts. If this stack
    /// is empty the whole budget lands on `base`.
    pub fn scaled_to(&self, cycles: u64) -> CpiStack {
        let total = self.total();
        if total == 0 || cycles == 0 {
            return CpiStack {
                base: cycles,
                ..CpiStack::default()
            };
        }
        let parts = [
            self.base,
            self.branch,
            self.icache,
            self.resource,
            self.llc,
            self.memory,
        ];
        // Integer largest-remainder: floor each share, then grant the
        // leftover cycles (at most 5) one each to the components with the
        // biggest remainders. u128 cross-multiplication avoids both
        // overflow and floating point; ties break on component index.
        let mut out = [0u64; 6];
        let mut rems = [(0u128, 0usize); 6];
        let mut assigned = 0u64;
        for (i, &p) in parts.iter().enumerate() {
            out[i] = ((p as u128 * cycles as u128) / total as u128) as u64;
            assigned += out[i];
            rems[i] = ((p as u128 * cycles as u128) % total as u128, i);
        }
        rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let leftover = (cycles - assigned) as usize;
        for &(_, i) in rems.iter().take(leftover) {
            out[i] += 1;
        }
        CpiStack {
            base: out[0],
            branch: out[1],
            icache: out[2],
            resource: out[3],
            llc: out[4],
            memory: out[5],
        }
    }

    /// Component-wise sum.
    pub fn merged(&self, other: &CpiStack) -> CpiStack {
        CpiStack {
            base: self.base + other.base,
            branch: self.branch + other.branch,
            icache: self.icache + other.icache,
            resource: self.resource + other.resource,
            llc: self.llc + other.llc,
            memory: self.memory + other.memory,
        }
    }
}

/// Labels for the six components, in [`CpiStack::normalized`] order.
pub const CPI_COMPONENT_NAMES: [&str; 6] =
    ["base", "branch", "icache", "resource", "llc", "memory"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulation_and_total() {
        let mut s = CpiStack::default();
        s.commit_cycle();
        s.commit_cycle();
        s.stall_cycle(StallCause::Branch);
        s.stall_cycle(StallCause::Memory);
        s.stall_cycle(StallCause::Memory);
        assert_eq!(s.base, 2);
        assert_eq!(s.branch, 1);
        assert_eq!(s.memory, 2);
        assert_eq!(s.total(), 5);
    }

    #[test]
    fn bulk_stall_cycles_matches_repeated_single_calls() {
        let mut bulk = CpiStack::default();
        let mut single = CpiStack::default();
        for (cause, n) in [
            (StallCause::Branch, 3),
            (StallCause::ICache, 0),
            (StallCause::Memory, 117),
        ] {
            bulk.stall_cycles(cause, n);
            for _ in 0..n {
                single.stall_cycle(cause);
            }
        }
        assert_eq!(bulk, single);
    }

    #[test]
    fn normalization_sums_to_one() {
        let mut s = CpiStack::default();
        for _ in 0..3 {
            s.commit_cycle();
        }
        s.stall_cycle(StallCause::Llc);
        s.stall_cycle(StallCause::ICache);
        s.stall_cycle(StallCause::Resource);
        let n = s.normalized();
        let sum: f64 = n.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((n[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_stack_normalizes_to_zero() {
        let s = CpiStack::default();
        assert_eq!(s.normalized(), [0.0; 6]);
        assert_eq!(s.frontend_fraction(), 0.0);
    }

    #[test]
    fn frontend_fraction() {
        let mut s = CpiStack::default();
        s.stall_cycle(StallCause::Branch);
        s.stall_cycle(StallCause::ICache);
        s.commit_cycle();
        s.commit_cycle();
        assert!((s.frontend_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn since_subtracts_componentwise() {
        let mut a = CpiStack::default();
        a.commit_cycle();
        a.commit_cycle();
        a.stall_cycle(StallCause::Memory);
        let mut b = a;
        b.stall_cycle(StallCause::Memory);
        b.commit_cycle();
        let d = b.since(&a);
        assert_eq!(d.base, 1);
        assert_eq!(d.memory, 1);
        assert_eq!(d.total(), 2);
    }

    #[test]
    fn scaled_to_preserves_exact_total() {
        let mut s = CpiStack::default();
        for _ in 0..7 {
            s.commit_cycle();
        }
        s.stall_cycle(StallCause::Branch);
        s.stall_cycle(StallCause::Memory);
        s.stall_cycle(StallCause::Memory);
        for cycles in [0u64, 1, 3, 9, 10, 11, 997, 1_000_000_007] {
            let scaled = s.scaled_to(cycles);
            assert_eq!(scaled.total(), cycles, "total must be exact at {cycles}");
        }
        // Exact multiples scale every component exactly.
        let tripled = s.scaled_to(30);
        assert_eq!(tripled.base, 21);
        assert_eq!(tripled.branch, 3);
        assert_eq!(tripled.memory, 6);
    }

    #[test]
    fn scaled_to_empty_stack_is_all_base() {
        let s = CpiStack::default();
        let scaled = s.scaled_to(42);
        assert_eq!(scaled.base, 42);
        assert_eq!(scaled.total(), 42);
    }

    #[test]
    fn scaled_to_keeps_proportions() {
        let s = CpiStack {
            base: 500,
            branch: 250,
            icache: 0,
            resource: 125,
            llc: 0,
            memory: 125,
        };
        let scaled = s.scaled_to(8_000);
        assert_eq!(scaled.base, 4_000);
        assert_eq!(scaled.branch, 2_000);
        assert_eq!(scaled.resource, 1_000);
        assert_eq!(scaled.memory, 1_000);
        assert_eq!(scaled.icache, 0);
    }

    #[test]
    fn merge_adds_componentwise() {
        let mut a = CpiStack::default();
        a.commit_cycle();
        let mut b = CpiStack::default();
        b.stall_cycle(StallCause::Resource);
        let m = a.merged(&b);
        assert_eq!(m.base, 1);
        assert_eq!(m.resource, 1);
        assert_eq!(m.total(), 2);
    }
}
