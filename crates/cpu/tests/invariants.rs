//! Invariant tests of the core models under randomized instruction
//! streams: timestamps well-formed, counts consistent, no deadlock, no
//! panic, across a wide space of synthetic profiles.

use proptest::prelude::*;
use relsim_cpu::{Core, CoreConfig, RecordingObserver};
use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
use relsim_trace::{BenchmarkProfile, MemoryProfile, OpMix, PhaseProfile, Suite, TraceGenerator};

fn arb_profile() -> impl Strategy<Value = BenchmarkProfile> {
    (
        0.05f64..0.4, // load
        0.0f64..0.2,  // store
        0.0f64..0.3,  // branch
        0.0f64..0.3,  // fp
        0.0f64..0.05, // nop
        1.0f64..20.0, // dep
        0.0f64..0.15, // mispredict
        0.0f64..0.03, // icache
        0.0f64..0.8,  // stream
    )
        .prop_map(|(load, store, branch, fp, nop, dep, mis, ic, stream)| {
            let scale = 1.0 / (load + store + branch + fp + nop + 0.3);
            let k = scale.min(1.0);
            BenchmarkProfile::single_phase(
                "arb",
                Suite::Int,
                PhaseProfile {
                    len_instrs: 10_000,
                    mix: OpMix {
                        load: load * k,
                        store: store * k,
                        branch: branch * k,
                        int_mul: 0.0,
                        int_div: 0.0,
                        fp_add: fp * k / 2.0,
                        fp_mul: fp * k / 2.0,
                        fp_div: 0.0,
                        nop: nop * k,
                    },
                    mean_dep_dist: dep,
                    branch_mispredict_rate: mis,
                    icache_miss_rate: ic,
                    mem: MemoryProfile {
                        stream_fraction: stream,
                        hot_fraction: (0.9 - stream).max(0.0),
                        hot_bytes: 16 << 10,
                        cold_bytes: 1 << 20,
                        stream_stride: 8,
                    },
                },
            )
        })
}

fn check_core(cfg: CoreConfig, profile: BenchmarkProfile, seed: u64, ticks: u64) {
    let mut core = Core::new(cfg, PrivateCacheConfig::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut src = TraceGenerator::new(profile, seed, 0);
    let mut obs = RecordingObserver::default();
    for t in 0..ticks {
        core.tick(t, &mut src, &mut shared, &mut obs);
    }
    // Liveness: the core must make progress on any valid stream.
    assert!(
        core.committed() > 0,
        "core deadlocked: 0 instructions in {ticks} ticks"
    );
    assert_eq!(obs.events.len() as u64, core.committed());
    // Every retirement record is internally consistent.
    let mut last_commit = 0;
    for ev in &obs.events {
        assert!(ev.is_well_formed(), "{ev:?}");
        assert!(ev.commit >= last_commit, "commit order violated");
        last_commit = ev.commit;
    }
    // Accounting identities.
    assert_eq!(core.class_counts().iter().sum::<u64>(), core.committed());
    assert_eq!(core.cpi_stack().total(), core.cycles());
    let loads: u64 = core.loads_by_level().iter().sum();
    assert_eq!(
        loads,
        core.class_counts()[relsim_trace::OpClass::Load.index()]
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The out-of-order core never deadlocks, never reorders commits, and
    /// keeps its accounting identities on arbitrary workloads.
    #[test]
    fn ooo_core_invariants(profile in arb_profile(), seed in 0u64..100) {
        check_core(CoreConfig::big(), profile, seed, 30_000);
    }

    /// Same for the in-order core.
    #[test]
    fn inorder_core_invariants(profile in arb_profile(), seed in 0u64..100) {
        check_core(CoreConfig::small(), profile, seed, 30_000);
    }

    /// Identical inputs give bit-identical outcomes on both cores.
    #[test]
    fn cores_are_deterministic(profile in arb_profile(), seed in 0u64..100) {
        for cfg in [CoreConfig::big(), CoreConfig::small()] {
            let run = |cfg: CoreConfig| {
                let mut core = Core::new(cfg, PrivateCacheConfig::default());
                let mut shared = SharedMem::new(SharedMemConfig::default());
                let mut src = TraceGenerator::new(profile.clone(), seed, 0);
                let mut obs = RecordingObserver::default();
                for t in 0..10_000 {
                    core.tick(t, &mut src, &mut shared, &mut obs);
                }
                (core.committed(), core.cycles(), obs.events.len())
            };
            prop_assert_eq!(run(cfg.clone()), run(cfg));
        }
    }

    /// The half-frequency core commits no more instructions than the
    /// full-frequency core over the same wall-clock window.
    #[test]
    fn half_frequency_is_never_faster(profile in arb_profile(), seed in 0u64..50) {
        let run = |cfg: CoreConfig| {
            let mut core = Core::new(cfg, PrivateCacheConfig::default());
            let mut shared = SharedMem::new(SharedMemConfig::default());
            let mut src = TraceGenerator::new(profile.clone(), seed, 0);
            let mut obs = relsim_cpu::NullObserver;
            for t in 0..20_000 {
                core.tick(t, &mut src, &mut shared, &mut obs);
            }
            core.committed()
        };
        let full = run(CoreConfig::small());
        let half = run(CoreConfig::small().at_half_frequency());
        // Allow a sliver of slack: the slower clock can align memory
        // completions slightly differently.
        prop_assert!(half as f64 <= full as f64 * 1.02 + 50.0,
            "half-frequency committed {half} vs {full}");
    }
}
