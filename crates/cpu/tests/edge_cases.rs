//! Targeted edge-case tests for the core models, driven by hand-built
//! instruction scripts.

use relsim_cpu::{Core, CoreConfig, InorderCore, NullObserver, OooCore, RecordingObserver};
use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
use relsim_trace::{Instr, InstrSource, OpClass};

struct Script {
    instrs: Vec<Instr>,
    pos: usize,
    looped: bool,
    wrong_path: Instr,
}

impl Script {
    /// Pads with NOPs once exhausted.
    fn new(instrs: Vec<Instr>) -> Self {
        Script {
            instrs,
            pos: 0,
            looped: false,
            wrong_path: Instr {
                op: OpClass::IntAlu,
                src1: Some(1),
                ..Instr::nop()
            },
        }
    }

    /// Wraps around once exhausted.
    fn looping(instrs: Vec<Instr>) -> Self {
        let mut s = Self::new(instrs);
        s.looped = true;
        s
    }
}

impl InstrSource for Script {
    fn next_instr(&mut self) -> Instr {
        if self.looped {
            let i = self.instrs[self.pos % self.instrs.len()];
            self.pos += 1;
            return i;
        }
        let i = self.instrs.get(self.pos).copied().unwrap_or(Instr::nop());
        self.pos += 1;
        i
    }
    fn wrong_path_instr(&mut self) -> Instr {
        self.wrong_path
    }
}

fn alu() -> Instr {
    Instr {
        op: OpClass::IntAlu,
        src1: None,
        ..Instr::nop()
    }
}

fn run_ooo(instrs: Vec<Instr>, ticks: u64) -> (OooCore, RecordingObserver) {
    let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut src = Script::new(instrs);
    let mut obs = RecordingObserver::default();
    for t in 0..ticks {
        core.tick(t, &mut src, &mut shared, &mut obs);
    }
    (core, obs)
}

#[test]
fn divider_contention_serializes_divides() {
    // Back-to-back independent divides share one unpipelined divider:
    // throughput is bounded by the 18-cycle occupancy.
    let divs = vec![
        Instr {
            op: OpClass::IntDiv,
            src1: None,
            src2: None,
            ..Instr::nop()
        };
        50
    ];
    let (core, obs) = run_ooo(divs, 2000);
    let div_events: Vec<_> = obs
        .events
        .iter()
        .filter(|e| e.op == OpClass::IntDiv)
        .collect();
    assert_eq!(div_events.len(), 50);
    assert!(core.committed() >= 50);
    // 50 divides x 18 cycles on one divider >= 900 cycles of issue span.
    let first = div_events.first().unwrap().issue;
    let last = div_events.last().unwrap().issue;
    assert!(
        last - first >= 49 * 18,
        "divides must serialize: span {}",
        last - first
    );
}

#[test]
fn store_heavy_code_bounded_by_store_queue() {
    // A long run of stores cannot exceed SQ occupancy of 64; the core must
    // still make steady progress.
    let stores: Vec<Instr> = (0..5000)
        .map(|i| Instr {
            op: OpClass::Store,
            src1: None,
            src2: None,
            addr: (i % 64) * 64,
            ..Instr::nop()
        })
        .collect();
    let (core, obs) = run_ooo(stores, 4000);
    assert!(core.committed() > 3000, "committed {}", core.committed());
    assert!(obs.events.iter().all(|e| e.is_well_formed()));
}

#[test]
fn mispredict_under_memory_miss_floods_wrong_path() {
    // The mcf pattern: a load missing to memory feeds a mispredicted
    // branch. The branch cannot resolve until the load returns, so the
    // wrong path runs long and fills the ROB with un-ACE state.
    let mut v = Vec::new();
    for i in 0..60u64 {
        v.push(Instr {
            op: OpClass::Load,
            src1: None,
            src2: None,
            addr: 0x10_0000 + i * 64 * 1031, // cold: miss to memory
            ..Instr::nop()
        });
        v.push(Instr {
            op: OpClass::Branch,
            src1: Some(1), // depends on the load
            mispredict: true,
            ..Instr::nop()
        });
        for _ in 0..8 {
            v.push(alu());
        }
    }
    let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut src = Script::looping(v);
    let mut obs = NullObserver;
    for t in 0..30_000 {
        core.tick(t, &mut src, &mut shared, &mut obs);
    }
    assert!(
        core.wrong_path_dispatched() > core.committed() / 4,
        "wrong path should be substantial: wp {} vs committed {}",
        core.wrong_path_dispatched(),
        core.committed()
    );
    assert!(core.branch_mispredicts() > 10);
}

#[test]
fn dependent_loads_serialize_into_pointer_chase() {
    // Each load's address depends on the previous load: no MLP.
    let chase: Vec<Instr> = (0..200)
        .map(|i| Instr {
            op: OpClass::Load,
            src1: Some(1),
            src2: None,
            addr: 0x20_0000 + i * 64 * 977,
            ..Instr::nop()
        })
        .collect();
    let (serial, _) = run_ooo(chase.clone(), 40_000);

    // The same loads made independent: MLP overlaps the misses.
    let parallel: Vec<Instr> = chase
        .into_iter()
        .map(|mut i| {
            i.src1 = None;
            i
        })
        .collect();
    let (mlp, _) = run_ooo(parallel, 40_000);
    assert!(
        mlp.committed() > serial.committed() * 2,
        "independent misses must overlap: {} vs {}",
        mlp.committed(),
        serial.committed()
    );
}

#[test]
fn issue_queue_pressure_from_long_dependence_chains() {
    // Chains through the FP divider keep consumers waiting in the IQ; the
    // core must not deadlock and IQ wait times must show in the events.
    let mut v = Vec::new();
    for _ in 0..100 {
        v.push(Instr {
            op: OpClass::FpDiv,
            src1: Some(1),
            src2: Some(2),
            ..Instr::nop()
        });
        v.push(alu());
    }
    let (core, obs) = run_ooo(v, 10_000);
    assert!(core.committed() >= 200);
    let max_iq_wait = obs
        .events
        .iter()
        .filter(|e| e.op == OpClass::FpDiv)
        .map(|e| e.issue - e.dispatch)
        .max()
        .unwrap();
    assert!(max_iq_wait > 6, "chained divides should wait in IQ");
}

#[test]
fn nop_only_stream_is_never_ace_but_flows() {
    let (core, obs) = run_ooo(vec![Instr::nop(); 2000], 600);
    assert!(core.committed() >= 4 * 500);
    assert!(obs.events.iter().all(|e| e.op == OpClass::Nop));
}

#[test]
fn inorder_store_queue_capacity_throttles_bursts() {
    // The small core's 10-entry store queue must bound store bursts
    // without deadlock.
    let stores: Vec<Instr> = (0..2000)
        .map(|i| Instr {
            op: OpClass::Store,
            src1: None,
            src2: None,
            addr: (i % 32) * 64,
            ..Instr::nop()
        })
        .collect();
    let mut core = InorderCore::new(CoreConfig::small(), PrivateCacheConfig::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut src = Script::new(stores);
    let mut obs = NullObserver;
    for t in 0..3000 {
        core.tick(t, &mut src, &mut shared, &mut obs);
    }
    assert!(core.committed() > 1500, "committed {}", core.committed());
}

#[test]
fn migration_reset_mid_wrong_path_recovers() {
    // Reset the pipeline while the core is executing down the wrong path;
    // it must resume cleanly on the correct path.
    let mut v = Vec::new();
    v.push(Instr {
        op: OpClass::Load,
        src1: None,
        src2: None,
        addr: 0x40_0000,
        ..Instr::nop()
    });
    v.push(Instr {
        op: OpClass::Branch,
        src1: Some(1),
        mispredict: true,
        ..Instr::nop()
    });
    v.extend(vec![alu(); 3000]);
    let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut src = Script::new(v);
    let mut obs = NullObserver;
    for t in 0..40 {
        core.tick(t, &mut src, &mut shared, &mut obs);
    }
    core.reset_pipeline(); // likely mid-speculation
    for t in 40..2000 {
        core.tick(t, &mut src, &mut shared, &mut obs);
    }
    assert!(core.committed() > 1000, "committed {}", core.committed());
    assert_eq!(core.cpi_stack().total(), core.cycles());
}

#[test]
fn icache_miss_streak_throttles_but_does_not_starve() {
    let v: Vec<Instr> = (0..1500)
        .map(|_| Instr {
            icache_miss: true,
            ..alu()
        })
        .collect();
    let (core, _) = run_ooo(v, 20_000);
    assert!(core.committed() > 500, "committed {}", core.committed());
    assert!(core.icache_misses() > 100);
    let ic_frac = core.cpi_stack().icache as f64 / core.cycles() as f64;
    assert!(ic_frac > 0.3, "icache stall fraction {ic_frac}");
}

#[test]
fn wrapper_core_enum_covers_both_models() {
    for cfg in [CoreConfig::big(), CoreConfig::small()] {
        let mut core = Core::new(cfg, PrivateCacheConfig::default());
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut src = Script::new(vec![alu(); 3000]);
        let mut obs = NullObserver;
        for t in 0..1500 {
            core.tick(t, &mut src, &mut shared, &mut obs);
        }
        assert!(core.committed() > 1000);
    }
}
