use relsim_cpu::*;
use relsim_mem::*;
use relsim_trace::*;
use std::time::Instant;

struct Replay {
    v: Vec<Instr>,
    i: usize,
}
impl InstrSource for Replay {
    fn next_instr(&mut self) -> Instr {
        let x = self.v[self.i % self.v.len()];
        self.i += 1;
        x
    }
    fn wrong_path_instr(&mut self) -> Instr {
        Instr {
            op: OpClass::IntAlu,
            src1: Some(1),
            ..Instr::nop()
        }
    }
}

fn main() {
    // 1) generation alone
    let mut g = TraceGenerator::new(spec_profile("hmmer").unwrap(), 1, 0);
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..2_000_000 {
        acc = acc.wrapping_add(g.next_instr().addr);
    }
    println!(
        "gen alone: {:.0}ns/instr (acc {acc})",
        t0.elapsed().as_secs_f64() / 2e6 * 1e9
    );

    // 2) pre-generated replay through the core
    let mut g = TraceGenerator::new(spec_profile("hmmer").unwrap(), 1, 0);
    let v: Vec<Instr> = (0..2_000_000).map(|_| g.next_instr()).collect();
    let mut core = Core::new(CoreConfig::big(), PrivateCacheConfig::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut src = Replay { v, i: 0 };
    let mut obs = NullObserver;
    let t0 = Instant::now();
    for t in 0..1_000_000u64 {
        core.tick(t, &mut src, &mut shared, &mut obs);
    }
    let el = t0.elapsed().as_secs_f64();
    println!(
        "core only: {:.0}ns/cycle, ipc={:.2}, {:.0}ns/instr",
        el / 1e6 * 1e9,
        core.committed() as f64 / 1e6,
        el / core.committed() as f64 * 1e9
    );
}
