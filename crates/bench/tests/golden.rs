//! Golden-snapshot test for `run_all --quick`: every JSON artifact the
//! full driver writes must match the blessed copies under
//! `tests/golden/` byte-for-byte.
//!
//! The artifacts are deterministic (the CI determinism gate checks them
//! across `--jobs` values), so any diff here is a real behaviour change.
//! After an intentional model change, regenerate the snapshots with
//! `./ci.sh bless` and review the diff like any other code change.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// Artifact files are the `fig*.json` results; the context cache
/// (`context-*.json`) is an implementation detail and not snapshotted.
fn artifact_names(dir: &Path) -> BTreeSet<String> {
    std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("read {dir:?}: {e}"))
        .map(|e| e.unwrap().file_name().into_string().unwrap())
        .filter(|n| n.starts_with("fig") && n.ends_with(".json"))
        .collect()
}

/// Runs the real `run_all` binary at quick scale and diffs every JSON
/// artifact against `tests/golden/`. A full quick-scale run, so it is
/// ignored in debug builds; `ci.sh` runs it in release.
#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "full quick-scale run_all; run in release (ci.sh test)"
)]
fn run_all_quick_artifacts_match_golden() {
    let out = Path::new(env!("CARGO_TARGET_TMPDIR")).join("golden-run");
    let _ = std::fs::remove_dir_all(&out);
    std::fs::create_dir_all(&out).unwrap();

    let status = Command::new(env!("CARGO_BIN_EXE_run_all"))
        .arg("--quick")
        .env("RELSIM_OUT", &out)
        .stdout(std::process::Stdio::null())
        .status()
        .expect("spawn run_all");
    assert!(status.success(), "run_all --quick failed: {status}");

    let golden = golden_dir();
    assert!(
        golden.is_dir(),
        "missing {golden:?}; generate it with ./ci.sh bless"
    );
    let want = artifact_names(&golden);
    let got = artifact_names(&out);
    assert!(!want.is_empty(), "no golden snapshots in {golden:?}");
    assert_eq!(
        want, got,
        "artifact set changed; re-bless with ./ci.sh bless if intentional"
    );

    let mut diffs = Vec::new();
    for name in &want {
        let want_bytes = std::fs::read(golden.join(name)).unwrap();
        let got_bytes = std::fs::read(out.join(name)).unwrap();
        if want_bytes != got_bytes {
            diffs.push(name.clone());
        }
    }
    assert!(
        diffs.is_empty(),
        "artifacts diverged from tests/golden/: {diffs:?}\n\
         If the change is intentional, run ./ci.sh bless and commit the diff."
    );
}
