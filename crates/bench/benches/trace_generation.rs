//! Synthetic trace generation rate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use relsim_trace::{spec_profile, InstrSource, TraceGenerator};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_generation");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    for bench in ["hmmer", "mcf", "calculix"] {
        group.bench_with_input(BenchmarkId::from_parameter(bench), &bench, |b, name| {
            let profile = spec_profile(name).unwrap();
            b.iter(|| {
                let mut g = TraceGenerator::new(profile.clone(), 1, 0);
                let mut acc = 0u64;
                for _ in 0..N {
                    acc = acc.wrapping_add(g.next_instr().addr);
                }
                acc
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation
}
criterion_main!(benches);
