//! Scheduler decision cost: the per-quantum work of Algorithm 1 (pair
//! switching over sampled data) and of the random baseline, excluding
//! simulation time. Also measures ACE-counter observation overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use relsim::{
    Objective, RandomScheduler, SamplingParams, SamplingScheduler, Scheduler, SegmentObservation,
};
use relsim_ace::{AceCounter, CounterKind};
use relsim_cpu::{CoreConfig, CoreKind, CpiStack, RetireEvent, RetireObserver};
use relsim_trace::OpClass;

fn feed(sched: &mut dyn Scheduler, kinds: &[CoreKind]) {
    let seg = sched.next_segment();
    let obs: Vec<SegmentObservation> = seg
        .mapping
        .iter()
        .enumerate()
        .map(|(core, &app)| SegmentObservation {
            app,
            core,
            kind: kinds[core],
            ticks: seg.ticks,
            active_ticks: seg.ticks,
            instructions: 1000 + app as u64 * 137,
            abc: 5000.0 + app as f64 * 911.0,
            cpi: CpiStack::default(),
        })
        .collect();
    sched.observe(&obs);
}

fn bench_schedulers(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_decision");
    for n in [4usize, 8, 16] {
        let kinds: Vec<CoreKind> = (0..n)
            .map(|i| {
                if i < n / 2 {
                    CoreKind::Big
                } else {
                    CoreKind::Small
                }
            })
            .collect();
        group.bench_with_input(BenchmarkId::new("reliability", n), &kinds, |b, kinds| {
            let mut s = SamplingScheduler::new(
                Objective::Sser,
                kinds.clone(),
                10_000,
                SamplingParams::default(),
            );
            b.iter(|| feed(&mut s, kinds));
        });
        group.bench_with_input(BenchmarkId::new("random", n), &kinds, |b, kinds| {
            let mut s = RandomScheduler::new(kinds.clone(), 10_000, 1);
            b.iter(|| feed(&mut s, kinds));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("ace_counter_observation");
    let ev = RetireEvent {
        op: OpClass::Load,
        dispatch: 100,
        issue: 105,
        finish: 140,
        commit: 150,
        exec_latency: 1,
        has_output: true,
    };
    for kind in [
        CounterKind::Perfect,
        CounterKind::HwBaseline,
        CounterKind::HwRobOnly,
    ] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &kind,
            |b, &kind| {
                let mut counter = AceCounter::new(&CoreConfig::big(), kind);
                b.iter(|| {
                    for _ in 0..1000 {
                        counter.on_retire(&ev);
                    }
                    counter.abc(1000)
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_schedulers
}
criterion_main!(benches);
