//! Cache and memory-controller microbenchmarks.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use relsim_mem::{
    Cache, CacheConfig, MemController, MemControllerConfig, PrivateCacheConfig, PrivateCaches,
    SharedMem, SharedMemConfig,
};

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    const N: u64 = 100_000;
    group.throughput(Throughput::Elements(N));
    group.bench_function("l1_hits", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 32 << 10,
            ways: 8,
            line_bytes: 64,
            latency: 4,
        });
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..N {
                hits += cache.access((i * 8) % (16 << 10), false) as u64;
            }
            hits
        });
    });
    group.bench_function("l3_streaming_misses", |b| {
        let mut cache = Cache::new(CacheConfig {
            size_bytes: 8 << 20,
            ways: 16,
            line_bytes: 64,
            latency: 30,
        });
        b.iter(|| {
            let mut hits = 0u64;
            for i in 0..N {
                hits += cache.access(i * 64 * 17, false) as u64;
            }
            hits
        });
    });
    group.bench_function("full_hierarchy_walk", |b| {
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut private = PrivateCaches::new(PrivateCacheConfig::default(), 1);
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc += private
                    .access_data((i * 931) % (64 << 20), false, i, &mut shared)
                    .complete_at;
            }
            acc
        });
    });
    group.bench_function("controller_contention", |b| {
        let mut ctrl = MemController::new(MemControllerConfig::default());
        b.iter(|| {
            let mut acc = 0u64;
            for i in 0..N {
                acc += ctrl.request(i * 3);
            }
            acc
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache
}
criterion_main!(benches);
