//! Isolated hot-stage microbenchmarks for the out-of-order core.
//!
//! Each bench drives `OooCore` with a scripted instruction stream shaped
//! so that one pipeline stage dominates the per-cycle cost:
//!
//! * `wakeup` — a dist-1 dependency chain: every instruction waits on its
//!   predecessor, so completion events and the waiter/wake path run once
//!   per instruction while select trivially picks the single ready entry.
//! * `select` — independent single-source-free ALU ops: everything is
//!   ready at dispatch, so the ready-mask scan (`collect_oldest`) and FU
//!   arbitration run at full width every cycle.
//! * `commit` — a pure NOP stream: NOPs bypass the issue queue and finish
//!   at dispatch, so the ROB head retires at full width every cycle and
//!   the commit/retire path dominates.
//!
//! Numbers are simulated-ticks-per-second; compare relative movement
//! across layout changes, not absolute values (wall-clock on a shared
//! host is noisy).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use relsim_cpu::{CoreConfig, NullObserver, OooCore};
use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
use relsim_trace::{Instr, InstrSource, OpClass};

/// Infinitely repeating scripted stream (no allocation after setup).
struct Repeat {
    instrs: Vec<Instr>,
    pos: usize,
}

impl Repeat {
    fn new(instrs: Vec<Instr>) -> Self {
        assert!(!instrs.is_empty());
        Repeat { instrs, pos: 0 }
    }
}

impl InstrSource for Repeat {
    fn next_instr(&mut self) -> Instr {
        let i = self.instrs[self.pos];
        self.pos = (self.pos + 1) % self.instrs.len();
        i
    }
    fn wrong_path_instr(&mut self) -> Instr {
        Instr {
            op: OpClass::IntAlu,
            src1: Some(1),
            ..Instr::nop()
        }
    }
}

fn alu(src1: Option<u16>) -> Instr {
    Instr {
        op: OpClass::IntAlu,
        src1,
        ..Instr::nop()
    }
}

fn run_stream(instrs: &[Instr], ticks: u64) -> u64 {
    let mut core = OooCore::new(CoreConfig::big(), PrivateCacheConfig::default());
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut src = Repeat::new(instrs.to_vec());
    let mut obs = NullObserver;
    for t in 0..ticks {
        core.tick(t, &mut src, &mut shared, &mut obs);
    }
    core.committed()
}

fn bench_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_stages");
    const TICKS: u64 = 30_000;
    group.throughput(Throughput::Elements(TICKS));

    // Wakeup: dist-1 chain; one wake per completion, serialized commit.
    let chain = vec![alu(Some(1))];
    group.bench_function("wakeup", |b| {
        b.iter(|| run_stream(&chain, TICKS));
    });

    // Select: independent ALU ops; full-width ready-mask scans.
    let independent = vec![alu(None)];
    group.bench_function("select", |b| {
        b.iter(|| run_stream(&independent, TICKS));
    });

    // Commit: NOPs retire at full width with no issue traffic.
    let nops = vec![Instr::nop()];
    group.bench_function("commit", |b| {
        b.iter(|| run_stream(&nops, TICKS));
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_stages
}
criterion_main!(benches);
