//! Full-system simulation throughput: how many global ticks per wall
//! second a 2B2S system sustains under each scheduler (simulation speed,
//! not guest performance).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use relsim::{
    AppSpec, Objective, RandomScheduler, SamplingParams, SamplingScheduler, Scheduler, System,
    SystemConfig,
};
use relsim_obs::span;

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_throughput");
    const TICKS: u64 = 60_000;
    group.throughput(Throughput::Elements(TICKS));
    group.sample_size(10);
    for sched_name in ["random", "reliability"] {
        group.bench_with_input(
            BenchmarkId::from_parameter(sched_name),
            &sched_name,
            |b, &name| {
                b.iter(|| {
                    let cfg = SystemConfig::hcmp(2, 2);
                    let kinds = cfg.core_kinds();
                    let q = cfg.quantum_ticks;
                    let specs: Vec<AppSpec> = ["milc", "gobmk", "hmmer", "povray"]
                        .iter()
                        .enumerate()
                        .map(|(i, n)| AppSpec::spec(n, i as u64))
                        .collect();
                    let mut system = System::new(cfg, &specs);
                    let mut sched: Box<dyn Scheduler> = if name == "random" {
                        Box::new(RandomScheduler::new(kinds, q, 1))
                    } else {
                        Box::new(SamplingScheduler::new(
                            Objective::Sser,
                            kinds,
                            q,
                            SamplingParams::default(),
                        ))
                    };
                    let r = system.run(sched.as_mut(), TICKS);
                    r.migrations
                });
            },
        );
    }
    group.finish();
}

/// Stage-profiler cost on the same workload: `off` is the shipped
/// default (instrumentation compiled in, global flag clear — the
/// disabled path must stay within ~1% of an uninstrumented run), `on`
/// pays for per-stage self-time accumulation and latency histograms.
fn bench_profiled(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_profiled");
    const TICKS: u64 = 60_000;
    group.throughput(Throughput::Elements(TICKS));
    group.sample_size(10);
    for profiling in [false, true] {
        group.bench_with_input(
            BenchmarkId::from_parameter(if profiling { "on" } else { "off" }),
            &profiling,
            |b, &on| {
                b.iter(|| {
                    span::set_profiling(on);
                    let cfg = SystemConfig::hcmp(2, 2);
                    let kinds = cfg.core_kinds();
                    let q = cfg.quantum_ticks;
                    let specs: Vec<AppSpec> = ["milc", "gobmk", "hmmer", "povray"]
                        .iter()
                        .enumerate()
                        .map(|(i, n)| AppSpec::spec(n, i as u64))
                        .collect();
                    let mut system = System::new(cfg, &specs);
                    let mut sched: Box<dyn Scheduler> = Box::new(SamplingScheduler::new(
                        Objective::Sser,
                        kinds,
                        q,
                        SamplingParams::default(),
                    ));
                    let r = system.run(sched.as_mut(), TICKS);
                    span::set_profiling(false);
                    span::reset_thread();
                    r.migrations
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_system, bench_profiled);
criterion_main!(benches);
