//! Simulation throughput of the two core models on representative
//! workload profiles (simulated cycles per wall second).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use relsim_ace::{AceCounter, CounterKind};
use relsim_cpu::{Core, CoreConfig};
use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
use relsim_trace::{spec_profile, TraceGenerator};

fn bench_cores(c: &mut Criterion) {
    let mut group = c.benchmark_group("core_throughput");
    const TICKS: u64 = 50_000;
    group.throughput(Throughput::Elements(TICKS));
    for bench in ["hmmer", "milc", "gobmk"] {
        for cfg in [CoreConfig::big(), CoreConfig::small()] {
            let label = format!("{bench}/{}", cfg.kind);
            group.bench_with_input(BenchmarkId::from_parameter(label), &cfg, |b, cfg| {
                b.iter(|| {
                    let mut core = Core::new(cfg.clone(), PrivateCacheConfig::default());
                    let mut shared = SharedMem::new(SharedMemConfig::default());
                    let mut counter = AceCounter::new(cfg, CounterKind::Perfect);
                    let mut src = TraceGenerator::new(spec_profile(bench).unwrap(), 1, 0);
                    for t in 0..TICKS {
                        core.tick(t, &mut src, &mut shared, &mut counter);
                    }
                    core.committed()
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cores
}
criterion_main!(benches);
