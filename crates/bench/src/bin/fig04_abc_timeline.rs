//! Figure 4: ABC over time for calculix and povray — isolated on a big
//! core, and co-running on 1B1S under the reliability-aware scheduler
//! (showing the migration response to calculix's phase change).

use relsim_bench::{context, save_json, scale_from_args};

fn main() {
    relsim_bench::obs_init();
    let ctx = context(scale_from_args());
    let t = relsim::experiments::abc_timeline(&ctx, "calculix", "povray");
    println!("# Figure 4 (left): isolated big-core ABC per quantum");
    println!(
        "{:<8} {:>14} {:>14}",
        "quantum", t.isolated[0].0, t.isolated[1].0
    );
    let n = t.isolated[0].1.len().min(t.isolated[1].1.len());
    for i in 0..n {
        println!(
            "{:<8} {:>14.0} {:>14.0}",
            i, t.isolated[0].1[i], t.isolated[1].1[i]
        );
    }
    println!("# Figure 4 (right): co-running on 1B1S under reliability-aware scheduling");
    println!(
        "{:<10} {:>14} {:>5} {:>14} {:>5}",
        "tick", t.corun[0].0, "big?", t.corun[1].0, "big?"
    );
    let m = t.corun[0].1.len().min(t.corun[1].1.len());
    for i in 0..m {
        let (s0, a0, b0) = t.corun[0].1[i];
        let (_, a1, b1) = t.corun[1].1[i];
        println!(
            "{:<10} {:>14.0} {:>5} {:>14.0} {:>5}",
            s0, a0, b0 as u8, a1, b1 as u8
        );
    }
    // Count migrations visible in the schedule.
    let mut switches = 0;
    for w in t.corun[0].1.windows(2) {
        if w[0].2 != w[1].2 {
            switches += 1;
        }
    }
    println!("# calculix changed core type {switches} times (phase-change response)");
    save_json("fig04_abc_timeline", &t);
}
