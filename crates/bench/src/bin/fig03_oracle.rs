//! Figure 3: potential of reliability-aware scheduling — SER gain and STP
//! loss of an oracle SSER-optimized schedule relative to an oracle
//! STP-optimized schedule (isolated-run data, no interference).

use relsim::experiments::oracle_study;
use relsim_bench::{context, pct, save_json, scale_from_args};
use relsim_metrics::arithmetic_mean;

fn main() {
    relsim_bench::obs_init();
    let ctx = context(scale_from_args());
    let outcomes = oracle_study(&ctx);
    println!("# Figure 3: oracle SER gain & STP loss (4-program, 2B2S)");
    println!("{:<44} {:>10} {:>10}", "workload", "SER gain", "STP loss");
    let mut gains = Vec::new();
    let mut losses = Vec::new();
    let mut sorted: Vec<_> = outcomes.iter().collect();
    sorted.sort_by(|a, b| a.1.ser_gain().total_cmp(&b.1.ser_gain()));
    for (m, o) in sorted {
        println!(
            "{:<44} {:>10} {:>10}",
            format!("{}:{}", m.category, m.benchmarks.join("+")),
            pct(o.ser_gain()),
            pct(o.stp_loss())
        );
        gains.push(o.ser_gain());
        losses.push(o.stp_loss());
    }
    let max_gain = gains.iter().copied().fold(f64::MIN, f64::max);
    println!(
        "# avg SER gain {} (paper: 27.2%), max {} (paper: 62.8%), avg STP loss {} (paper: 7%)",
        pct(arithmetic_mean(&gains)),
        pct(max_gain),
        pct(arithmetic_mean(&losses))
    );
    save_json("fig03_oracle", &outcomes);
}
