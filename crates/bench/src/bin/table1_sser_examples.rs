//! Table 1: the three worked examples illustrating the SSER metric.

use relsim_metrics::{sser, AppOutcome};

fn row(label: &str, apps: &[AppOutcome]) {
    for (i, a) in apps.iter().enumerate() {
        println!(
            "  app {} | SER {:>5.3} | slowdown {:>4.2} | wSER {:>5.3}",
            i,
            a.abc / a.time,
            a.slowdown(),
            relsim_metrics::wser(a.abc, a.time_ref, 1.0)
        );
    }
    println!("  {label}: SSER = {}", sser(apps, 1.0));
}

fn main() {
    relsim_bench::obs_init();
    println!("# Table 1: SSER worked examples (IFR = 1)");
    println!("(a) homogeneous multicore, no interference (paper: SSER = 2)");
    row(
        "a",
        &[
            AppOutcome {
                abc: 1.0,
                time: 1.0,
                time_ref: 1.0,
            },
            AppOutcome {
                abc: 1.0,
                time: 1.0,
                time_ref: 1.0,
            },
        ],
    );
    println!("(b) homogeneous multicore, one app slowed 2x (paper: SSER = 3)");
    row(
        "b",
        &[
            AppOutcome {
                abc: 2.0,
                time: 2.0,
                time_ref: 1.0,
            },
            AppOutcome {
                abc: 1.0,
                time: 1.0,
                time_ref: 1.0,
            },
        ],
    );
    println!("(c) heterogeneous multicore (paper: SSER = 1.5)");
    row(
        "c",
        &[
            AppOutcome {
                abc: 1.0 / 8.0,
                time: 1.0,
                time_ref: 0.25,
            },
            AppOutcome {
                abc: 1.0,
                time: 1.0,
                time_ref: 1.0,
            },
        ],
    );
}
