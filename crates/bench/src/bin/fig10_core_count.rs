//! Figure 10: SSER versus core count (1B1S, 2B2S, 4B4S), with both the
//! full core-ABC counters and the area-optimized ROB-only counters.

use relsim::experiments::{fig10_core_count, summarize};
use relsim_bench::{context, obs_finish, pct, run_obs, save_json, scale_from_args};

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let ctx = context(scale_from_args());
    let results = fig10_core_count(&ctx, &mut obs);
    println!("# Figure 10: SSER reduction (rel-opt vs random) per core count and counter");
    println!("{:<6} {:>14} {:>14}", "config", "core ABC", "ROB ABC");
    for (label, core_abc, rob_abc) in &results {
        let c = summarize(core_abc);
        let r = summarize(rob_abc);
        println!(
            "{:<6} {:>14} {:>14}",
            label,
            pct(c.rel_vs_random_sser),
            pct(r.rel_vs_random_sser)
        );
    }
    println!("# paper: 1B1S 29.3%, 2B2S 32.0% (ROB-only 31.6%), 4B4S 29.8%");
    save_json(
        "fig10_core_count",
        &results
            .iter()
            .map(|(l, c, r)| (l.clone(), summarize(c), summarize(r)))
            .collect::<Vec<_>>(),
    );
    obs_finish(&obs_args, &mut obs);
}
