//! Section 4.2: hardware cost of the ACE counter architecture
//! (904 / 296 / 67 bytes).

use relsim_ace::hw_cost::{baseline_big, in_order_small, rob_only_big};

fn main() {
    relsim_bench::obs_init();
    println!("# Hardware cost of the ACE counter architecture (Section 4.2)");
    let b = baseline_big(128, 4);
    println!(
        "baseline big core : {} timestamp bits + {} accumulator bits + {} adders = {} bits = {} bytes (paper: 904)",
        b.timestamp_bits, b.accumulator_bits, b.adders, b.total_bits(), b.total_bytes()
    );
    let r = rob_only_big(128, 4);
    println!(
        "ROB-only big core : {} timestamp bits + {} accumulator bits + {} adders = {} bits = {} bytes (paper: 296)",
        r.timestamp_bits, r.accumulator_bits, r.adders, r.total_bits(), r.total_bytes()
    );
    let s = in_order_small(5, 2);
    println!(
        "in-order small    : {} timestamp bits + {} accumulator bits + {} adders = {} bits = {} bytes (paper: 67)",
        s.timestamp_bits, s.accumulator_bits, s.adders, s.total_bits(), s.total_bytes()
    );
}
