//! Figure 7: SSER and STP per workload category on 2B2S.

use relsim::experiments::{by_category, fig6_comparisons};
use relsim_bench::{context, obs_finish, run_obs, save_json, scale_from_args};

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let ctx = context(scale_from_args());
    let comparisons = fig6_comparisons(&ctx, &mut obs);
    let cats = by_category(&comparisons);
    println!("# Figure 7: per-category SSER (a) and STP (b), normalized to random");
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "category", "SSER perf", "SSER rel", "STP perf", "STP rel"
    );
    for (cat, sser, stp) in &cats {
        println!(
            "{:<8} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            cat,
            sser[1] / sser[0],
            sser[2] / sser[0],
            stp[1] / stp[0],
            stp[2] / stp[0]
        );
    }
    let rows: Vec<(String, f64, f64)> = cats
        .iter()
        .map(|(cat, sser, _)| (cat.clone(), sser[1] / sser[0], sser[2] / sser[0]))
        .collect();
    relsim_bench::chart::grouped_bar_chart(
        "\nSSER normalized to random (lower is better):",
        ("perf-opt", "rel-opt"),
        &rows,
        40,
    );
    save_json("fig07_categories", &cats);
    obs_finish(&obs_args, &mut obs);
}
