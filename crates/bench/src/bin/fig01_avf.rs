//! Figure 1: sorted big-core AVF for the SPEC CPU2006 benchmarks, with the
//! H/M/L sensitivity classification used throughout the evaluation.

use relsim_bench::{context, save_json, scale_from_args};

fn main() {
    relsim_bench::obs_init();
    let ctx = context(scale_from_args());
    let rows = relsim::experiments::isolated_characterization(&ctx);
    println!("# Figure 1: big-core AVF (sorted ascending), classification");
    println!(
        "{:<12} {:>8} {:>4} {:>8} {:>8}",
        "benchmark", "AVF", "cat", "IPC", "ABC/tick"
    );
    for r in &rows {
        println!(
            "{:<12} {:>8.4} {:>4} {:>8.3} {:>8.0}",
            r.name, r.big.avf, r.category, r.big.ips, r.big.abc_rate
        );
    }
    save_json("fig01_avf", &rows);
}
