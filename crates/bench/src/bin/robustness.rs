//! Statistical robustness of the headline result: re-run the Figure 6
//! comparison across several workload-generation seeds and report the
//! spread of the headline numbers. A reproduction whose conclusion flips
//! between seeds would not be trustworthy.

use relsim::experiments::{compare_schedulers, hcmp_config, summarize, Scale};
use relsim::mixes::generate_mixes;
use relsim::SamplingParams;
use relsim_bench::{context, obs_finish, pct, run_obs, scale_from_args};
use relsim_metrics::arithmetic_mean;

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let mut scale = scale_from_args();
    // Robustness sweeps multiply runtime by the seed count; shrink the
    // per-seed workload set accordingly.
    scale.per_category = 1;
    let ctx = context(Scale {
        per_category: 1,
        ..scale
    });
    let seeds = [11u64, 23, 47, 89, 131];
    println!(
        "# Seed-robustness of the Figure 6 headline (2B2S, {} seeds)",
        seeds.len()
    );
    println!(
        "{:>6} {:>16} {:>16} {:>14}",
        "seed", "rel vs random", "rel vs perf", "STP loss"
    );
    let mut rel_rand = Vec::new();
    let mut rel_perf = Vec::new();
    let mut stp_loss = Vec::new();
    for seed in seeds {
        let mixes = generate_mixes(&ctx.class, 4, 1, seed);
        let cfg = hcmp_config(&ctx, 2, 2);
        let comparisons =
            compare_schedulers(&ctx, &cfg, &mixes, SamplingParams::default(), &mut obs);
        let s = summarize(&comparisons);
        println!(
            "{seed:>6} {:>16} {:>16} {:>14}",
            pct(s.rel_vs_random_sser),
            pct(s.rel_vs_perf_sser),
            pct(s.rel_vs_perf_stp_loss)
        );
        rel_rand.push(s.rel_vs_random_sser);
        rel_perf.push(s.rel_vs_perf_sser);
        stp_loss.push(s.rel_vs_perf_stp_loss);
    }
    let std = |v: &[f64]| {
        let m = arithmetic_mean(v);
        (v.iter().map(|x| (x - m).powi(2)).sum::<f64>() / v.len() as f64).sqrt()
    };
    println!(
        "# mean rel vs random {} (σ {}), rel vs perf {} (σ {}), STP loss {} (σ {})",
        pct(arithmetic_mean(&rel_rand)),
        pct(std(&rel_rand)),
        pct(arithmetic_mean(&rel_perf)),
        pct(std(&rel_perf)),
        pct(arithmetic_mean(&stp_loss)),
        pct(std(&stp_loss)),
    );
    println!("# The reliability win must hold across seeds (mean > 0 with modest σ).");
    obs_finish(&obs_args, &mut obs);
}
