//! `simulate` — run a custom workload on a custom HCMP from the command
//! line.
//!
//! ```text
//! cargo run --release -p relsim-bench --bin simulate -- \
//!     --benchmarks milc,lbm,gobmk,perlbench \
//!     --big 2 --small 2 \
//!     --scheduler reliability \
//!     --ticks 1000000 [--quantum 20000] [--rob-only] [--half-freq-small] \
//!     [--quick] [--result-out result.json] \
//!     [--trace-out trace.jsonl] [--metrics-out metrics.json] [--quiet]
//! ```
//!
//! Prints per-application placement, slowdown and wSER, plus system SSER,
//! STP and power. `--list` prints the benchmark catalog.
//!
//! The run itself goes through [`relsim_serve::run_request`] — the same
//! function the `serve` daemon executes — so `--result-out` writes an
//! artifact byte-identical to what a live daemon returns for the same
//! request (the determinism contract extends to the wire). `--quick`
//! evaluates against the quick-scale reference table, matching
//! `serve --quick`.
//!
//! With `--trace-out` the run streams a structured JSONL event log
//! (scheduler decisions with predicted objectives, migrations, samples);
//! with `--metrics-out` it writes a metrics snapshot (core, cache and
//! DRAM counters) plus a run manifest (`*.manifest.json`) recording the
//! full configuration, scheduler, seed and host-time profile.

use relsim::experiments::Context;
use relsim_bench::MODEL_VERSION;
use relsim_obs::{info, manifest_path, write_manifest, Phase, RunManifest, OBS_HELP};
use relsim_serve::{artifact_bytes, run_request, SimRequest};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let obs_args = relsim_bench::obs_init();
    if flag("--list") {
        println!("available benchmarks:");
        for n in relsim_trace::spec_names() {
            println!("  {n}");
        }
        return;
    }
    if flag("--help") || flag("-h") {
        println!(
            "usage: simulate --benchmarks a,b,c,d [--big N] [--small N] \
             [--scheduler random|performance|reliability|static] \
             [--ticks N] [--quantum N] [--rob-only] [--half-freq-small] \
             [--quick] [--result-out FILE] [--list]\n{OBS_HELP}\n{}\n{}\n{}\n{}",
            relsim_bench::JOBS_HELP,
            relsim_bench::SAMPLE_HELP,
            relsim_bench::NO_SKIP_HELP,
            relsim_bench::CACHE_HELP
        );
        return;
    }

    let benchmarks: Vec<String> = arg_value("--benchmarks")
        .unwrap_or_else(|| "milc,lbm,gobmk,perlbench".to_owned())
        .split(',')
        .map(|s| s.trim().to_owned())
        .collect();
    let req = SimRequest {
        big: arg_value("--big").map_or(2, |v| v.parse().expect("--big")),
        small: arg_value("--small").map_or(2, |v| v.parse().expect("--small")),
        ticks: arg_value("--ticks").map_or(1_000_000, |v| v.parse().expect("--ticks")),
        quantum: arg_value("--quantum").map_or(20_000, |v| v.parse().expect("--quantum")),
        scheduler: arg_value("--scheduler").unwrap_or_else(|| "reliability".to_owned()),
        half_freq_small: flag("--half-freq-small"),
        rob_only: flag("--rob-only"),
        benchmarks,
    };
    if let Err(msg) = req.validate() {
        relsim_obs::error!("simulate: {msg}");
        std::process::exit(1);
    }

    let mut obs = relsim_bench::run_obs(&obs_args);

    // Reference table for the metrics (cached across invocations).
    // `--quick` selects the quick-scale table, matching `serve --quick`.
    let mut scale = relsim_bench::scale_from_args();
    scale.quantum_ticks = req.quantum;
    let ctx = obs.timers.time(Phase::Setup, || {
        Context::load_or_build(
            scale,
            &std::path::Path::new("target/experiments").join(format!(
                "context-cli-{}-{}.json",
                scale.isolation_ticks, scale.seed
            )),
        )
    });

    info!(
        "running {} on {}B{}S under {} for {} ticks...",
        req.benchmarks.join("+"),
        req.big,
        req.small,
        req.scheduler,
        req.ticks
    );
    let artifact = run_request(&ctx.refs, &req, &mut obs);

    println!(
        "\n{:<14} {:>9} {:>10} {:>10} {:>10} {:>6}",
        "application", "big-frac", "instr", "wSER", "slowdown", "migr"
    );
    for a in &artifact.apps {
        println!(
            "{:<14} {:>9.2} {:>10} {:>10.3e} {:>10.2} {:>6}",
            a.name, a.big_frac, a.instructions, a.wser, a.slowdown, a.migrations
        );
    }
    println!(
        "\nSSER {:.4e}   STP {:.3}   chip {:.2} W   system {:.2} W   migrations {}",
        artifact.sser,
        artifact.stp,
        artifact.chip_watts,
        artifact.system_watts,
        artifact.migrations
    );

    // Observability outputs: metrics snapshot (with the main thread's
    // span state folded in first), span trace, then the run manifest
    // next to whichever result file anchors this run.
    obs.absorb_spans("main");
    let snapshot = obs.recorder.snapshot();
    if obs_args.profiling_enabled() {
        match relsim_obs::StageProfile::from_snapshot(&snapshot) {
            Some(stage) => {
                println!(
                    "\nstage profile: {:.3} s attributed to {} stages",
                    stage.attributed_seconds,
                    stage.stages.len()
                );
                println!(
                    "{:<18} {:>9} {:>7} {:>12} {:>10} {:>10}",
                    "stage", "self-s", "share", "calls", "p50-ns", "p99-ns"
                );
                for s in &stage.stages {
                    println!(
                        "{:<18} {:>9.3} {:>6.1}% {:>12} {:>10} {:>10}",
                        s.stage,
                        s.self_seconds,
                        100.0 * s.self_seconds / stage.attributed_seconds.max(f64::MIN_POSITIVE),
                        s.calls,
                        s.p50_ns,
                        s.p99_ns
                    );
                }
            }
            None => println!("\nstage profile: no samples recorded"),
        }
    }
    let mut outputs: Vec<String> = Vec::new();
    if let Some(path) = arg_value("--result-out") {
        let path = std::path::PathBuf::from(path);
        match relsim_obs::write_atomic(&path, &artifact_bytes(&artifact)) {
            Ok(()) => {
                info!("wrote result artifact {path:?}");
                outputs.push(path.display().to_string());
            }
            Err(e) => {
                relsim_obs::error!("cannot write {path:?}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &obs_args.trace_out {
        outputs.push(path.display().to_string());
        info!("wrote event trace {path:?}");
    }
    if let Some(path) = obs_args.write_metrics_or_exit(&snapshot) {
        outputs.push(path.display().to_string());
        info!("wrote metrics snapshot {path:?}");
    }
    if let Some(path) = &obs_args.trace_spans {
        match relsim_obs::write_chrome_trace(path, &obs.spans) {
            Ok(()) => {
                outputs.push(path.display().to_string());
                info!("wrote span trace {path:?}");
            }
            Err(e) => {
                relsim_obs::error!("cannot write {path:?}: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(anchor) = obs_args
        .metrics_out
        .as_ref()
        .or(obs_args.trace_out.as_ref())
    {
        let mut manifest =
            RunManifest::new("simulate", MODEL_VERSION, &artifact.scheduler, scale.seed);
        manifest.duration_ticks = req.ticks;
        manifest.scale = serde_json::to_value(&scale).unwrap_or(serde::Value::Null);
        manifest.config = serde_json::to_value(&req).unwrap_or(serde::Value::Null);
        manifest.elapsed_seconds = obs.timers.elapsed().as_secs_f64();
        manifest.host_profile = obs.timers.profile();
        manifest.outputs = outputs;
        manifest.cache = relsim_bench::cache_manifest_value();
        manifest.stage_profile = relsim_obs::StageProfile::from_snapshot(&snapshot);
        match write_manifest(anchor, &manifest) {
            Ok(path) => info!("wrote run manifest {path:?}"),
            Err(e) => relsim_obs::warn!(
                "could not write run manifest {:?}: {e}",
                manifest_path(anchor)
            ),
        }
    }
}
