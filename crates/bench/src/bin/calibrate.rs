//! Profile calibration report: for every SPEC CPU2006 profile, compare the
//! configured statistical targets against the realized characteristics of
//! the generated stream and the resulting microarchitectural behaviour.
//! Used when tuning the workload catalog (DESIGN.md §1).

use relsim_cpu::{Core, CoreConfig, NullObserver};
use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
use relsim_trace::{spec2006_profiles, InstrSource, OpClass, TraceGenerator};

fn main() {
    relsim_bench::obs_init();
    let quick = std::env::args().any(|a| a == "--quick");
    let n_instr: u64 = if quick { 50_000 } else { 300_000 };
    let ticks: u64 = if quick { 100_000 } else { 400_000 };

    println!("# Workload profile calibration ({n_instr} instrs sampled, {ticks}-tick sim)");
    println!(
        "{:<12} {:>7} {:>7} {:>7} {:>7} {:>8} {:>8} {:>7} {:>8}",
        "benchmark", "load%", "br%", "mis/br", "nop%", "dep(avg)", "bigIPC", "l1d%", "mem/Ki"
    );
    for p in spec2006_profiles() {
        // Stream statistics.
        let mut g = TraceGenerator::new(p.clone(), 1, 0);
        let (mut loads, mut branches, mut mis, mut nops, mut dep_sum, mut dep_n) =
            (0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
        for _ in 0..n_instr {
            let i = g.next_instr();
            match i.op {
                OpClass::Load => loads += 1,
                OpClass::Branch => {
                    branches += 1;
                    mis += i.mispredict as u64;
                }
                OpClass::Nop => nops += 1,
                _ => {}
            }
            for d in [i.src1, i.src2].into_iter().flatten() {
                dep_sum += u64::from(d);
                dep_n += 1;
            }
        }
        // Microarchitectural behaviour on the big core.
        let cfg = CoreConfig::big();
        let mut core = Core::new(cfg, PrivateCacheConfig::default());
        let mut shared = SharedMem::new(SharedMemConfig::default());
        let mut src = TraceGenerator::new(p.clone(), 1, 0);
        let (base, span) = src.address_span();
        shared.warm_region(base + span.saturating_sub(32 << 20), span.min(32 << 20));
        let mut obs = NullObserver;
        for t in 0..ticks {
            core.tick(t, &mut src, &mut shared, &mut obs);
        }
        let (l1i, l1d, _) = core.cache_stats();
        let _ = l1i;
        let mem_per_ki = core.loads_by_level()[3] as f64 / (core.committed() as f64 / 1000.0);
        println!(
            "{:<12} {:>6.1}% {:>6.1}% {:>7.3} {:>6.2}% {:>8.2} {:>8.3} {:>6.1}% {:>8.2}",
            p.name,
            loads as f64 / n_instr as f64 * 100.0,
            branches as f64 / n_instr as f64 * 100.0,
            if branches > 0 {
                mis as f64 / branches as f64
            } else {
                0.0
            },
            nops as f64 / n_instr as f64 * 100.0,
            dep_sum as f64 / dep_n.max(1) as f64,
            core.committed() as f64 / core.cycles() as f64,
            (1.0 - l1d.miss_ratio()) * 100.0,
            mem_per_ki,
        );
    }
}
