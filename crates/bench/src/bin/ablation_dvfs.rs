//! Ablation: small-core frequency (DVFS) versus the reliability/
//! performance trade-off, extending the paper's Section 6.4 single point
//! (1.33 GHz) to a sweep.
//!
//! Slower small cores expose work for longer (raising wSER through the
//! slowdown weighting) but also deepen the power savings; this quantifies
//! where the reliability benefit of reliability-aware scheduling erodes.

use relsim::experiments::{run_mix, SchedKind};
use relsim::mixes::Mix;
use relsim::{SamplingParams, SystemConfig};
use relsim_bench::{context, pct, scale_from_args};
use relsim_cpu::CoreKind;

fn main() {
    relsim_bench::obs_init();
    let ctx = context(scale_from_args());
    let mix = Mix {
        category: "HHLL".into(),
        benchmarks: vec![
            "milc".into(),
            "lbm".into(),
            "gobmk".into(),
            "perlbench".into(),
        ],
    };
    println!(
        "# Ablation: small-core frequency sweep on 2B2S ({})",
        mix.benchmarks.join("+")
    );
    println!(
        "{:<12} {:>12} {:>8} {:>12} {:>8} {:>12}",
        "small clock", "rel SSER", "rel STP", "rand SSER", "rand STP", "rel benefit"
    );
    for divisor in [1u64, 2, 3, 4] {
        let mut cfg = SystemConfig::hcmp(2, 2);
        for c in &mut cfg.cores {
            if c.kind == CoreKind::Small {
                *c = c.clone().at_frequency_divisor(divisor);
            }
        }
        cfg.quantum_ticks = ctx.scale.quantum_ticks;
        cfg.migration_ticks = (ctx.scale.quantum_ticks / 50).max(1);
        let (rel, _) = run_mix(
            &ctx,
            &cfg,
            &mix,
            SchedKind::RelOpt,
            SamplingParams::default(),
        );
        let (rand, _) = run_mix(
            &ctx,
            &cfg,
            &mix,
            SchedKind::Random,
            SamplingParams::default(),
        );
        println!(
            "{:<12} {:>12.3e} {:>8.3} {:>12.3e} {:>8.3} {:>12}",
            format!("2.66/{divisor} GHz"),
            rel.sser,
            rel.stp,
            rand.sser,
            rand.stp,
            pct(1.0 - rel.sser / rand.sser)
        );
    }
    println!("# The paper's Section 6.4 single point is divisor 2 (1.33 GHz): slower small");
    println!("# cores shrink the reliability benefit because parked applications stay");
    println!("# exposed for longer (the wSER slowdown weighting).");
}
