//! Regenerate every table and figure in one pass and print a combined
//! report. Results are also written as JSON under `target/experiments/`.
//!
//! ```text
//! cargo run --release -p relsim-bench --bin run_all            # full scale
//! cargo run --release -p relsim-bench --bin run_all -- --quick # smoke
//! ```

use relsim::experiments::*;
use relsim::SamplingConfig;
use relsim_bench::{context, obs_finish, pct, run_obs, save_json, scale_from_args};
use relsim_metrics::arithmetic_mean;
use std::time::Instant;

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let t0 = Instant::now();
    let scale = scale_from_args();
    let ctx = context(scale);
    relsim_obs::info!(
        "=== relsim: full evaluation at {scale:?} with {} worker(s)",
        relsim::pool::default_jobs()
    );

    // Figures 1/2/5 ------------------------------------------------------
    let rows = isolated_characterization(&ctx);
    println!(
        "[Fig 1] big-core AVF range: {:.3} (min, {}) .. {:.3} (max, {})",
        rows.first().unwrap().big.avf,
        rows.first().unwrap().name,
        rows.last().unwrap().big.avf,
        rows.last().unwrap().name
    );
    let frontend_low: f64 = arithmetic_mean(
        &rows[..8]
            .iter()
            .map(|r| r.big.cpi.frontend_fraction())
            .collect::<Vec<_>>(),
    );
    let frontend_high: f64 = arithmetic_mean(
        &rows[rows.len() - 8..]
            .iter()
            .map(|r| r.big.cpi.frontend_fraction())
            .collect::<Vec<_>>(),
    );
    println!("[Fig 2] mean front-end stall fraction: low-AVF 8 = {frontend_low:.3}, high-AVF 8 = {frontend_high:.3}");
    let corr = rob_abc_correlation(&rows);
    println!("[Fig 5] corr(ROB ABC, core ABC) = {corr:.3} (paper: 0.99)");
    save_json("fig01_avf", &rows);

    // Figure 3 -----------------------------------------------------------
    let oracle = oracle_study(&ctx);
    let gains: Vec<f64> = oracle.iter().map(|(_, o)| o.ser_gain()).collect();
    let losses: Vec<f64> = oracle.iter().map(|(_, o)| o.stp_loss()).collect();
    println!(
        "[Fig 3] oracle: SER gain avg {} max {} (paper 27.2%/62.8%), STP loss avg {} (paper 7%)",
        pct(arithmetic_mean(&gains)),
        pct(gains.iter().copied().fold(f64::MIN, f64::max)),
        pct(arithmetic_mean(&losses))
    );
    save_json("fig03_oracle", &oracle);

    // Figure 6/7/12 ------------------------------------------------------
    let comparisons = fig6_comparisons(&ctx, &mut obs);
    let s = summarize(&comparisons);
    println!(
        "[Fig 6] rel vs random SSER {} max {} (paper 32%/55.6%); rel vs perf {} max {} (paper 25.4%/60.2%)",
        pct(s.rel_vs_random_sser), pct(s.rel_vs_random_sser_max),
        pct(s.rel_vs_perf_sser), pct(s.rel_vs_perf_sser_max)
    );
    println!(
        "[Fig 6] rel STP loss vs perf {} (paper 6.3%); perf vs random SSER {} (paper 7.3%)",
        pct(s.rel_vs_perf_stp_loss),
        pct(s.perf_vs_random_sser)
    );
    save_json("fig06_sser_stp", &comparisons);
    save_json("fig06_summary", &s);
    for (cat, sser, stp) in by_category(&comparisons) {
        println!(
            "[Fig 7] {cat}: SSER rel/random {:.3}, perf/random {:.3}; STP rel/random {:.3} stp-perf {:.3}",
            sser[2] / sser[0], sser[1] / sser[0], stp[2] / stp[0], stp[1] / stp[0]
        );
    }
    let chip: Vec<[f64; 3]> = comparisons
        .iter()
        .map(|c| {
            [
                c.power[0].chip_watts,
                c.power[1].chip_watts,
                c.power[2].chip_watts,
            ]
        })
        .collect();
    let sysw: Vec<[f64; 3]> = comparisons
        .iter()
        .map(|c| {
            [
                c.power[0].system_watts(),
                c.power[1].system_watts(),
                c.power[2].system_watts(),
            ]
        })
        .collect();
    let mean =
        |v: &Vec<[f64; 3]>, i: usize| arithmetic_mean(&v.iter().map(|x| x[i]).collect::<Vec<_>>());
    println!(
        "[Fig 12] chip W: random {:.2} perf {:.2} rel {:.2}; rel vs perf {} (paper -6.0%)",
        mean(&chip, 0),
        mean(&chip, 1),
        mean(&chip, 2),
        pct(mean(&chip, 2) / mean(&chip, 1) - 1.0)
    );
    println!(
        "[Fig 12] system W: rel vs perf {} (paper -6.2%)",
        pct(mean(&sysw, 2) / mean(&sysw, 1) - 1.0)
    );

    // Figure 4 -----------------------------------------------------------
    let tl = abc_timeline(&ctx, "calculix", "povray");
    let mut switches = 0;
    for w in tl.corun[0].1.windows(2) {
        if w[0].2 != w[1].2 {
            switches += 1;
        }
    }
    println!("[Fig 4] calculix migrated {switches} times under phase changes");
    save_json("fig04_abc_timeline", &tl);

    // Figure 8 -----------------------------------------------------------
    for (label, comp) in fig8_asymmetric(&ctx, &mut obs) {
        let s = summarize(&comp);
        println!(
            "[Fig 8] {label}: rel vs random SSER {} (paper: 1B3S 27.5% / 2B2S 32% / 3B1S 7.8%)",
            pct(s.rel_vs_random_sser)
        );
        save_json(&format!("fig08_{label}"), &s);
    }

    // Figure 9 -----------------------------------------------------------
    let half = summarize(&fig9_low_frequency(&ctx, &mut obs));
    println!(
        "[Fig 9] small @1.33GHz: rel vs random {} (paper 29.8%), perf vs random {} (paper 13%)",
        pct(half.rel_vs_random_sser),
        pct(half.perf_vs_random_sser)
    );
    save_json("fig09_frequency", &half);

    // Figure 10 ----------------------------------------------------------
    for (label, core_abc, rob_abc) in fig10_core_count(&ctx, &mut obs) {
        let c = summarize(&core_abc);
        let r = summarize(&rob_abc);
        println!(
            "[Fig 10] {label}: core ABC {} | ROB ABC {} (paper 2B2S: 32% / 31.6%)",
            pct(c.rel_vs_random_sser),
            pct(r.rel_vs_random_sser)
        );
        save_json(&format!("fig10_{label}"), &(c, r));
    }

    // Figure 11 ----------------------------------------------------------
    let settings = [
        (5u32, 0.1f64),
        (10, 0.05),
        (10, 0.1),
        (10, 0.2),
        (50, 0.1),
        (100, 0.1),
    ];
    let mut fig11 = Vec::new();
    for ((r, s_), comp) in fig11_sampling_sweep(&ctx, &settings, &mut obs) {
        let s = summarize(&comp);
        println!(
            "[Fig 11] (r={r:>3}, s={s_:.2}): rel vs random SSER {} STP {}",
            pct(s.rel_vs_random_sser),
            pct(s.rel_vs_random_stp)
        );
        fig11.push(((r, s_), s));
    }
    save_json("fig11_sampling", &fig11);

    // Interval-sampled engine accuracy -----------------------------------
    let engine_cfgs = [SamplingConfig::parse("1500:15000:1").expect("valid config")];
    let engine = sampling_accuracy_study(&ctx, &engine_cfgs, &mut obs);
    for r in &engine {
        println!(
            "[Sampling] --sample {}: {:.1}x fewer detailed cycles, SSER err {:.2}%, STP err {:.2}%",
            r.config,
            r.detailed_cycle_reduction(),
            r.sser_err * 100.0,
            r.stp_err * 100.0
        );
    }
    save_json("fig11_engine_sampling", &engine);

    // Figure 13 ----------------------------------------------------------
    let modes = fig13_modes(&ctx, &mut obs);
    for (mode, sser, stp, energy) in fig13_mode_means(&modes) {
        println!(
            "[Fig 13] {mode:<10}: effective SSER {sser:.3e}, effective STP {stp:.3}, energy {energy:.5} J"
        );
    }
    println!(
        "[Fig 13] Pareto-optimal modes: {}",
        fig13_pareto(&modes).join(", ")
    );
    save_json("fig13_modes", &modes);

    obs_finish(&obs_args, &mut obs);
    relsim_obs::info!("=== done in {:.1}s", t0.elapsed().as_secs_f64());
}
