//! Figure 12: chip-level and total system power per scheduler on 2B2S.

use relsim::experiments::fig6_comparisons;
use relsim_bench::{context, obs_finish, pct, run_obs, save_json, scale_from_args};
use relsim_metrics::arithmetic_mean;

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let ctx = context(scale_from_args());
    let comparisons = fig6_comparisons(&ctx, &mut obs);
    let mut chip = [Vec::new(), Vec::new(), Vec::new()];
    let mut system = [Vec::new(), Vec::new(), Vec::new()];
    for c in &comparisons {
        for i in 0..3 {
            chip[i].push(c.power[i].chip_watts);
            system[i].push(c.power[i].system_watts());
        }
    }
    let names = ["random", "performance-optimized", "reliability-optimized"];
    println!("# Figure 12: average power per scheduler (2B2S, 4-program workloads)");
    println!(
        "{:<24} {:>10} {:>10}",
        "scheduler", "chip (W)", "system (W)"
    );
    let mut rows = Vec::new();
    for i in 0..3 {
        let cw = arithmetic_mean(&chip[i]);
        let sw = arithmetic_mean(&system[i]);
        println!("{:<24} {:>10.2} {:>10.2}", names[i], cw, sw);
        rows.push((names[i], cw, sw));
    }
    let chip_red = 1.0 - rows[2].1 / rows[1].1;
    let sys_red = 1.0 - rows[2].2 / rows[1].2;
    println!(
        "# rel-opt vs perf-opt: chip {} (paper -6.0%), system {} (paper -6.2%)",
        pct(-chip_red),
        pct(-sys_red)
    );
    save_json("fig12_power", &rows);
    obs_finish(&obs_args, &mut obs);
}
