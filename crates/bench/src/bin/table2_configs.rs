//! Table 2: the big and small core configurations.

use relsim_cpu::CoreConfig;

fn show(label: &str, c: &CoreConfig) {
    println!("## {label} core");
    println!("  type            : {}", c.kind);
    println!("  width           : {}", c.width);
    println!("  pipeline depth  : {} stages", c.depth);
    println!(
        "  ROB             : {} x {} bit",
        c.rob_size, c.bits.rob_entry
    );
    println!(
        "  issue queue     : {} x {} bit",
        c.iq_size, c.bits.iq_entry
    );
    println!(
        "  load queue      : {} x {} bit",
        c.lq_size, c.bits.lq_entry
    );
    println!(
        "  store queue     : {} x {} bit",
        c.sq_size, c.bits.sq_entry
    );
    println!(
        "  int registers   : {} x {} bit",
        c.int_regs, c.bits.int_reg
    );
    println!("  fp registers    : {} x {} bit", c.fp_regs, c.bits.fp_reg);
    println!(
        "  FUs             : {} int add, {} int mul, {} int div, {} fp add, {} fp mul, {} fp div",
        c.fu.int_add, c.fu.int_mul, c.fu.int_div, c.fu.fp_add, c.fu.fp_mul, c.fu.fp_div
    );
    println!("  total ACE bits  : {}", c.total_bits());
}

fn main() {
    relsim_bench::obs_init();
    println!("# Table 2: core configurations");
    show("big out-of-order", &CoreConfig::big());
    show("small in-order", &CoreConfig::small());
}
