//! Ablation: effect of an L2 stream prefetcher on performance and AVF.
//!
//! The paper's configuration has no prefetcher; this ablation shows how
//! one would shift the trade-off: prefetching hides memory latency, which
//! raises IPC but also *raises* AVF for streaming codes (less time spent
//! with a drained back-end, more correct-path state in flight per tick is
//! offset by shorter exposure per work unit — wSER tells the net story).

use relsim::isolated::{run_isolated, run_isolated_with};
use relsim_bench::pct;
use relsim_cpu::CoreConfig;
use relsim_mem::{PrefetchConfig, PrivateCacheConfig};
use relsim_trace::spec_profile;

fn main() {
    relsim_bench::obs_init();
    let quick = std::env::args().any(|a| a == "--quick");
    let ticks: u64 = if quick { 150_000 } else { 600_000 };
    println!("# Ablation: L2 stream prefetcher (isolated big core, {ticks} ticks)");
    println!(
        "{:<12} {:>8} {:>8} {:>8} {:>8} {:>8} {:>10}",
        "benchmark", "IPC off", "IPC on", "speedup", "AVF off", "AVF on", "wSER shift"
    );
    for name in ["milc", "lbm", "leslie3d", "hmmer", "gobmk", "mcf"] {
        let profile = spec_profile(name).unwrap();
        let base = run_isolated(&profile, &CoreConfig::big(), ticks, 1);
        // Same core, prefetching L2.
        let pf_cache = PrivateCacheConfig {
            prefetch: PrefetchConfig::next_line(),
            ..PrivateCacheConfig::default()
        };
        let pf = run_isolated_with(&profile, &CoreConfig::big(), pf_cache, ticks, 1);
        // wSER per unit work ∝ abc_rate / ips.
        let wser_off = base.abc_rate / base.ips;
        let wser_on = pf.abc_rate / pf.ips;
        println!(
            "{:<12} {:>8.3} {:>8.3} {:>8} {:>8.3} {:>8.3} {:>10}",
            name,
            base.ips,
            pf.ips,
            pct(pf.ips / base.ips - 1.0),
            base.avf,
            pf.avf,
            pct(wser_on / wser_off - 1.0)
        );
    }
    println!("# Positive speedup with a negative wSER shift means prefetching helps");
    println!("# both performance and net reliability for that benchmark.");
}
