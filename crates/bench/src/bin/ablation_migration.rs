//! Ablation: sensitivity of the reliability-optimized scheduler to the
//! migration penalty (the paper models 20 µs and reports <0.5% impact).

use relsim::experiments::{hcmp_config, run_mix, SchedKind};
use relsim::mixes::Mix;
use relsim::SamplingParams;
use relsim_bench::{context, scale_from_args};

fn main() {
    relsim_bench::obs_init();
    let ctx = context(scale_from_args());
    let mix = Mix {
        category: "HHLL".into(),
        benchmarks: vec!["milc".into(), "lbm".into(), "gobmk".into(), "sjeng".into()],
    };
    println!("# Ablation: migration penalty (fraction of a quantum)");
    println!(
        "{:>10} {:>12} {:>8} {:>12} {:>8}",
        "penalty", "rel SSER", "rel STP", "rand SSER", "rand STP"
    );
    for frac in [0.0, 0.02, 0.05, 0.1, 0.25] {
        let mut cfg = hcmp_config(&ctx, 2, 2);
        cfg.migration_ticks = (cfg.quantum_ticks as f64 * frac) as u64;
        let (rel, _) = run_mix(
            &ctx,
            &cfg,
            &mix,
            SchedKind::RelOpt,
            SamplingParams::default(),
        );
        let (rand, _) = run_mix(
            &ctx,
            &cfg,
            &mix,
            SchedKind::Random,
            SamplingParams::default(),
        );
        println!(
            "{:>9.0}% {:>12.4e} {:>8.3} {:>12.4e} {:>8.3}",
            frac * 100.0,
            rel.sser,
            rel.stp,
            rand.sser,
            rand.stp
        );
    }
    println!("# The sampling scheduler migrates rarely, so its results are robust;");
    println!("# the random scheduler pays the penalty every quantum.");
}
