//! Figure 13: per-core reliability modes under an active fault campaign —
//! the SSER-vs-throughput-vs-energy Pareto front of checkpoint/rollback,
//! DMR, and the backup-aware scheduler against an unprotected baseline
//! (DESIGN.md §15).
//!
//! ```text
//! cargo run --release -p relsim-bench --bin fig13_modes -- --quick
//! cargo run --release -p relsim-bench --bin fig13_modes -- --mode checkpoint --faults 2000
//! ```

use relsim::experiments::{
    fig13_mode_means, fig13_modes_with, fig13_pareto, fig13_plans, FIG13_FAULTS,
};
use relsim::{ModeKind, ReliabilityPlan};
use relsim_bench::{context, obs_finish, run_obs, save_json, scale_from_args};

fn main() {
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!("fig13_modes: reliability-mode Pareto study (2B2S, 4-program workloads)");
        println!("{}", relsim_bench::MODE_HELP);
        println!("{}", relsim_bench::JOBS_HELP);
        println!("{}", relsim_bench::SAMPLE_HELP);
        println!("{}", relsim_bench::NO_SKIP_HELP);
        println!("{}", relsim_bench::CACHE_HELP);
        return;
    }
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let ctx = context(scale_from_args());
    let modes = relsim_bench::modes_from_args().unwrap_or_else(|| ModeKind::ALL.to_vec());
    let faults = relsim_bench::faults_from_args().unwrap_or(FIG13_FAULTS);
    let fault_seed =
        relsim_bench::fault_seed_from_args().unwrap_or(ReliabilityPlan::default().fault_seed);
    let plans = fig13_plans(
        &ctx,
        &modes,
        faults,
        fault_seed,
        relsim_bench::ckpt_interval_from_args(),
    );
    let cells = fig13_modes_with(&ctx, &plans, &mut obs);

    println!("# Figure 13: reliability modes ({faults} faults/run, seed {fault_seed:#x})");
    println!(
        "{:<12} {:<34} {:>10} {:>10} {:>8} {:>8} {:>9} {:>6} {:>9}",
        "mode",
        "workload",
        "sser_eff",
        "stp_eff",
        "watts",
        "joules",
        "ovh_frac",
        "sdc",
        "recovered"
    );
    for c in &cells {
        println!(
            "{:<12} {:<34} {:>10.3e} {:>10.4} {:>8.2} {:>8.5} {:>9.4} {:>6} {:>9}",
            c.mode,
            c.workload,
            c.sser_effective,
            c.stp_effective,
            c.system_watts,
            c.energy_joules,
            c.overhead_frac,
            c.report.sdc,
            c.report.recovered_rollback + c.report.recovered_replica
        );
    }
    println!("# per-mode means (effective SSER, effective STP, energy J):");
    for (mode, sser, stp, energy) in fig13_mode_means(&cells) {
        println!("#   {mode:<12} {sser:>10.3e} {stp:>10.4} {energy:>10.5}");
    }
    println!(
        "# Pareto-optimal modes: {}",
        fig13_pareto(&cells).join(", ")
    );
    save_json("fig13_modes", &cells);
    obs_finish(&obs_args, &mut obs);
}
