//! `loadgen` — drive a live `relsim-serve` daemon with mixed hot/cold
//! traffic and gate on what comes back.
//!
//! ```text
//! # load profile (the default mode)
//! loadgen --addr 127.0.0.1:7878 [--requests 1000] [--clients 8] \
//!         [--distinct 25] [--quick] [--min-warm-rate 0.9] [--max-shed 0.0]
//!
//! # one request from a JSON file, body to a file (byte-identity checks)
//! loadgen --addr ... --one req.json --out resp.json
//!
//! # admin
//! loadgen --addr ... --shutdown | --stats
//! ```
//!
//! `--port-file PATH` (written by `serve --port-file`) substitutes for
//! `--addr`. The load profile generates `--distinct` deterministic
//! requests, issues `--requests` total in a hash-scrambled order (so
//! repeats — hot traffic — interleave with first occurrences — cold),
//! and reports throughput, warm-hit rate, shed rate, and latency
//! percentiles. It exits nonzero if any request got no response, if
//! two responses for the same request differ by a byte, or if the
//! `--min-warm-rate` / `--max-shed` gates fail.

use relsim_serve::http::{read_response, ReadError};
use relsim_serve::SimRequest;
use std::collections::HashMap;
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn addr() -> String {
    if let Some(a) = arg_value("--addr") {
        return a;
    }
    if let Some(p) = arg_value("--port-file") {
        match std::fs::read_to_string(&p) {
            Ok(s) if !s.trim().is_empty() => return s.trim().to_string(),
            _ => {
                eprintln!("loadgen: port file {p:?} is missing or empty");
                std::process::exit(1);
            }
        }
    }
    eprintln!("loadgen: need --addr HOST:PORT or --port-file PATH");
    std::process::exit(1);
}

/// One round trip on an existing connection.
fn send(
    stream: &mut TcpStream,
    method: &str,
    path: &str,
    body: &[u8],
) -> Result<(u16, Option<String>, Vec<u8>), String> {
    let head = format!(
        "{method} {path} HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|_| stream.write_all(body))
        .map_err(|e| format!("write: {e}"))?;
    match read_response(stream) {
        Ok(r) => Ok(r),
        Err(ReadError::Io(e)) => Err(format!("read: {e}")),
        Err(e) => Err(format!("read: {e:?}")),
    }
}

fn connect(addr: &str) -> Result<TcpStream, String> {
    let s = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    // Requests go out as head + body in separate writes; nodelay keeps
    // Nagle from pairing with delayed ACK into ~40ms per-request stalls.
    let _ = s.set_nodelay(true);
    let _ = s.set_read_timeout(Some(Duration::from_secs(60)));
    let _ = s.set_write_timeout(Some(Duration::from_secs(60)));
    Ok(s)
}

/// Build the deterministic distinct-request set. Benchmarks and
/// schedulers cycle through fixed catalogs, so the same flags always
/// produce the same requests (and therefore the same cache keys).
fn distinct_requests(n: usize, ticks: u64, quantum: u64) -> Vec<SimRequest> {
    let catalog = [
        "milc",
        "hmmer",
        "gobmk",
        "mcf",
        "povray",
        "lbm",
        "perlbench",
        "namd",
    ];
    let catalog: Vec<&str> = catalog
        .into_iter()
        .filter(|n| relsim_trace::spec_profile(n).is_some())
        .collect();
    let scheds = ["reliability", "performance", "random", "static"];
    (0..n)
        .map(|i| SimRequest {
            benchmarks: vec![
                catalog[i % catalog.len()].to_string(),
                catalog[(i * 3 + 1) % catalog.len()].to_string(),
            ],
            big: 1,
            small: 1,
            scheduler: scheds[i % scheds.len()].to_string(),
            ticks,
            quantum,
            half_freq_small: false,
            rob_only: false,
        })
        .collect()
}

#[derive(Default)]
struct Tally {
    ok: u64,
    warm: u64,
    shed: u64,
    errors: u64,
    latencies_us: Vec<u64>,
    /// First 200-body seen per distinct id, for byte-identity checks.
    bodies: HashMap<usize, Vec<u8>>,
    mismatches: u64,
}

fn main() {
    if flag("--help") || flag("-h") {
        println!(
            "usage: loadgen (--addr HOST:PORT | --port-file PATH) [mode]\n\
             modes:\n  (default)             load profile: --requests N --clients C --distinct G\n\
                                    [--ticks N] [--quantum N] [--quick]\n\
                                    [--min-warm-rate F] [--max-shed F]\n\
               --one REQ.json --out RESP.json   send one request, save the body\n\
               --shutdown            drain the daemon\n\
               --stats               print the daemon's metrics snapshot"
        );
        return;
    }
    let addr = addr();

    if flag("--shutdown") {
        let mut s = connect(&addr).unwrap_or_else(|e| fail(&e));
        match send(&mut s, "POST", "/shutdown", b"") {
            Ok((200, _, _)) => println!("loadgen: daemon draining"),
            Ok((code, _, body)) => fail(&format!(
                "shutdown got {code}: {}",
                String::from_utf8_lossy(&body)
            )),
            Err(e) => fail(&e),
        }
        return;
    }
    if flag("--stats") {
        let mut s = connect(&addr).unwrap_or_else(|e| fail(&e));
        match send(&mut s, "GET", "/stats", b"") {
            Ok((200, _, body)) => println!("{}", String::from_utf8_lossy(&body)),
            Ok((code, _, _)) => fail(&format!("stats got {code}")),
            Err(e) => fail(&e),
        }
        return;
    }
    if let Some(req_path) = arg_value("--one") {
        let out_path = arg_value("--out").unwrap_or_else(|| fail("--one needs --out FILE"));
        let body = std::fs::read(&req_path)
            .unwrap_or_else(|e| fail(&format!("cannot read {req_path:?}: {e}")));
        let mut s = connect(&addr).unwrap_or_else(|e| fail(&e));
        match send(&mut s, "POST", "/run", &body) {
            Ok((200, cache, resp)) => {
                std::fs::write(&out_path, &resp)
                    .unwrap_or_else(|e| fail(&format!("cannot write {out_path:?}: {e}")));
                println!(
                    "loadgen: 200 ({} B, x-cache {}) -> {out_path}",
                    resp.len(),
                    cache.as_deref().unwrap_or("-")
                );
            }
            Ok((code, _, resp)) => fail(&format!("got {code}: {}", String::from_utf8_lossy(&resp))),
            Err(e) => fail(&e),
        }
        return;
    }

    // Load profile.
    let quick = flag("--quick");
    let requests: usize = arg_value("--requests").map_or(1000, |v| v.parse().expect("--requests"));
    let clients: usize = arg_value("--clients").map_or(8, |v| v.parse().expect("--clients"));
    let distinct: usize = arg_value("--distinct").map_or(25, |v| v.parse().expect("--distinct"));
    let ticks: u64 = arg_value("--ticks").map_or(if quick { 20_000 } else { 60_000 }, |v| {
        v.parse().expect("--ticks")
    });
    let quantum: u64 = arg_value("--quantum").map_or(if quick { 5_000 } else { 10_000 }, |v| {
        v.parse().expect("--quantum")
    });
    let min_warm: f64 =
        arg_value("--min-warm-rate").map_or(0.0, |v| v.parse().expect("--min-warm-rate"));
    let max_shed: f64 = arg_value("--max-shed").map_or(1.0, |v| v.parse().expect("--max-shed"));

    let reqs = distinct_requests(distinct, ticks, quantum);
    let payloads: Vec<Vec<u8>> = reqs
        .iter()
        .map(|r| serde_json::to_vec(r).expect("request serializes"))
        .collect();
    // Knuth-hash scramble: repeats of hot ids interleave with cold
    // first occurrences, deterministically.
    let schedule: Vec<usize> = (0..requests)
        .map(|j| ((j as u64).wrapping_mul(2654435761) >> 7) as usize % distinct)
        .collect();

    let tally = Mutex::new(Tally::default());
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..clients {
            let addr = &addr;
            let payloads = &payloads;
            let schedule = &schedule;
            let tally = &tally;
            s.spawn(move || {
                let mut stream = connect(addr).ok();
                let mut local = Tally::default();
                for (j, &id) in schedule.iter().enumerate() {
                    if j % clients != c {
                        continue;
                    }
                    let r0 = Instant::now();
                    let mut attempt = 0;
                    let outcome = loop {
                        let st = match stream.as_mut() {
                            Some(st) => st,
                            None => match connect(addr) {
                                Ok(st) => {
                                    stream = Some(st);
                                    stream.as_mut().unwrap()
                                }
                                Err(e) => break Err(e),
                            },
                        };
                        match send(st, "POST", "/run", &payloads[id]) {
                            Ok(r) => break Ok(r),
                            Err(e) => {
                                // One reconnect per request: the server
                                // may have timed the idle socket out.
                                stream = None;
                                attempt += 1;
                                if attempt > 1 {
                                    break Err(e);
                                }
                            }
                        }
                    };
                    local.latencies_us.push(r0.elapsed().as_micros() as u64);
                    match outcome {
                        Ok((200, cache, body)) => {
                            local.ok += 1;
                            if cache.as_deref() == Some("hit") {
                                local.warm += 1;
                            }
                            match local.bodies.get(&id) {
                                None => {
                                    local.bodies.insert(id, body);
                                }
                                Some(first) if *first != body => local.mismatches += 1,
                                Some(_) => {}
                            }
                        }
                        Ok((429, _, _)) => local.shed += 1,
                        Ok((_code, _, _)) => local.errors += 1,
                        Err(_) => local.errors += 1,
                    }
                }
                let mut t = tally.lock().unwrap_or_else(|e| e.into_inner());
                t.ok += local.ok;
                t.warm += local.warm;
                t.shed += local.shed;
                t.errors += local.errors;
                t.mismatches += local.mismatches;
                t.latencies_us.extend(local.latencies_us);
                for (id, body) in local.bodies {
                    match t.bodies.get(&id) {
                        None => {
                            t.bodies.insert(id, body);
                        }
                        Some(first) if *first != body => t.mismatches += 1,
                        Some(_) => {}
                    }
                }
            });
        }
    });
    let elapsed = t0.elapsed().as_secs_f64();

    let t = tally.into_inner().unwrap_or_else(|e| e.into_inner());
    let answered = t.ok + t.shed + t.errors;
    let dropped = requests as u64 - answered.min(requests as u64);
    let cold_seen = t.bodies.len() as u64;
    let repeats = t.ok.saturating_sub(cold_seen);
    let warm_rate = if repeats > 0 {
        t.warm as f64 / repeats as f64
    } else {
        1.0
    };
    let shed_rate = t.shed as f64 / (requests as f64).max(1.0);
    let mut lat = t.latencies_us.clone();
    lat.sort_unstable();
    let pick = |q: f64| {
        lat.get(((lat.len() as f64 - 1.0) * q) as usize)
            .copied()
            .unwrap_or(0)
    };

    println!("# loadgen against {addr}");
    println!("{:<22} {:>10}", "requests", requests);
    println!("{:<22} {:>10}", "distinct", distinct);
    println!("{:<22} {:>10}", "clients", clients);
    println!("{:<22} {:>10}", "ok", t.ok);
    println!("{:<22} {:>10}", "warm hits", t.warm);
    println!("{:<22} {:>10.3}", "warm rate (repeats)", warm_rate);
    println!("{:<22} {:>10}", "shed (429)", t.shed);
    println!("{:<22} {:>10.3}", "shed rate", shed_rate);
    println!("{:<22} {:>10}", "errors", t.errors);
    println!("{:<22} {:>10}", "dropped (no answer)", dropped);
    println!("{:<22} {:>10}", "body mismatches", t.mismatches);
    println!(
        "{:<22} {:>10.1}",
        "throughput req/s",
        answered as f64 / elapsed.max(1e-9)
    );
    println!("{:<22} {:>10}", "latency p50 us", pick(0.5));
    println!("{:<22} {:>10}", "latency p99 us", pick(0.99));

    let mut failed = false;
    if dropped > 0 {
        eprintln!("loadgen: FAIL — {dropped} requests dropped on the floor");
        failed = true;
    }
    if t.mismatches > 0 {
        eprintln!(
            "loadgen: FAIL — {} responses differ from the first response for the same request",
            t.mismatches
        );
        failed = true;
    }
    if warm_rate < min_warm {
        eprintln!("loadgen: FAIL — warm rate {warm_rate:.3} below --min-warm-rate {min_warm}");
        failed = true;
    }
    if shed_rate > max_shed {
        eprintln!("loadgen: FAIL — shed rate {shed_rate:.3} above --max-shed {max_shed}");
        failed = true;
    }
    if t.errors > 0 {
        eprintln!("loadgen: FAIL — {} requests errored", t.errors);
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}

fn fail(msg: &str) -> ! {
    eprintln!("loadgen: {msg}");
    std::process::exit(1);
}
