//! Ablation: the sampling-based performance scheduler (the paper's
//! baseline) versus a PIE-style predictive scheduler (Van Craeynest et
//! al., the paper's reference \[28\]).
//!
//! Part 1 checks the cross-core prediction model against isolated ground
//! truth; part 2 compares end-to-end STP and SSER on divergent workloads.

use relsim::evaluate::{evaluate, DEFAULT_IFR};
use relsim::experiments::{hcmp_config, run_mix, SchedKind};
use relsim::isolated::ReferenceTable;
use relsim::mixes::Mix;
use relsim::{AppSpec, PieModel, PredictiveScheduler, SamplingParams, System};
use relsim_bench::{context, pct, scale_from_args};
use relsim_cpu::CoreKind;

fn main() {
    relsim_bench::obs_init();
    let ctx = context(scale_from_args());
    println!("# Part 1: cross-core IPS prediction accuracy (big -> small)");
    println!(
        "{:<12} {:>10} {:>12} {:>10}",
        "benchmark", "true IPS", "predicted", "error"
    );
    let model = PieModel::default();
    let mut errs = Vec::new();
    for name in ctx.refs.names() {
        let (big, small) = ground_truth(&ctx.refs, &name);
        let n = big.cpi.normalized();
        let predicted = model.predict_other_ips(
            CoreKind::Big,
            big.ips,
            (n[0], n[1] + n[2], n[3], n[4] + n[5]),
        );
        let err = predicted / small.ips - 1.0;
        errs.push(err.abs());
        println!(
            "{:<12} {:>10.3} {:>12.3} {:>10}",
            name,
            small.ips,
            predicted,
            pct(err)
        );
    }
    let mean_err = errs.iter().sum::<f64>() / errs.len() as f64;
    println!("# mean absolute prediction error: {}", pct(mean_err));

    println!("\n# Part 2: end-to-end on a divergent 2B2S workload");
    let mix = Mix {
        category: "HHLL".into(),
        benchmarks: vec![
            "milc".into(),
            "lbm".into(),
            "gobmk".into(),
            "perlbench".into(),
        ],
    };
    let cfg = hcmp_config(&ctx, 2, 2);
    let (perf, rp) = run_mix(
        &ctx,
        &cfg,
        &mix,
        SchedKind::PerfOpt,
        SamplingParams::default(),
    );
    // Run the predictive scheduler manually.
    let specs: Vec<AppSpec> = mix
        .benchmarks
        .iter()
        .enumerate()
        .map(|(i, n)| AppSpec::spec(n, ctx.scale.seed ^ (i as u64 + 1)))
        .collect();
    let mut pie = PredictiveScheduler::new(model, cfg.core_kinds(), cfg.quantum_ticks);
    let mut system = System::new(cfg, &specs);
    let result = system.run(&mut pie, ctx.scale.run_ticks);
    let pie_eval = evaluate(&result, &ctx.refs, DEFAULT_IFR);
    println!(
        "sampling perf-opt : STP {:.3}  SSER {:.3e}  migrations {}",
        perf.stp, perf.sser, rp.migrations
    );
    println!(
        "PIE predictive    : STP {:.3}  SSER {:.3e}  migrations {}",
        pie_eval.stp, pie_eval.sser, result.migrations
    );
    println!("# PIE avoids all sampling overhead; the sampling scheduler has exact");
    println!("# cross-type measurements. Close STP means the prediction model works.");
}

fn ground_truth<'a>(
    refs: &'a ReferenceTable,
    name: &str,
) -> (
    &'a relsim::isolated::IsolatedResult,
    &'a relsim::isolated::IsolatedResult,
) {
    (
        refs.get(name, CoreKind::Big).unwrap(),
        refs.get(name, CoreKind::Small).unwrap(),
    )
}
