//! Validate the ACE counter architecture against Monte Carlo fault
//! injection (the methodology ACE analysis replaces — Section 7.1 of the
//! paper discusses the relationship).
//!
//! With `--trace-out campaign.jsonl` every injected fault is streamed as
//! a `FaultInjected` event (strike tick plus `ace_hit`/`masked` outcome).
//!
//! The 12 campaigns (6 benchmarks × 2 core types) are independent, so
//! they shard across the worker pool (`--jobs N`). Each job buffers its
//! fault events privately; the pool replays them in grid order at the
//! barrier, so the event log is byte-identical at any `-j`.

use relsim_ace::fault_injection::validate_counters_traced;
use relsim_bench::{obs_finish, run_obs};
use relsim_cpu::CoreConfig;

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let quick = std::env::args().any(|a| a == "--quick");
    let (ticks, injections) = if quick {
        (60_000, 50_000)
    } else {
        (300_000, 400_000)
    };
    let grid: Vec<(&str, CoreConfig)> = ["milc", "hmmer", "gobmk", "mcf", "povray", "lbm"]
        .into_iter()
        .flat_map(|name| [(name, CoreConfig::big()), (name, CoreConfig::small())])
        .collect();
    let rows = relsim::pool::scatter_map_into(
        "validate-ace",
        grid,
        &mut obs,
        |_, (name, cfg), job_obs| {
            let profile = relsim_trace::spec_profile(name).expect("catalog benchmark");
            let kind = cfg.kind;
            // Per-cell seed derived from the cell's identity, not its grid
            // position or scheduling order: the campaign stream is the same
            // whichever worker runs the cell at any `-jN`.
            let seed = relsim_ace::live::mix_seed(7, &format!("{name}/{kind}"));
            let (campaign, counter_avf) = validate_counters_traced(
                &cfg,
                &profile,
                ticks,
                injections,
                seed,
                job_obs.sink.as_mut(),
            );
            (name, kind, campaign, counter_avf)
        },
    );
    println!("# ACE analysis vs Monte Carlo fault injection");
    println!(
        "{:<12} {:>6} {:>12} {:>18} {:>10}",
        "benchmark", "core", "counter AVF", "fault-injection", "agree?"
    );
    for (i, slot) in rows.into_iter().enumerate() {
        match slot {
            Some((name, kind, campaign, counter_avf)) => println!(
                "{:<12} {:>6} {:>12.4} {:>12.4} ±{:.4} {:>6}",
                name,
                kind.to_string(),
                counter_avf,
                campaign.avf_estimate,
                campaign.confidence_95,
                if campaign.consistent_with(counter_avf, 0.01) {
                    "yes"
                } else {
                    "NO"
                }
            ),
            // The pool records the panic; obs_finish reports it and exits
            // nonzero. Keep the row visible instead of silently shrinking
            // the table.
            None => println!(
                "{:<12} {:>6} {:>12} {:>18} {:>10}",
                format!("cell[{i}]"),
                "-",
                "FAILED",
                "job panicked",
                "-"
            ),
        }
    }
    println!("# The counters and {injections}-fault campaigns must agree within the 95% CI.");
    obs_finish(&obs_args, &mut obs);
}
