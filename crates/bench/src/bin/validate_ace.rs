//! Validate the ACE counter architecture against Monte Carlo fault
//! injection (the methodology ACE analysis replaces — Section 7.1 of the
//! paper discusses the relationship).
//!
//! With `--trace-out campaign.jsonl` every injected fault is streamed as
//! a `FaultInjected` event (strike tick plus `ace_hit`/`masked` outcome).

use relsim_ace::fault_injection::validate_counters_traced;
use relsim_cpu::CoreConfig;

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut sink = match obs_args.sink() {
        Ok(sink) => sink,
        Err(e) => {
            relsim_obs::error!("could not open --trace-out: {e}");
            std::process::exit(1);
        }
    };
    let quick = std::env::args().any(|a| a == "--quick");
    let (ticks, injections) = if quick {
        (60_000, 50_000)
    } else {
        (300_000, 400_000)
    };
    println!("# ACE analysis vs Monte Carlo fault injection");
    println!(
        "{:<12} {:>6} {:>12} {:>18} {:>10}",
        "benchmark", "core", "counter AVF", "fault-injection", "agree?"
    );
    for name in ["milc", "hmmer", "gobmk", "mcf", "povray", "lbm"] {
        let profile = relsim_trace::spec_profile(name).expect("catalog benchmark");
        for cfg in [CoreConfig::big(), CoreConfig::small()] {
            let kind = cfg.kind;
            let (campaign, counter_avf) =
                validate_counters_traced(&cfg, &profile, ticks, injections, 7, sink.as_mut());
            println!(
                "{:<12} {:>6} {:>12.4} {:>12.4} ±{:.4} {:>6}",
                name,
                kind.to_string(),
                counter_avf,
                campaign.avf_estimate,
                campaign.confidence_95,
                if campaign.consistent_with(counter_avf, 0.01) {
                    "yes"
                } else {
                    "NO"
                }
            );
        }
    }
    println!("# The counters and {injections}-fault campaigns must agree within the 95% CI.");
}
