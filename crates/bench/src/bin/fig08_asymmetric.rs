//! Figure 8: SSER across asymmetric HCMPs with 4 cores (1B3S, 2B2S, 3B1S).

use relsim::experiments::{fig8_asymmetric, summarize};
use relsim_bench::{context, obs_finish, pct, run_obs, save_json, scale_from_args};

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let ctx = context(scale_from_args());
    let results = fig8_asymmetric(&ctx, &mut obs);
    println!("# Figure 8: SSER reduction of reliability-aware scheduling per configuration");
    println!(
        "{:<6} {:>16} {:>16} {:>14}",
        "config", "rel vs random", "rel vs perf-opt", "STP vs perf"
    );
    for (label, comparisons) in &results {
        let s = summarize(comparisons);
        println!(
            "{:<6} {:>16} {:>16} {:>14}",
            label,
            pct(s.rel_vs_random_sser),
            pct(s.rel_vs_perf_sser),
            pct(-s.rel_vs_perf_stp_loss)
        );
    }
    println!("# paper: 1B3S 27.5%, 2B2S 32%, 3B1S 7.8% (vs random); symmetric is best");
    save_json(
        "fig08_asymmetric",
        &results
            .iter()
            .map(|(l, c)| (l.clone(), summarize(c)))
            .collect::<Vec<_>>(),
    );
    obs_finish(&obs_args, &mut obs);
}
