//! `serve` — the always-on simulation daemon (DESIGN.md §14).
//!
//! ```text
//! cargo run --release -p relsim-bench --bin serve -- \
//!     --addr 127.0.0.1:7878 [--port-file target/serve.port] \
//!     [--queue-depth 64] [--serve-workers N] [--quick] \
//!     [--io-timeout-ms 10000] [--max-request-kb 64] \
//!     [--manifest-dir DIR | --no-manifests]
//! ```
//!
//! Accepts `POST /run` simulation requests (the `simulate` CLI flags
//! as a JSON object), `GET /healthz`, `GET /stats`, and
//! `POST /shutdown` (graceful drain). Responses are byte-identical to
//! `simulate --result-out` artifacts; warm requests are answered from
//! the content-addressed cache before admission. Drive it with the
//! `loadgen` binary.

use relsim_bench::{obs_finish, obs_init, run_obs, scale_from_args};
use relsim_obs::info;
use relsim_serve::{Server, ServerConfig, SimEngine};
use std::sync::Arc;
use std::time::Duration;

fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn main() {
    let obs_args = obs_init();
    if flag("--help") || flag("-h") {
        println!(
            "usage: serve [--addr HOST:PORT] [--port-file PATH] [--queue-depth N] \
             [--serve-workers N] [--io-timeout-ms N] [--max-request-kb N] \
             [--manifest-dir DIR | --no-manifests] [--quick]\n\
             routes: POST /run, GET /healthz, GET /stats, POST /shutdown\n{}\n{}",
            relsim_bench::JOBS_HELP,
            relsim_bench::CACHE_HELP
        );
        return;
    }
    let mut obs = run_obs(&obs_args);
    let scale = scale_from_args();

    let manifest_dir = if flag("--no-manifests") {
        None
    } else {
        Some(
            arg_value("--manifest-dir")
                .map(std::path::PathBuf::from)
                .unwrap_or_else(|| relsim_bench::out_dir().join("serve-manifests")),
        )
    };
    let cfg = ServerConfig {
        addr: arg_value("--addr").unwrap_or_else(|| "127.0.0.1:0".to_owned()),
        queue_depth: arg_value("--queue-depth").map_or(64, |v| v.parse().expect("--queue-depth")),
        exec_workers: arg_value("--serve-workers").map_or_else(relsim::pool::default_jobs, |v| {
            v.parse().expect("--serve-workers")
        }),
        io_timeout: Duration::from_millis(
            arg_value("--io-timeout-ms").map_or(10_000, |v| v.parse().expect("--io-timeout-ms")),
        ),
        max_request_bytes: 1024
            * arg_value("--max-request-kb").map_or(64, |v| v.parse().expect("--max-request-kb")),
        manifest_dir,
    };

    // The expensive shared step: the isolated-run reference table
    // (content-cached on disk, so restarts are cheap).
    let ctx = relsim_bench::context(scale);
    let engine = Arc::new(SimEngine::new(ctx.refs));

    let server = match Server::start(engine, cfg) {
        Ok(s) => s,
        Err(e) => {
            relsim_obs::error!("serve: cannot bind: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    if let Some(path) = arg_value("--port-file") {
        if let Err(e) =
            relsim_obs::write_atomic(std::path::Path::new(&path), addr.to_string().as_bytes())
        {
            relsim_obs::error!("serve: cannot write port file {path:?}: {e}");
            std::process::exit(1);
        }
    }
    info!("serve: listening on {addr} (POST /run; POST /shutdown to drain)");

    // Foreground until a client asks for shutdown; there is no signal
    // handling without external crates, so /shutdown is the one door.
    while !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(100));
    }
    info!("serve: draining in-flight work...");
    let snap = server.shutdown();
    let requests = snap.counter("serve.requests").unwrap_or(0);
    let warm = snap.counter("serve.warm_hits").unwrap_or(0)
        + snap.counter("serve.queued_hits").unwrap_or(0);
    info!(
        "serve: done — {requests} requests, {warm} warm, {} cold, {} shed, {} failed",
        snap.counter("serve.cold_runs").unwrap_or(0),
        snap.counter("serve.shed").unwrap_or(0),
        snap.counter("serve.failures").unwrap_or(0)
    );
    obs.recorder.merge_snapshot(&snap);
    obs_finish(&obs_args, &mut obs);
}
