//! Compare two Figure 6 result files (e.g. before/after a simulator or
//! scheduler change):
//!
//! ```text
//! cargo run --release -p relsim-bench --bin compare_runs -- old.json new.json
//! ```
//!
//! Defaults to comparing `target/experiments/fig06_sser_stp.json` against
//! itself if no arguments are given (a smoke mode).

use relsim::experiments::{summarize, MixComparison, SchedKind};
use relsim_bench::pct;

fn load(path: &str) -> Vec<MixComparison> {
    let bytes = std::fs::read(path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    serde_json::from_slice(&bytes).unwrap_or_else(|e| panic!("parse {path}: {e}"))
}

fn main() {
    relsim_bench::obs_init();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let default = "target/experiments/fig06_sser_stp.json".to_owned();
    let (old_path, new_path) = match args.as_slice() {
        [a, b] => (a.clone(), b.clone()),
        [] => (default.clone(), default),
        _ => {
            relsim_obs::error!("usage: compare_runs <old.json> <new.json>");
            std::process::exit(2);
        }
    };
    let old = load(&old_path);
    let new = load(&new_path);
    let so = summarize(&old);
    let sn = summarize(&new);
    println!("# Figure 6 comparison: {old_path} -> {new_path}");
    println!(
        "{:<36} {:>12} {:>12} {:>10}",
        "metric", "old", "new", "delta"
    );
    for (name, a, b) in [
        (
            "rel vs random SSER reduction",
            so.rel_vs_random_sser,
            sn.rel_vs_random_sser,
        ),
        (
            "rel vs perf SSER reduction",
            so.rel_vs_perf_sser,
            sn.rel_vs_perf_sser,
        ),
        (
            "rel STP loss vs perf",
            so.rel_vs_perf_stp_loss,
            sn.rel_vs_perf_stp_loss,
        ),
        (
            "perf vs random SSER reduction",
            so.perf_vs_random_sser,
            sn.perf_vs_random_sser,
        ),
    ] {
        println!(
            "{name:<36} {:>12} {:>12} {:>10}",
            pct(a),
            pct(b),
            pct(b - a)
        );
    }
    // Per-mix largest movers.
    let movers: Vec<(String, f64)> = old
        .iter()
        .filter_map(|o| {
            let n = new.iter().find(|n| n.mix.benchmarks == o.mix.benchmarks)?;
            let delta = n.sser_vs_random(SchedKind::RelOpt) - o.sser_vs_random(SchedKind::RelOpt);
            Some((o.mix.benchmarks.join("+"), delta))
        })
        .collect();
    // A NaN delta (a broken run in either file) must not be ranked among
    // real movements — |NaN| sorts arbitrarily under total_cmp. Surface
    // those workloads explicitly instead.
    let (invalid, mut movers): (Vec<_>, Vec<_>) = movers.into_iter().partition(|(_, d)| d.is_nan());
    movers.sort_by(|a, b| b.1.abs().total_cmp(&a.1.abs()));
    println!("\n# largest per-workload movement in rel-opt normalized SSER:");
    for (name, delta) in movers.iter().take(5) {
        println!("  {name:<44} {:>8}", pct(*delta));
    }
    for (name, _) in &invalid {
        println!("  {name:<44} {:>8}", "NaN");
        relsim_obs::warn!("workload {name} has a non-finite SSER delta (broken run?)");
    }
}
