//! Perf-trajectory benchmark: a fixed canonical workload timed with the
//! event-horizon skip engine on and off, written to `BENCH_perf.json` at
//! the repo root so throughput is machine-readable across PRs.
//!
//! The canonical workload is the 4B4S eight-program mix at quick scale
//! under the reliability scheduler (fixed seed), run in both engines
//! (fully detailed and `--sample 1500:15000:1`), plus the quick-scale
//! scheduler-comparison grid that dominates `run_all --quick`. Results
//! are byte-identical between modes (the horizon-equivalence suite is
//! the referee), so the JSON records pure wall-clock trajectory.
//!
//! `./ci.sh bench` runs this and prints the delta against the committed
//! JSON. `--check` (wired as `./ci.sh bench-check` and a CI step) gates
//! the detailed-engine rows: a `-detailed-`/`-membound-` slowdown beyond
//! the noise-aware tolerance exits 1; sampled rows stay warn-only.

use relsim::experiments::{
    compare_schedulers, hcmp_config, run_mix_traced, Context, Scale, SchedKind,
};
use relsim::mixes::Mix;
use relsim::{sampling, skip, SamplingConfig, SamplingParams};
use relsim_bench::perf::{compare, RowStat};
use relsim_obs::{info, RunObs};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::time::Instant;

/// Repetitions per timed row; the fastest repeat is reported. One
/// additional unrecorded warm-up run precedes them so page-cache and
/// allocator effects land outside the samples.
const BENCH_REPEATS: usize = 5;

/// Tick count for the timed single-mix rows. Longer than `Scale::quick`
/// runs so per-row wall times sit well clear of timer and scheduler
/// noise; the quick-grid timing below keeps the exact `run_all --quick`
/// duration.
const BENCH_RUN_TICKS: u64 = 1_000_000;

/// One timed configuration of the canonical workload.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PerfRow {
    /// `<workload>-<engine>-<skip|noskip>`.
    name: String,
    /// Best wall-clock milliseconds across the repeats (excludes
    /// context build).
    wall_ms: f64,
    /// Every repeat's wall time in measurement order, milliseconds.
    samples_ms: Vec<f64>,
    /// Population standard deviation of the repeats, milliseconds.
    stddev_ms: f64,
    /// Relative spread of the repeats: `(max - min) / min`.
    jitter: f64,
    /// Global ticks simulated.
    ticks: u64,
    /// Global ticks per wall-clock second.
    ticks_per_sec: f64,
    /// Detailed per-core ticks the horizon engine skipped.
    skipped_ticks: u64,
    /// Skipped fraction of all detailed per-core ticks.
    skipped_fraction: f64,
}

impl PerfRow {
    /// The row's sample statistics, for the perf-trend comparison. Rows
    /// from snapshots that predate per-sample recording degrade to a
    /// single sample at the recorded best.
    fn stat(&self) -> RowStat {
        let samples = if self.samples_ms.is_empty() {
            vec![self.wall_ms]
        } else {
            self.samples_ms.clone()
        };
        RowStat::from_samples(&self.name, samples)
    }
}

/// One retired snapshot in the rolling perf history: enough to plot a
/// trajectory (name, best wall, throughput per row) without keeping
/// every full report forever.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HistoryEntry {
    model_version: u32,
    rows: Vec<HistoryRow>,
}

/// One row of a retired snapshot.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct HistoryRow {
    name: String,
    wall_ms: f64,
    ticks_per_sec: f64,
}

/// Retired snapshots kept in the rolling history.
const HISTORY_CAP: usize = 20;

/// Wall time of the quick-scale scheduler-comparison grid (the bulk of
/// `run_all --quick`), skip vs no-skip.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct QuickGridTiming {
    skip_wall_ms: f64,
    noskip_wall_ms: f64,
    speedup: f64,
}

/// Wall time of a full `run_all --quick` invocation with a cold result
/// cache vs an immediate warm repeat against the same cache directory.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct CacheTiming {
    cold_wall_ms: f64,
    warm_wall_ms: f64,
    /// `cold / warm` wall-time ratio.
    speedup: f64,
    /// Fraction of the warm run's cache lookups served from the cache.
    warm_hit_rate: f64,
}

/// The machine-readable perf trajectory, one snapshot per PR.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct PerfReport {
    model_version: u32,
    rows: Vec<PerfRow>,
    quick_grid: QuickGridTiming,
    /// Cold vs warm result-cache wall time of `run_all --quick`; `None`
    /// when the sibling `run_all` binary was not built alongside this one
    /// (older committed snapshots also deserialize to `None`).
    cache: Option<CacheTiming>,
    /// `noskip / skip` wall-time ratio, fully detailed canonical run.
    detailed_speedup: f64,
    /// Same ratio with the interval-sampling engine active.
    sampled_speedup: f64,
    /// Same ratio on the stall-heavy memory-bound companion workload.
    membound_speedup: f64,
    /// Rolling history of previously committed snapshots, oldest first,
    /// capped at [`HISTORY_CAP`]; each refresh retires the snapshot it
    /// replaces into this list.
    history: Vec<HistoryEntry>,
}

impl PerfReport {
    /// Compress this report into one history entry.
    fn to_history(&self) -> HistoryEntry {
        HistoryEntry {
            model_version: self.model_version,
            rows: self
                .rows
                .iter()
                .map(|r| HistoryRow {
                    name: r.name.clone(),
                    wall_ms: r.wall_ms,
                    ticks_per_sec: r.ticks_per_sec,
                })
                .collect(),
        }
    }
}

/// The fixed stall-heavy companion workload: eight memory-dominated
/// programs, where skipped ROB-head fills and inorder stalls carry the
/// bulk of the ticks. This is where the horizon engine pays most.
fn memory_bound_mix() -> Mix {
    Mix {
        category: "8MEM".to_string(),
        benchmarks: [
            "milc",
            "lbm",
            "libquantum",
            "soplex",
            "mcf",
            "GemsFDTD",
            "omnetpp",
            "astar",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect(),
    }
}

/// Time one canonical 4B4S run and collect its skip statistics. The run
/// is repeated and the fastest wall time kept — the run itself is
/// deterministic, so the minimum is the least-noisy estimate of its cost.
fn timed_run(ctx: &Context, name: &str, mix: &Mix, sampled: bool, skip_on: bool) -> PerfRow {
    sampling::set_default(if sampled {
        Some(SamplingConfig::parse("1500:15000:1").expect("claimed config"))
    } else {
        None
    });
    skip::set_default_enabled(skip_on);
    let cfg = hcmp_config(ctx, 4, 4);
    let mut samples_ms = Vec::with_capacity(BENCH_REPEATS);
    let mut obs = RunObs::disabled();
    let mut duration = 0;
    let mut n_cores = 0;
    for rep in 0..=BENCH_REPEATS {
        obs = RunObs::disabled();
        let t0 = Instant::now();
        let (_eval, result) = run_mix_traced(
            ctx,
            &cfg,
            mix,
            SchedKind::RelOpt,
            SamplingParams::default(),
            &mut obs,
        );
        if rep > 0 {
            samples_ms.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        duration = result.duration;
        n_cores = result.cores.len() as u64;
    }
    sampling::set_default(None);
    skip::set_default_enabled(true);
    let snap = obs.recorder.snapshot();
    let skipped = snap.counter("sim.skipped_ticks").unwrap_or(0);
    let detailed = snap.counter("sim.detailed_ticks").unwrap_or(0);
    let detailed_core_ticks = detailed * n_cores;
    let stat = RowStat::from_samples(name, samples_ms);
    PerfRow {
        name: name.to_string(),
        wall_ms: stat.wall_ms,
        ticks: duration,
        ticks_per_sec: duration as f64 / (stat.wall_ms / 1e3),
        skipped_ticks: skipped,
        skipped_fraction: if detailed_core_ticks > 0 {
            skipped as f64 / detailed_core_ticks as f64
        } else {
            0.0
        },
        samples_ms: stat.samples_ms,
        stddev_ms: stat.stddev_ms,
        jitter: stat.jitter,
    }
}

/// Time the quick-scale `compare_schedulers` grid (fully detailed).
fn timed_grid(ctx: &Context, skip_on: bool) -> f64 {
    sampling::set_default(None);
    skip::set_default_enabled(skip_on);
    let cfg = hcmp_config(ctx, 2, 2);
    let mixes = ctx.four_program_mixes();
    let mut obs = RunObs::disabled();
    let t0 = Instant::now();
    let comparisons = compare_schedulers(ctx, &cfg, &mixes, SamplingParams::default(), &mut obs);
    let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
    skip::set_default_enabled(true);
    assert!(!comparisons.is_empty(), "grid produced no results");
    wall_ms
}

/// Time one `run_all --quick` child against the given scratch output and
/// cache directories, returning its wall time in milliseconds.
fn timed_run_all(run_all: &Path, scratch: &Path, metrics_name: &str) -> Option<f64> {
    let t0 = Instant::now();
    let status = Command::new(run_all)
        .args(["--quick", "--quiet", "--metrics-out"])
        .arg(scratch.join(metrics_name))
        .env("RELSIM_OUT", scratch.join("out"))
        .env("RELSIM_CACHE_DIR", scratch.join("cache"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status();
    match status {
        Ok(s) if s.success() => Some(t0.elapsed().as_secs_f64() * 1e3),
        Ok(s) => {
            relsim_obs::warn!("run_all --quick exited with {s}; skipping cache timing");
            None
        }
        Err(e) => {
            relsim_obs::warn!("could not spawn {run_all:?}: {e}; skipping cache timing");
            None
        }
    }
}

/// Time a full `run_all --quick` twice against a fresh cache directory —
/// once cold, once warm — in an isolated scratch output directory, and
/// read the warm run's hit rate from its metrics snapshot. Returns `None`
/// (with a warning) when the sibling `run_all` binary is missing, e.g.
/// under `cargo run --bin bench_perf` without a prior workspace build.
fn timed_cache_runs() -> Option<CacheTiming> {
    let run_all = std::env::current_exe()
        .ok()?
        .parent()?
        .join(format!("run_all{}", std::env::consts::EXE_SUFFIX));
    if !run_all.exists() {
        relsim_obs::warn!("{run_all:?} not built; skipping the cold/warm cache timing");
        return None;
    }
    let scratch = std::env::temp_dir().join(format!("relsim-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);
    if let Err(e) = std::fs::create_dir_all(&scratch) {
        relsim_obs::warn!("cannot create scratch dir {scratch:?}: {e}; skipping cache timing");
        return None;
    }
    let timing = (|| {
        let cold_wall_ms = timed_run_all(&run_all, &scratch, "metrics-cold.json")?;
        let warm_wall_ms = timed_run_all(&run_all, &scratch, "metrics-warm.json")?;
        let warm_hit_rate = std::fs::read(scratch.join("metrics-warm.json"))
            .ok()
            .and_then(|b| serde_json::from_slice::<relsim_obs::MetricsSnapshot>(&b).ok())
            .map_or(0.0, |snap| {
                let hits = snap.counter("cache.hits").unwrap_or(0);
                let misses = snap.counter("cache.misses").unwrap_or(0);
                if hits + misses == 0 {
                    0.0
                } else {
                    hits as f64 / (hits + misses) as f64
                }
            });
        Some(CacheTiming {
            cold_wall_ms,
            warm_wall_ms,
            speedup: cold_wall_ms / warm_wall_ms,
            warm_hit_rate,
        })
    })();
    let _ = std::fs::remove_dir_all(&scratch);
    timing
}

fn repo_root() -> PathBuf {
    // crates/bench -> crates -> repo root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate lives two levels under the repo root")
        .to_path_buf()
}

/// Time the six canonical single-mix rows at the bench tick count.
fn measure_rows(ctx: &Context) -> Vec<PerfRow> {
    let canonical = ctx.eight_program_mixes().remove(0);
    let memory = memory_bound_mix();
    let mut row_ctx = ctx.clone();
    row_ctx.scale.run_ticks = BENCH_RUN_TICKS;
    vec![
        timed_run(&row_ctx, "4B4S-detailed-skip", &canonical, false, true),
        timed_run(&row_ctx, "4B4S-detailed-noskip", &canonical, false, false),
        timed_run(&row_ctx, "4B4S-sampled-skip", &canonical, true, true),
        timed_run(&row_ctx, "4B4S-sampled-noskip", &canonical, true, false),
        timed_run(&row_ctx, "4B4S-membound-skip", &memory, false, true),
        timed_run(&row_ctx, "4B4S-membound-noskip", &memory, false, false),
    ]
}

/// Parse `--check-inject F` / `--check-inject=F`: an artificial slowdown
/// factor applied to the fresh measurements, for exercising the gate
/// itself (`--check-inject 1.2` must fail an otherwise healthy tree).
fn parse_check_inject<I: IntoIterator<Item = String>>(args: I) -> f64 {
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let value = if let Some(v) = arg.strip_prefix("--check-inject=") {
            Some(v.to_string())
        } else if arg == "--check-inject" {
            iter.next()
        } else {
            continue;
        };
        match value.as_deref().map(str::parse::<f64>) {
            Some(Ok(f)) if f > 0.0 => return f,
            other => {
                relsim_obs::warn!(
                    "--check-inject expects a positive factor, got {:?}; ignoring",
                    other.map(|_| value.as_deref().unwrap_or("").to_string())
                );
                return 1.0;
            }
        }
    }
    1.0
}

/// `bench_perf --check`: re-time only the canonical rows and diff them
/// against the committed `BENCH_perf.json` with noise-aware thresholds.
/// Detailed-engine rows (`-detailed-`, `-membound-`) gate: a regression
/// beyond tolerance exits 1. Sampled rows are warn-only — they print
/// REGRESSED but never fail the check (see [`relsim_bench::perf::gating`]
/// for the rationale). Exits 2 when there is no comparable committed
/// snapshot.
fn run_check(inject: f64) -> ! {
    let path = repo_root().join("BENCH_perf.json");
    let prev: PerfReport = match std::fs::read(&path) {
        Ok(bytes) => match serde_json::from_slice(&bytes) {
            Ok(p) => p,
            Err(e) => {
                relsim_obs::error!(
                    "committed {path:?} does not parse ({e}); \
                     refresh it with `bench_perf` before `--check`"
                );
                std::process::exit(2);
            }
        },
        Err(e) => {
            relsim_obs::error!("no committed {path:?} ({e}); nothing to check against");
            std::process::exit(2);
        }
    };
    let ctx = relsim_bench::context(Scale::quick());
    info!("bench_perf --check: re-timing the canonical rows");
    let rows = measure_rows(&ctx);
    let committed: Vec<RowStat> = prev.rows.iter().map(PerfRow::stat).collect();
    let fresh: Vec<RowStat> = rows
        .iter()
        .map(|r| {
            let mut s = r.stat();
            if inject != 1.0 {
                for v in &mut s.samples_ms {
                    *v *= inject;
                }
                s = RowStat::from_samples(&s.name, s.samples_ms);
            }
            s
        })
        .collect();
    if inject != 1.0 {
        println!("check: injecting an artificial {inject:.2}x slowdown into fresh timings");
    }
    let deltas = compare(&committed, &fresh);
    if deltas.is_empty() {
        relsim_obs::error!("no committed row matches a fresh row; snapshot too old to compare");
        std::process::exit(2);
    }
    let mut gate_failed = false;
    let mut warned = false;
    for d in &deltas {
        println!(
            "check {:24} {:+6.1}% wall (tolerance {:+.1}%)  {}",
            d.name,
            (d.ratio - 1.0) * 100.0,
            d.threshold * 100.0,
            match (d.regressed, d.gating) {
                (false, _) => "ok",
                (true, true) => "REGRESSED",
                (true, false) => "REGRESSED (warn-only: sampled row)",
            }
        );
        gate_failed |= d.regressed && d.gating;
        warned |= d.regressed && !d.gating;
    }
    if gate_failed {
        println!("check: detailed-engine perf regression beyond noise tolerance; see rows above");
        std::process::exit(1);
    }
    if warned {
        println!("check: warn-only rows regressed; gating rows are all within tolerance");
    } else {
        println!("check: all {} rows within tolerance", deltas.len());
    }
    std::process::exit(0);
}

fn main() {
    let obs_args = relsim_bench::obs_init();
    // The timed rows measure the *engine*: result caching in this process
    // would turn every repeat into a memory-tier hit. The cold/warm cache
    // rows time child `run_all --quick` processes against their own
    // scratch cache directory instead.
    relsim_cache::configure(None);
    if std::env::args().any(|a| a == "--help" || a == "-h") {
        println!(
            "usage: bench_perf [--jobs N] [--check [--check-inject F]]\n\
             Times the canonical 4B4S workload (both engines, skip on/off), the\n\
             quick-scale scheduler grid, and a cold-vs-warm result-cache pass of\n\
             run_all --quick, then writes BENCH_perf.json at the repo root.\n\
             --check               re-time only the canonical rows and diff them\n\
             \x20                      against the committed BENCH_perf.json; exits 1\n\
             \x20                      when a detailed-engine row (-detailed-/-membound-)\n\
             \x20                      slows beyond the noise tolerance; sampled rows\n\
             \x20                      are warn-only\n\
             --check-inject F      multiply the fresh --check timings by F (gate\n\
             \x20                      self-test; 1.2 must fail a healthy tree)\n{}",
            relsim_bench::JOBS_HELP
        );
        return;
    }
    if std::env::args().any(|a| a == "--check") {
        run_check(parse_check_inject(std::env::args().skip(1)));
    }
    let mut obs = relsim_bench::run_obs(&obs_args);
    // The context is the shared, cached setup step; it is deliberately
    // outside every timed region.
    let ctx = relsim_bench::context(Scale::quick());

    info!("bench_perf: canonical 4B4S runs (detailed/sampled x skip/noskip)");
    // The single-mix rows run longer than quick scale for stable timing.
    let rows = measure_rows(&ctx);
    info!("bench_perf: quick-scale scheduler grid (skip vs noskip)");
    let grid_skip = timed_grid(&ctx, true);
    let grid_noskip = timed_grid(&ctx, false);
    info!("bench_perf: run_all --quick, cold vs warm result cache");
    let cache = timed_cache_runs();

    let mut report = PerfReport {
        model_version: relsim_bench::MODEL_VERSION,
        detailed_speedup: rows[1].wall_ms / rows[0].wall_ms,
        sampled_speedup: rows[3].wall_ms / rows[2].wall_ms,
        membound_speedup: rows[5].wall_ms / rows[4].wall_ms,
        quick_grid: QuickGridTiming {
            skip_wall_ms: grid_skip,
            noskip_wall_ms: grid_noskip,
            speedup: grid_noskip / grid_skip,
        },
        cache,
        rows,
        history: Vec::new(),
    };

    for r in &report.rows {
        println!(
            "{:24} {:>9.1} ms (±{:>5.1})  {:>12.0} ticks/s  skipped {:>5.1}%",
            r.name,
            r.wall_ms,
            r.stddev_ms,
            r.ticks_per_sec,
            r.skipped_fraction * 100.0
        );
    }
    println!(
        "quick grid: skip {:.1} ms vs noskip {:.1} ms -> {:.2}x",
        report.quick_grid.skip_wall_ms, report.quick_grid.noskip_wall_ms, report.quick_grid.speedup
    );
    match &report.cache {
        Some(c) => println!(
            "run_all --quick: cold {:.0} ms vs warm {:.0} ms -> {:.2}x (warm hit rate {:.0}%)",
            c.cold_wall_ms,
            c.warm_wall_ms,
            c.speedup,
            c.warm_hit_rate * 100.0
        ),
        None => println!("run_all --quick: cache timing skipped (run_all binary unavailable)"),
    }
    println!(
        "speedup: detailed {:.2}x, sampled {:.2}x, membound {:.2}x",
        report.detailed_speedup, report.sampled_speedup, report.membound_speedup
    );

    // Perf trajectory: print the delta against the committed snapshot,
    // retire it into the rolling history, then overwrite it.
    let path = repo_root().join("BENCH_perf.json");
    if let Ok(bytes) = std::fs::read(&path) {
        match serde_json::from_slice::<PerfReport>(&bytes) {
            Ok(prev) => {
                for r in &report.rows {
                    if let Some(p) = prev.rows.iter().find(|p| p.name == r.name) {
                        println!(
                            "delta {:24} {:+.1}% wall vs committed ({:.1} ms -> {:.1} ms)",
                            r.name,
                            (r.wall_ms / p.wall_ms - 1.0) * 100.0,
                            p.wall_ms,
                            r.wall_ms
                        );
                    }
                }
                println!(
                    "delta quick grid: {:+.1}% wall vs committed",
                    (report.quick_grid.skip_wall_ms / prev.quick_grid.skip_wall_ms - 1.0) * 100.0
                );
                report.history = prev.history.clone();
                report.history.push(prev.to_history());
                if report.history.len() > HISTORY_CAP {
                    let drop = report.history.len() - HISTORY_CAP;
                    report.history.drain(..drop);
                }
            }
            Err(e) => info!("committed BENCH_perf.json unreadable ({e}); rewriting"),
        }
    } else {
        info!("no committed BENCH_perf.json; writing the first snapshot");
    }
    let bytes = serde_json::to_vec_pretty(&report).expect("serialize perf report");
    match relsim_obs::write_atomic(&path, &bytes) {
        Ok(()) => info!("wrote {path:?}"),
        Err(e) => {
            relsim_obs::error!("cannot write {path:?}: {e}");
            std::process::exit(1);
        }
    }
    relsim_bench::obs_finish(&obs_args, &mut obs);
}
