//! Figure 2: normalized big-core CPI stacks, in the same (ascending-AVF)
//! benchmark order as Figure 1.

use relsim_bench::{context, save_json, scale_from_args};
use relsim_cpu::CPI_COMPONENT_NAMES;

fn main() {
    relsim_bench::obs_init();
    let ctx = context(scale_from_args());
    let rows = relsim::experiments::isolated_characterization(&ctx);
    println!("# Figure 2: normalized CPI stacks (order matches Figure 1)");
    print!("{:<12}", "benchmark");
    for n in CPI_COMPONENT_NAMES {
        print!(" {n:>9}");
    }
    println!();
    for r in &rows {
        let n = r.big.cpi.normalized();
        print!("{:<12}", r.name);
        for v in n {
            print!(" {v:>9.3}");
        }
        println!();
    }
    save_json(
        "fig02_cpi_stacks",
        &rows
            .iter()
            .map(|r| (r.name.clone(), r.big.cpi.normalized()))
            .collect::<Vec<_>>(),
    );
}
