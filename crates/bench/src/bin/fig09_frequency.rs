//! Figure 9: 2B2S with the small cores at half frequency (1.33 GHz).

use relsim::experiments::{fig6_comparisons, fig9_low_frequency, summarize};
use relsim_bench::{context, obs_finish, pct, run_obs, save_json, scale_from_args};

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let ctx = context(scale_from_args());
    println!("# Figure 9: small-core frequency sensitivity (2B2S)");
    let full = summarize(&fig6_comparisons(&ctx, &mut obs));
    let half = summarize(&fig9_low_frequency(&ctx, &mut obs));
    println!(
        "small @ 2.66 GHz: rel vs random {} (paper 32.0%), perf vs random {} (paper 7.3%)",
        pct(full.rel_vs_random_sser),
        pct(full.perf_vs_random_sser)
    );
    println!(
        "small @ 1.33 GHz: rel vs random {} (paper 29.8%), perf vs random {} (paper 13.0%)",
        pct(half.rel_vs_random_sser),
        pct(half.perf_vs_random_sser)
    );
    save_json("fig09_frequency", &[("2.66GHz", full), ("1.33GHz", half)]);
    obs_finish(&obs_args, &mut obs);
}
