//! Render the paper's figures as SVG files from the JSON artifacts under
//! `target/experiments/` (run `run_all` first).

use relsim::experiments::{by_category, ComparisonSummary, IsolatedRow, MixComparison, SchedKind};
use relsim_bench::out_dir;
use relsim_bench::svg::{Svg, PALETTE};
use relsim_cpu::CPI_COMPONENT_NAMES;

fn load<T: serde::de::DeserializeOwned>(name: &str) -> Option<T> {
    let bytes = std::fs::read(out_dir().join(format!("{name}.json"))).ok()?;
    serde_json::from_slice(&bytes).ok()
}

fn save(name: &str, doc: String) {
    let path = out_dir().join(format!("{name}.svg"));
    match std::fs::write(&path, doc) {
        Ok(()) => relsim_obs::info!("wrote {path:?}"),
        Err(e) => relsim_obs::warn!("could not write {path:?}: {e}"),
    }
}

fn main() {
    relsim_bench::obs_init();
    if let Some(rows) = load::<Vec<IsolatedRow>>("fig01_avf") {
        // Figure 1: sorted AVF scatter.
        let avfs: Vec<f64> = rows.iter().map(|r| r.big.avf).collect();
        let max = avfs.iter().cloned().fold(0.0, f64::max) * 1.1;
        let mut svg = Svg::new("Figure 1: big-core AVF (sorted)");
        svg.axes(0.0, max, "AVF");
        svg.series(&avfs, 0.0, max, PALETTE[0], "SPEC CPU2006", 0);
        save("fig01_avf", svg.finish());

        // Figure 2: normalized CPI stacks.
        let labels: Vec<String> = rows.iter().map(|r| r.name.clone()).collect();
        let stacks: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.big.cpi.normalized().to_vec())
            .collect();
        let mut svg = Svg::new("Figure 2: normalized CPI stacks (big core)");
        svg.axes(0.0, 1.0, "fraction of cycles");
        svg.stacked_bars(&labels, &stacks, &CPI_COMPONENT_NAMES);
        save("fig02_cpi_stacks", svg.finish());

        // Figure 5: ABC stacks.
        let stacks: Vec<Vec<f64>> = rows
            .iter()
            .map(|r| r.big.stack.normalized().to_vec())
            .collect();
        let mut svg = Svg::new("Figure 5: ABC stacks (big core)");
        svg.axes(0.0, 1.0, "fraction of core ABC");
        svg.stacked_bars(&labels, &stacks, &relsim_ace::ABC_STACK_NAMES);
        save("fig05_abc_stacks", svg.finish());
    } else {
        relsim_obs::warn!("fig01_avf.json missing — run run_all first");
    }

    if let Some(comparisons) = load::<Vec<MixComparison>>("fig06_sser_stp") {
        // Figure 6a: sorted per-workload normalized SSER.
        let mut rel: Vec<f64> = comparisons
            .iter()
            .map(|c| c.sser_vs_random(SchedKind::RelOpt))
            .collect();
        let mut perf: Vec<f64> = comparisons
            .iter()
            .map(|c| c.sser_vs_random(SchedKind::PerfOpt))
            .collect();
        rel.sort_by(f64::total_cmp);
        perf.sort_by(f64::total_cmp);
        let max = perf.iter().chain(&rel).cloned().fold(1.0, f64::max) * 1.05;
        let mut svg = Svg::new("Figure 6(a): SSER normalized to random (sorted per workload)");
        svg.axes(0.0, max, "normalized SSER");
        svg.series(&perf, 0.0, max, PALETTE[1], "performance-optimized", 0);
        svg.series(&rel, 0.0, max, PALETTE[0], "reliability-optimized", 1);
        save("fig06a_sser", svg.finish());

        let mut rel: Vec<f64> = comparisons
            .iter()
            .map(|c| c.stp_vs_random(SchedKind::RelOpt))
            .collect();
        let mut perf: Vec<f64> = comparisons
            .iter()
            .map(|c| c.stp_vs_random(SchedKind::PerfOpt))
            .collect();
        rel.sort_by(f64::total_cmp);
        perf.sort_by(f64::total_cmp);
        let max = perf.iter().chain(&rel).cloned().fold(1.0, f64::max) * 1.05;
        let mut svg = Svg::new("Figure 6(b): STP normalized to random (sorted per workload)");
        svg.axes(0.0, max, "normalized STP");
        svg.series(&perf, 0.0, max, PALETTE[1], "performance-optimized", 0);
        svg.series(&rel, 0.0, max, PALETTE[0], "reliability-optimized", 1);
        save("fig06b_stp", svg.finish());

        // Figure 7: per-category grouped bars.
        let cats = by_category(&comparisons);
        let labels: Vec<String> = cats.iter().map(|(c, _, _)| c.clone()).collect();
        let perf: Vec<f64> = cats.iter().map(|(_, s, _)| s[1] / s[0]).collect();
        let rel: Vec<f64> = cats.iter().map(|(_, s, _)| s[2] / s[0]).collect();
        let mut svg = Svg::new("Figure 7(a): SSER by workload category (normalized to random)");
        svg.axes(0.0, 1.2, "normalized SSER");
        svg.grouped_bars(
            &labels,
            &[
                ("performance-optimized", perf, PALETTE[1]),
                ("reliability-optimized", rel, PALETTE[0]),
            ],
            1.2,
        );
        save("fig07_categories", svg.finish());
    }

    // Figure 8: asymmetric configs.
    let mut labels = Vec::new();
    let mut vals = Vec::new();
    for label in ["1B3S", "2B2S", "3B1S"] {
        if let Some(s) = load::<ComparisonSummary>(&format!("fig08_{label}")) {
            labels.push(label.to_string());
            vals.push(s.rel_vs_random_sser * 100.0);
        }
    }
    if !labels.is_empty() {
        let mut svg = Svg::new("Figure 8: SSER reduction of rel-opt vs random (%)");
        svg.axes(0.0, 40.0, "SSER reduction (%)");
        svg.grouped_bars(
            &labels,
            &[("reliability-optimized", vals, PALETTE[0])],
            40.0,
        );
        save("fig08_asymmetric", svg.finish());
    }
}
