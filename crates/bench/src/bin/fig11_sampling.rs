//! Figure 11: SSER and STP while varying the sampling parameters (r, s):
//! resample every r quanta, for a sampling quantum of fraction s.

use relsim::experiments::{fig11_sampling_sweep, summarize};
use relsim_bench::{context, obs_finish, pct, run_obs, save_json, scale_from_args};

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let ctx = context(scale_from_args());
    let settings = [
        (5u32, 0.1f64),
        (10, 0.05),
        (10, 0.1),
        (10, 0.2),
        (50, 0.1),
        (100, 0.1),
    ];
    let results = fig11_sampling_sweep(&ctx, &settings, &mut obs);
    println!("# Figure 11: sampling-parameter sweep on 2B2S (rel-opt vs random)");
    println!(
        "{:<12} {:>14} {:>14}",
        "(r, s)", "SSER reduction", "STP vs random"
    );
    for ((r, s), comparisons) in &results {
        let sum = summarize(comparisons);
        println!(
            "({:>3}, {:>4}) {:>15} {:>14}",
            r,
            s,
            pct(sum.rel_vs_random_sser),
            pct(sum.rel_vs_random_stp)
        );
    }
    println!("# paper: reliability improves with smaller sampling quanta and longer periods");
    save_json(
        "fig11_sampling",
        &results
            .iter()
            .map(|(k, c)| (*k, summarize(c)))
            .collect::<Vec<_>>(),
    );
    // (schema matches run_all's fig11 artifact)
    obs_finish(&obs_args, &mut obs);
}
