//! Figure 11 and the interval-sampling engine study.
//!
//! Part 1 validates the fast simulation engine (`relsim::sampling`): the
//! full 2B2S `mix × scheduler` grid runs fully detailed and then under a
//! few `--sample` configurations, reporting metric error against the
//! detailed-cycle reduction.
//!
//! Part 2 reproduces the paper's Figure 11: SSER and STP while varying
//! the *scheduler's* sampling parameters (r, s) — resample every r
//! quanta, for a sampling quantum of fraction s.

use relsim::experiments::{fig11_sampling_sweep, sampling_accuracy_study, summarize};
use relsim::SamplingConfig;
use relsim_bench::{context, obs_finish, pct, run_obs, save_json, scale_from_args};

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let ctx = context(scale_from_args());

    let configs: Vec<SamplingConfig> = ["1000:4000:1", "2000:8000:1", "1500:15000:1"]
        .iter()
        .map(|s| SamplingConfig::parse(s).expect("valid config"))
        .collect();
    let rows = sampling_accuracy_study(&ctx, &configs, &mut obs);
    println!("# Interval-sampled engine: sampled vs fully detailed (2B2S grid)");
    println!(
        "{:<16} {:>10} {:>10} {:>9} {:>9}",
        "--sample", "detailed%", "reduction", "SSER err", "STP err"
    );
    for r in &rows {
        println!(
            "{:<16} {:>9.1}% {:>9.1}x {:>8.2}% {:>8.2}%",
            r.config,
            r.detailed_fraction * 100.0,
            r.detailed_cycle_reduction(),
            r.sser_err * 100.0,
            r.stp_err * 100.0
        );
    }
    save_json("fig11_engine_sampling", &rows);

    let settings = [
        (5u32, 0.1f64),
        (10, 0.05),
        (10, 0.1),
        (10, 0.2),
        (50, 0.1),
        (100, 0.1),
    ];
    let results = fig11_sampling_sweep(&ctx, &settings, &mut obs);
    println!("# Figure 11: sampling-parameter sweep on 2B2S (rel-opt vs random)");
    println!(
        "{:<12} {:>14} {:>14}",
        "(r, s)", "SSER reduction", "STP vs random"
    );
    for ((r, s), comparisons) in &results {
        let sum = summarize(comparisons);
        println!(
            "({:>3}, {:>4}) {:>15} {:>14}",
            r,
            s,
            pct(sum.rel_vs_random_sser),
            pct(sum.rel_vs_random_stp)
        );
    }
    println!("# paper: reliability improves with smaller sampling quanta and longer periods");
    save_json(
        "fig11_sampling",
        &results
            .iter()
            .map(|(k, c)| (*k, summarize(c)))
            .collect::<Vec<_>>(),
    );
    // (schema matches run_all's fig11 artifact)
    obs_finish(&obs_args, &mut obs);
}
