//! Ablation: how does the architectural-register liveness fraction
//! (DESIGN.md §1) affect the big/small reliability gap and the oracle
//! scheduling potential? `arch_reg_live_fraction = 1.0` is the literal
//! reading of the paper's "all architectural registers are ACE all of the
//! time"; lower values model write-to-last-read liveness.

use relsim::isolated::ReferenceTable;
use relsim::oracle::oracle_schedules;
use relsim_bench::pct;
use relsim_cpu::CoreConfig;
use relsim_metrics::arithmetic_mean;

fn main() {
    relsim_bench::obs_init();
    let quick = std::env::args().any(|a| a == "--quick");
    let ticks: u64 = if quick { 100_000 } else { 400_000 };
    println!("# Ablation: arch-register liveness fraction vs oracle potential");
    println!(
        "{:>9} {:>12} {:>12} {:>14}",
        "liveness", "milc wSER gap", "gobmk gap", "oracle gain"
    );
    let profiles = relsim_trace::spec2006_profiles();
    for fraction in [1.0, 0.6, 0.3, 0.1, 0.0] {
        let mut big = CoreConfig::big();
        big.bits.arch_reg_live_fraction = fraction;
        let mut small = CoreConfig::small();
        small.bits.arch_reg_live_fraction = fraction;
        let refs = ReferenceTable::build(&profiles, &big, &small, ticks);
        // Per-benchmark wSER reduction from moving big -> small.
        let gap = |name: &str| {
            let b = refs.get(name, relsim_cpu::CoreKind::Big).unwrap();
            let s = refs.get(name, relsim_cpu::CoreKind::Small).unwrap();
            1.0 - (s.abc_rate * b.ips / s.ips) / b.abc_rate
        };
        // Oracle study over a fixed set of divergent workloads.
        let mixes = [
            vec!["milc", "lbm", "gobmk", "sjeng"],
            vec!["bwaves", "GemsFDTD", "perlbench", "mcf"],
            vec!["zeusmp", "leslie3d", "astar", "libquantum"],
        ];
        let gains: Vec<f64> = mixes
            .iter()
            .map(|m| {
                let names: Vec<String> = m.iter().map(|s| s.to_string()).collect();
                oracle_schedules(&refs, &names, 2).ser_gain()
            })
            .collect();
        println!(
            "{:>9.2} {:>12} {:>12} {:>14}",
            fraction,
            pct(gap("milc")),
            pct(gap("gobmk")),
            pct(arithmetic_mean(&gains))
        );
    }
    println!("# Lower liveness -> bigger small-core advantage -> more scheduling headroom.");
}
