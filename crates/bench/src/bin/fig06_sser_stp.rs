//! Figure 6: SSER and STP of the reliability- and performance-optimized
//! schedulers, normalized to random scheduling, for the 4-program
//! workloads on a 2B2S HCMP. Also prints the paper's headline numbers.

use relsim::experiments::{fig6_comparisons, summarize, SchedKind};
use relsim_bench::{context, obs_finish, pct, run_obs, save_json, scale_from_args};

fn main() {
    let obs_args = relsim_bench::obs_init();
    let mut obs = run_obs(&obs_args);
    let ctx = context(scale_from_args());
    let comparisons = fig6_comparisons(&ctx, &mut obs);

    println!("# Figure 6: per-workload SSER & STP normalized to random (2B2S, 4-program)");
    println!(
        "{:<44} {:>10} {:>10} {:>10} {:>10}",
        "workload", "SSER perf", "SSER rel", "STP perf", "STP rel"
    );
    // A NaN normalized SSER (broken reference run) has no place in a
    // sorted ranking; report those workloads explicitly instead of
    // letting total_cmp order them arbitrarily among real results.
    let (mut rows, invalid): (Vec<_>, Vec<_>) = comparisons
        .iter()
        .partition(|c| c.sser_vs_random(SchedKind::RelOpt).is_finite());
    rows.sort_by(|a, b| {
        a.sser_vs_random(SchedKind::RelOpt)
            .total_cmp(&b.sser_vs_random(SchedKind::RelOpt))
    });
    for c in &invalid {
        relsim_obs::warn!(
            "workload {}:{} has non-finite normalized SSER; excluded from ranking",
            c.mix.category,
            c.mix.benchmarks.join("+")
        );
    }
    for c in rows {
        let label = format!("{}:{}", c.mix.category, c.mix.benchmarks.join("+"));
        println!(
            "{:<44} {:>10.3} {:>10.3} {:>10.3} {:>10.3}",
            label,
            c.sser_vs_random(SchedKind::PerfOpt),
            c.sser_vs_random(SchedKind::RelOpt),
            c.stp_vs_random(SchedKind::PerfOpt),
            c.stp_vs_random(SchedKind::RelOpt),
        );
    }

    let s = summarize(&comparisons);
    println!("# Headline numbers (paper values in parentheses):");
    println!(
        "#   rel-opt SSER reduction vs random:    avg {} max {}   (32.0% / 55.6%)",
        pct(s.rel_vs_random_sser),
        pct(s.rel_vs_random_sser_max)
    );
    println!(
        "#   rel-opt SSER reduction vs perf-opt:  avg {} max {}   (25.4% / 60.2%)",
        pct(s.rel_vs_perf_sser),
        pct(s.rel_vs_perf_sser_max)
    );
    println!(
        "#   rel-opt STP loss vs perf-opt:        avg {}            (6.3%)",
        pct(s.rel_vs_perf_stp_loss)
    );
    println!(
        "#   perf-opt SSER reduction vs random:   avg {}            (7.3%)",
        pct(s.perf_vs_random_sser)
    );
    println!(
        "#   rel-opt STP vs random:               avg {}            (~0%)",
        pct(s.rel_vs_random_stp)
    );
    save_json("fig06_sser_stp", &comparisons);
    save_json("fig06_summary", &s);
    obs_finish(&obs_args, &mut obs);
}
