//! Ablation: the reliability/performance Pareto front traced by the
//! blended scheduler objective (`Objective::Weighted`), an extension
//! beyond the paper's pure-SSER and pure-STP schedulers.

use relsim::evaluate::{evaluate, DEFAULT_IFR};
use relsim::experiments::hcmp_config;
use relsim::mixes::Mix;
use relsim::{AppSpec, Objective, SamplingParams, SamplingScheduler, System};
use relsim_bench::{context, scale_from_args};

fn main() {
    relsim_bench::obs_init();
    let ctx = context(scale_from_args());
    let mix = Mix {
        category: "HHLL".into(),
        benchmarks: vec![
            "milc".into(),
            "lbm".into(),
            "gobmk".into(),
            "perlbench".into(),
        ],
    };
    let cfg = hcmp_config(&ctx, 2, 2);
    println!(
        "# Ablation: blended objective sweep on 2B2S ({})",
        mix.benchmarks.join("+")
    );
    println!(
        "{:>16} {:>12} {:>8} {:>8}",
        "reliability wt", "SSER", "STP", "ANTT"
    );
    for pct in [0u8, 25, 50, 75, 100] {
        let specs: Vec<AppSpec> = mix
            .benchmarks
            .iter()
            .enumerate()
            .map(|(i, n)| AppSpec::spec(n, ctx.scale.seed ^ (i as u64 + 1)))
            .collect();
        let mut sched = SamplingScheduler::new(
            Objective::Weighted {
                reliability_pct: pct,
            },
            cfg.core_kinds(),
            cfg.quantum_ticks,
            SamplingParams::default(),
        );
        let mut system = System::new(cfg.clone(), &specs);
        let result = system.run(&mut sched, ctx.scale.run_ticks);
        let e = evaluate(&result, &ctx.refs, DEFAULT_IFR);
        println!(
            "{:>15}% {:>12.3e} {:>8.3} {:>8.3}",
            pct, e.sser, e.stp, e.antt
        );
    }
    println!("# Sweeping the weight traces the SSER/STP trade-off between the");
    println!("# paper's two schedulers; the extremes match them by construction.");
}
