//! Figure 5: per-structure ABC stacks on the big core, plus the
//! ROB-vs-core ABC correlation that justifies the area-optimized counter.

use relsim::experiments::rob_abc_correlation;
use relsim_ace::ABC_STACK_NAMES;
use relsim_bench::{context, save_json, scale_from_args};

fn main() {
    relsim_bench::obs_init();
    let ctx = context(scale_from_args());
    let rows = relsim::experiments::isolated_characterization(&ctx);
    println!("# Figure 5: ABC stacks on the big out-of-order core");
    print!("{:<12}", "benchmark");
    for n in ABC_STACK_NAMES {
        print!(" {n:>9}");
    }
    println!();
    let mut rob_fracs = Vec::new();
    for r in &rows {
        let n = r.big.stack.normalized();
        rob_fracs.push(n[0]);
        print!("{:<12}", r.name);
        for v in n {
            print!(" {v:>9.3}");
        }
        println!();
    }
    let corr = rob_abc_correlation(&rows);
    let mean_rob = rob_fracs.iter().sum::<f64>() / rob_fracs.len() as f64;
    println!("# corr(ROB ABC, core ABC) = {corr:.3} (paper: 0.99)");
    println!("# mean ROB share of core ABC = {mean_rob:.2} (paper: ~0.5)");
    save_json(
        "fig05_abc_stacks",
        &rows
            .iter()
            .map(|r| (r.name.clone(), r.big.stack))
            .collect::<Vec<_>>(),
    );
}
