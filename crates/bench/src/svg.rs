//! Minimal self-contained SVG chart rendering (no dependencies).
//!
//! `render_figs` uses these helpers to turn the JSON experiment artifacts
//! into SVG plots shaped like the paper's figures: sorted-scatter plots
//! (Figure 6), grouped bars (Figures 7-10) and stacked bars (Figures 2
//! and 5).

use std::fmt::Write as _;

/// Chart geometry.
const W: f64 = 640.0;
const H: f64 = 360.0;
const ML: f64 = 60.0; // left margin
const MR: f64 = 20.0;
const MT: f64 = 36.0;
const MB: f64 = 70.0;

/// Categorical palette (color-blind friendly).
pub const PALETTE: [&str; 6] = [
    "#4477aa", "#ee6677", "#228833", "#ccbb44", "#66ccee", "#aa3377",
];

fn esc(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

/// An SVG document builder.
#[derive(Debug, Clone)]
pub struct Svg {
    body: String,
}

impl Svg {
    /// Start a chart with a title.
    pub fn new(title: &str) -> Self {
        let mut body = String::new();
        write!(
            body,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{W}" height="{H}" viewBox="0 0 {W} {H}" font-family="sans-serif" font-size="11">"#
        )
        .unwrap();
        write!(
            body,
            r#"<rect width="{W}" height="{H}" fill="white"/><text x="{}" y="20" text-anchor="middle" font-size="13" font-weight="bold">{}</text>"#,
            W / 2.0,
            esc(title)
        )
        .unwrap();
        Svg { body }
    }

    fn plot_w(&self) -> f64 {
        W - ML - MR
    }

    fn plot_h(&self) -> f64 {
        H - MT - MB
    }

    /// Map a data point into plot coordinates.
    fn xy(&self, fx: f64, fy: f64) -> (f64, f64) {
        (ML + fx * self.plot_w(), MT + (1.0 - fy) * self.plot_h())
    }

    /// Draw axes with a y range and label.
    pub fn axes(&mut self, y_min: f64, y_max: f64, y_label: &str) {
        let (x0, y0) = self.xy(0.0, 0.0);
        let (x1, _) = self.xy(1.0, 0.0);
        let (_, y1) = self.xy(0.0, 1.0);
        write!(
            self.body,
            r#"<line x1="{x0}" y1="{y0}" x2="{x1}" y2="{y0}" stroke="black"/><line x1="{x0}" y1="{y0}" x2="{x0}" y2="{y1}" stroke="black"/>"#
        )
        .unwrap();
        // Y ticks.
        for i in 0..=4 {
            let f = i as f64 / 4.0;
            let v = y_min + f * (y_max - y_min);
            let (_, y) = self.xy(0.0, f);
            write!(
                self.body,
                r#"<line x1="{}" y1="{y}" x2="{x0}" y2="{y}" stroke="black"/><text x="{}" y="{}" text-anchor="end">{v:.2}</text>"#,
                x0 - 4.0,
                x0 - 7.0,
                y + 4.0
            )
            .unwrap();
            if i > 0 {
                write!(
                    self.body,
                    r##"<line x1="{x0}" y1="{y}" x2="{x1}" y2="{y}" stroke="#dddddd"/>"##
                )
                .unwrap();
            }
        }
        write!(
            self.body,
            r#"<text x="16" y="{}" text-anchor="middle" transform="rotate(-90 16 {})">{}</text>"#,
            MT + self.plot_h() / 2.0,
            MT + self.plot_h() / 2.0,
            esc(y_label)
        )
        .unwrap();
    }

    /// Plot one series of y-values as connected dots, x spread uniformly.
    pub fn series(
        &mut self,
        values: &[f64],
        y_min: f64,
        y_max: f64,
        color: &str,
        label: &str,
        index: usize,
    ) {
        if values.is_empty() {
            return;
        }
        let norm = |v: f64| ((v - y_min) / (y_max - y_min)).clamp(0.0, 1.0);
        let mut path = String::new();
        for (i, &v) in values.iter().enumerate() {
            let fx = if values.len() == 1 {
                0.5
            } else {
                i as f64 / (values.len() - 1) as f64
            };
            let (x, y) = self.xy(fx, norm(v));
            write!(path, "{}{x:.1},{y:.1}", if i == 0 { "M" } else { "L" }).unwrap();
            write!(
                self.body,
                r#"<circle cx="{x:.1}" cy="{y:.1}" r="2.4" fill="{color}"/>"#
            )
            .unwrap();
        }
        write!(
            self.body,
            r#"<path d="{path}" fill="none" stroke="{color}" stroke-width="1"/>"#
        )
        .unwrap();
        // Legend entry.
        let lx = ML + 10.0 + 150.0 * index as f64;
        let ly = H - 12.0;
        write!(
            self.body,
            r#"<rect x="{lx}" y="{}" width="10" height="10" fill="{color}"/><text x="{}" y="{}">{}</text>"#,
            ly - 9.0,
            lx + 14.0,
            ly,
            esc(label)
        )
        .unwrap();
    }

    /// Grouped vertical bars: one group per label, one bar per series.
    pub fn grouped_bars(
        &mut self,
        labels: &[String],
        series: &[(&str, Vec<f64>, &str)], // (name, values, color)
        y_max: f64,
    ) {
        let groups = labels.len().max(1) as f64;
        let group_w = self.plot_w() / groups;
        let bar_w = (group_w * 0.8) / series.len().max(1) as f64;
        for (gi, label) in labels.iter().enumerate() {
            for (si, (_, values, color)) in series.iter().enumerate() {
                let v = values.get(gi).copied().unwrap_or(0.0);
                let f = (v / y_max).clamp(0.0, 1.0);
                let x = ML + gi as f64 * group_w + group_w * 0.1 + si as f64 * bar_w;
                let (_, y_top) = self.xy(0.0, f);
                let h = MT + self.plot_h() - y_top;
                write!(
                    self.body,
                    r#"<rect x="{x:.1}" y="{y_top:.1}" width="{bar_w:.1}" height="{h:.1}" fill="{color}"/>"#
                )
                .unwrap();
            }
            let cx = ML + gi as f64 * group_w + group_w / 2.0;
            write!(
                self.body,
                r#"<text x="{cx:.1}" y="{}" text-anchor="end" transform="rotate(-40 {cx:.1} {})">{}</text>"#,
                MT + self.plot_h() + 12.0,
                MT + self.plot_h() + 12.0,
                esc(label)
            )
            .unwrap();
        }
        for (si, (name, _, color)) in series.iter().enumerate() {
            let lx = ML + 10.0 + 170.0 * si as f64;
            let ly = H - 6.0;
            write!(
                self.body,
                r#"<rect x="{lx}" y="{}" width="10" height="10" fill="{color}"/><text x="{}" y="{}">{}</text>"#,
                ly - 9.0,
                lx + 14.0,
                ly,
                esc(name)
            )
            .unwrap();
        }
    }

    /// Stacked vertical bars, one per label; `stacks[label_idx][component]`
    /// are fractions summing to ≤ 1.
    pub fn stacked_bars(&mut self, labels: &[String], stacks: &[Vec<f64>], components: &[&str]) {
        let groups = labels.len().max(1) as f64;
        let group_w = self.plot_w() / groups;
        let bar_w = group_w * 0.7;
        for (gi, label) in labels.iter().enumerate() {
            let mut acc = 0.0;
            for (ci, &frac) in stacks[gi].iter().enumerate() {
                let f0 = acc;
                acc += frac.max(0.0);
                let x = ML + gi as f64 * group_w + group_w * 0.15;
                let (_, y1) = self.xy(0.0, acc.min(1.0));
                let (_, y0) = self.xy(0.0, f0.min(1.0));
                write!(
                    self.body,
                    r#"<rect x="{x:.1}" y="{y1:.1}" width="{bar_w:.1}" height="{:.1}" fill="{}"/>"#,
                    (y0 - y1).max(0.0),
                    PALETTE[ci % PALETTE.len()]
                )
                .unwrap();
            }
            let cx = ML + gi as f64 * group_w + group_w / 2.0;
            write!(
                self.body,
                r#"<text x="{cx:.1}" y="{}" text-anchor="end" font-size="9" transform="rotate(-60 {cx:.1} {})">{}</text>"#,
                MT + self.plot_h() + 12.0,
                MT + self.plot_h() + 12.0,
                esc(label)
            )
            .unwrap();
        }
        for (ci, name) in components.iter().enumerate() {
            let lx = ML + 10.0 + 90.0 * ci as f64;
            let ly = H - 6.0;
            write!(
                self.body,
                r#"<rect x="{lx}" y="{}" width="10" height="10" fill="{}"/><text x="{}" y="{}">{}</text>"#,
                ly - 9.0,
                PALETTE[ci % PALETTE.len()],
                lx + 14.0,
                ly,
                esc(name)
            )
            .unwrap();
        }
    }

    /// Finish the document.
    pub fn finish(mut self) -> String {
        self.body.push_str("</svg>");
        self.body
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documents_are_well_formed() {
        let mut svg = Svg::new("test & demo");
        svg.axes(0.0, 1.0, "metric");
        svg.series(&[0.1, 0.5, 0.9], 0.0, 1.0, PALETTE[0], "a", 0);
        let doc = svg.finish();
        assert!(doc.starts_with("<svg"));
        assert!(doc.ends_with("</svg>"));
        assert!(doc.contains("test &amp; demo"), "title escaped");
        assert_eq!(doc.matches("<circle").count(), 3);
    }

    #[test]
    fn grouped_bars_render_all_cells() {
        let mut svg = Svg::new("bars");
        svg.axes(0.0, 2.0, "y");
        svg.grouped_bars(
            &["a".into(), "b".into()],
            &[
                ("s1", vec![1.0, 2.0], PALETTE[0]),
                ("s2", vec![0.5, 1.5], PALETTE[1]),
            ],
            2.0,
        );
        let doc = svg.finish();
        // 4 bars + 2 legend swatches + background.
        assert_eq!(doc.matches("<rect").count(), 7);
    }

    #[test]
    fn stacked_bars_clamp_and_render() {
        let mut svg = Svg::new("stack");
        svg.axes(0.0, 1.0, "fraction");
        svg.stacked_bars(
            &["x".into()],
            &[vec![0.3, 0.4, 0.5]], // over 1.0: clamped
            &["p", "q", "r"],
        );
        let doc = svg.finish();
        assert!(doc.matches("<rect").count() >= 4);
    }

    #[test]
    fn empty_series_is_safe() {
        let mut svg = Svg::new("empty");
        svg.axes(0.0, 1.0, "y");
        svg.series(&[], 0.0, 1.0, PALETTE[2], "none", 0);
        let doc = svg.finish();
        assert!(!doc.contains("<circle"));
    }
}
