//! # relsim-bench
//!
//! Shared plumbing for the figure/table regeneration binaries: scale
//! parsing, context caching, observability wiring and result output. Each
//! paper table/figure has a binary in `src/bin/`; run e.g.
//!
//! ```text
//! cargo run --release -p relsim-bench --bin fig01_avf
//! cargo run --release -p relsim-bench --bin run_all -- --quick
//! ```
//!
//! Every binary accepts `--quick` for a smoke-test scale, plus the shared
//! observability flags (`--trace-out`, `--metrics-out`, `--quiet`,
//! `--log-level`); see [`obs_init`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod svg;

use relsim::experiments::{Context, Scale};
use relsim_obs::{info, RunObs};
use serde::Serialize;
use std::path::PathBuf;

pub use relsim_obs::ObsArgs;

/// Bump when simulator/model changes invalidate cached reference tables
/// and content-addressed result-cache entries (re-exported from
/// `relsim::cache`, where it is hashed into every cache key).
pub use relsim::cache::MODEL_VERSION;

/// Parse the shared observability flags from the process arguments and
/// apply the requested log level, then configure the job pool from
/// `--jobs` and the result cache from `--cache`/`--no-cache`/
/// `--cache-dir`. Call once at the top of every binary's `main`; progress
/// output below the chosen level (everything under `--quiet`) is silenced
/// while stdout data stays untouched.
pub fn obs_init() -> ObsArgs {
    relsim::pool::set_default_jobs(jobs_from_args());
    relsim::sampling::set_default(sampling_from_args());
    relsim::skip::set_default_enabled(!no_skip_from_args());
    relsim_cache::configure(cache_from_args());
    let args = ObsArgs::from_env();
    // Resolve `--profile`/`--trace-spans`/`--no-profile` before any pool
    // worker spawns, so every thread sees the same global flags.
    args.apply_span_flags();
    args
}

/// Parse the worker count from the process arguments: `--jobs N`,
/// `--jobs=N`, `-j N`, or `-jN`. `0` (or no flag) means "use the
/// machine's available parallelism". Output is independent of the worker
/// count by construction, so this only changes wall time.
pub fn jobs_from_args() -> usize {
    parse_jobs(std::env::args().skip(1)).unwrap_or(0)
}

/// Testable `--jobs` parser; `None` means the flag was absent/invalid.
pub fn parse_jobs<I: IntoIterator<Item = String>>(args: I) -> Option<usize> {
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let value = if let Some(v) = arg.strip_prefix("--jobs=") {
            Some(v.to_string())
        } else if arg == "--jobs" || arg == "-j" {
            iter.next()
        } else if let Some(v) = arg.strip_prefix("-j") {
            // `-j4` — but don't swallow unrelated flags like `-json`.
            if v.chars().all(|c| c.is_ascii_digit()) {
                Some(v.to_string())
            } else {
                continue;
            }
        } else {
            continue;
        };
        match value.as_deref().map(str::parse::<usize>) {
            Some(Ok(n)) => return Some(n),
            _ => {
                relsim_obs::warn!(
                    "--jobs expects a number, got {:?}; using available parallelism",
                    value.as_deref().unwrap_or("")
                );
                return None;
            }
        }
    }
    None
}

/// Help text fragment for the `--jobs` flag, for `--help` output.
pub const JOBS_HELP: &str = "  --jobs N, -j N        worker threads for the experiment grid \
                             (default: available parallelism; output is byte-identical at any N)";

/// Parse the interval-sampling configuration from the process arguments:
/// `--sample DETAILED:FF[:SEED]` or `--sample=...`. `None` means the flag
/// was absent and runs stay fully detailed. An invalid value warns and is
/// ignored rather than silently producing approximate results under a
/// different configuration than the user asked for.
pub fn sampling_from_args() -> Option<relsim::SamplingConfig> {
    parse_sample(std::env::args().skip(1))
}

/// Testable `--sample` parser; `None` means absent or invalid.
pub fn parse_sample<I: IntoIterator<Item = String>>(args: I) -> Option<relsim::SamplingConfig> {
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let value = if let Some(v) = arg.strip_prefix("--sample=") {
            Some(v.to_string())
        } else if arg == "--sample" {
            iter.next()
        } else {
            continue;
        };
        return match value.as_deref().map(relsim::SamplingConfig::parse) {
            Some(Ok(cfg)) => Some(cfg),
            other => {
                relsim_obs::warn!(
                    "--sample expects DETAILED:FF[:SEED], got {:?}; running fully detailed{}",
                    value.as_deref().unwrap_or(""),
                    match other {
                        Some(Err(e)) => format!(" ({e})"),
                        _ => String::new(),
                    }
                );
                None
            }
        };
    }
    None
}

/// Whether `--no-skip` was passed: disables event-horizon cycle skipping
/// in detailed windows (DESIGN.md §11). Skipping is byte-identical to the
/// plain tick loop, so the flag only trades speed for a reference timing
/// baseline (`bench_perf`) or for bisecting a suspected equivalence bug.
pub fn no_skip_from_args() -> bool {
    parse_no_skip(std::env::args().skip(1))
}

/// Testable `--no-skip` parser.
pub fn parse_no_skip<I: IntoIterator<Item = String>>(args: I) -> bool {
    args.into_iter().any(|a| a == "--no-skip")
}

/// Help text fragment for the `--no-skip` flag, for `--help` output.
pub const NO_SKIP_HELP: &str =
    "  --no-skip             disable event-horizon cycle skipping (same results, \
                               slower; for timing baselines and equivalence bisection)";

/// Help text fragment for the `--sample` flag, for `--help` output.
pub const SAMPLE_HELP: &str =
    "  --sample D:F[:S]      interval sampling: alternate D detailed ticks \
                               with ~F fast-forwarded ticks (seed S jitters window lengths; \
                               0 disables the jitter)";

/// Parse the reliability-mode selection from the process arguments:
/// `--mode NAME` / `--mode=NAME` with `off`, `checkpoint`, `dmr`,
/// `backup`, or `all`. `None` (absent or invalid, with a warning) means
/// "all modes" — the full Pareto study.
pub fn modes_from_args() -> Option<Vec<relsim::ModeKind>> {
    parse_mode(std::env::args().skip(1))
}

/// Testable `--mode` parser; `None` means absent or invalid.
pub fn parse_mode<I: IntoIterator<Item = String>>(args: I) -> Option<Vec<relsim::ModeKind>> {
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let value = if let Some(v) = arg.strip_prefix("--mode=") {
            Some(v.to_string())
        } else if arg == "--mode" {
            iter.next()
        } else {
            continue;
        };
        return match value.as_deref() {
            Some("all") => Some(relsim::ModeKind::ALL.to_vec()),
            Some(name) => match relsim::ModeKind::parse(name) {
                Some(mode) => Some(vec![mode]),
                None => {
                    relsim_obs::warn!(
                        "--mode expects off|checkpoint|dmr|backup|all, got {name:?}; \
                         running all modes"
                    );
                    None
                }
            },
            None => {
                relsim_obs::warn!("--mode expects a value; running all modes");
                None
            }
        };
    }
    None
}

/// Testable parser for a `u64`-valued flag (`--faults N`, `--faults=N`,
/// `--ckpt-interval N`, ...); `None` means absent or invalid (with a
/// warning naming the flag).
pub fn parse_u64_flag<I: IntoIterator<Item = String>>(args: I, flag: &str) -> Option<u64> {
    let prefix = format!("{flag}=");
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        let value = if let Some(v) = arg.strip_prefix(prefix.as_str()) {
            Some(v.to_string())
        } else if arg == flag {
            iter.next()
        } else {
            continue;
        };
        return match value.as_deref().map(str::parse::<u64>) {
            Some(Ok(n)) => Some(n),
            _ => {
                relsim_obs::warn!(
                    "{flag} expects a number, got {:?}; using the default",
                    value.as_deref().unwrap_or("")
                );
                None
            }
        };
    }
    None
}

/// Parse `--faults N` (fault strikes per run) from the process arguments.
pub fn faults_from_args() -> Option<u64> {
    parse_u64_flag(std::env::args().skip(1), "--faults")
}

/// Parse `--fault-seed N` (campaign seed) from the process arguments.
pub fn fault_seed_from_args() -> Option<u64> {
    parse_u64_flag(std::env::args().skip(1), "--fault-seed")
}

/// Parse `--ckpt-interval N` (checkpoint period in ticks) from the
/// process arguments. Zero is rejected (warns and falls back to the
/// default): a checkpoint every tick is a degenerate configuration the
/// drivers clamp away anyway.
pub fn ckpt_interval_from_args() -> Option<u64> {
    match parse_u64_flag(std::env::args().skip(1), "--ckpt-interval") {
        Some(0) => {
            relsim_obs::warn!("--ckpt-interval must be positive; using the default");
            None
        }
        other => other,
    }
}

/// Help text fragment for the reliability-mode flags, for `--help`
/// output.
pub const MODE_HELP: &str = "  --mode M              reliability mode: off, checkpoint, dmr, backup, \
                             or all (default: all)\n  \
                             --faults N            fault strikes injected per run (default: 1000)\n  \
                             --fault-seed N        fault-campaign seed (default: fixed)\n  \
                             --ckpt-interval N     checkpoint period in ticks \
                             (default: the scale's quantum)";

/// What the cache flags asked for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheChoice {
    /// No flag (or an explicit `--cache`): cache on, default directory.
    Enabled,
    /// `--cache-dir PATH`: cache on, persistent tier at `PATH`.
    Dir(PathBuf),
    /// `--no-cache`: no result caching at all.
    Disabled,
}

/// Parse the result-cache flags from the process arguments and translate
/// them into a store configuration: `None` disables caching, otherwise
/// the persistent tier lives at `--cache-dir`, `$RELSIM_CACHE_DIR`, or
/// `.relsim-cache/` under [`out_dir`], in that order of preference.
pub fn cache_from_args() -> Option<relsim_cache::CacheConfig> {
    let dir = match parse_cache(std::env::args().skip(1)) {
        CacheChoice::Disabled => return None,
        CacheChoice::Dir(d) => d,
        CacheChoice::Enabled => match std::env::var("RELSIM_CACHE_DIR") {
            Ok(d) if !d.is_empty() => PathBuf::from(d),
            _ => out_dir().join(".relsim-cache"),
        },
    };
    Some(relsim_cache::CacheConfig { dir: Some(dir) })
}

/// Testable cache-flag parser. `--no-cache` wins over any enabling flag
/// regardless of order; `--cache-dir PATH` / `--cache-dir=PATH` picks the
/// persistent-tier directory; a bare `--cache-dir` warns and falls back
/// to the default directory.
pub fn parse_cache<I: IntoIterator<Item = String>>(args: I) -> CacheChoice {
    let mut choice = CacheChoice::Enabled;
    let mut disabled = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        if arg == "--no-cache" {
            disabled = true;
        } else if arg == "--cache" {
            // Explicit opt-in; same as the default.
        } else if let Some(v) = arg.strip_prefix("--cache-dir=") {
            choice = CacheChoice::Dir(PathBuf::from(v));
        } else if arg == "--cache-dir" {
            match iter.next() {
                Some(v) => choice = CacheChoice::Dir(PathBuf::from(v)),
                None => {
                    relsim_obs::warn!("--cache-dir expects a path; using the default directory");
                }
            }
        }
    }
    if disabled {
        CacheChoice::Disabled
    } else {
        choice
    }
}

/// Help text fragment for the cache flags, for `--help` output.
pub const CACHE_HELP: &str = "  --cache               content-addressed result cache (default: on)\n  \
                              --no-cache            recompute everything; identical output, slower\n  \
                              --cache-dir PATH      persistent cache tier location \
                              (default: $RELSIM_CACHE_DIR or <out>/.relsim-cache)";

/// The result-cache traffic of this run as a generic JSON value for the
/// run manifest, or `None` when caching is disabled.
pub fn cache_manifest_value() -> Option<serde::Value> {
    relsim_cache::global_stats().map(|s| s.to_value())
}

/// Open the run-level observer for a binary: events stream to
/// `--trace-out` (exiting cleanly if the path is unwritable), metrics and
/// phase timers accumulate for [`obs_finish`].
pub fn run_obs(args: &ObsArgs) -> RunObs {
    RunObs::with_sink(args.sink_or_exit())
}

/// Finish a binary's observed run: flush the event sink, write
/// `--metrics-out` (exiting cleanly on I/O failure), log the merged host
/// profile, and report any job failures the pool caught — exiting
/// nonzero if there were any, after all successful results were written.
pub fn obs_finish(args: &ObsArgs, obs: &mut RunObs) {
    // Fold the main thread's span state in before the snapshot below so
    // `--metrics-out` carries the `prof.*` series; pool-worker spans were
    // already merged at their scatter barriers.
    obs.absorb_spans("main");
    obs.sink.flush();
    let snapshot = obs.recorder.snapshot();
    args.write_metrics_or_exit(&snapshot);
    if let Some(path) = &args.trace_spans {
        match relsim_obs::write_chrome_trace(path, &obs.spans) {
            Ok(()) => info!("wrote {path:?}"),
            Err(e) => {
                relsim_obs::error!("cannot write {path:?}: {e}");
                std::process::exit(1);
            }
        }
    }
    if args.profiling_enabled() {
        if let Some(stage) = relsim_obs::StageProfile::from_snapshot(&snapshot) {
            let breakdown: Vec<String> = stage
                .stages
                .iter()
                .map(|s| {
                    format!(
                        "{} {:.2}s ({:.1}%)",
                        s.stage,
                        s.self_seconds,
                        100.0 * s.self_seconds / stage.attributed_seconds.max(f64::MIN_POSITIVE)
                    )
                })
                .collect();
            info!(
                "stage profile: {:.2}s attributed ({})",
                stage.attributed_seconds,
                breakdown.join(", ")
            );
        }
    }
    let profile = obs.timers.profile();
    if profile.attributed_seconds > 0.0 {
        let breakdown: Vec<String> = profile
            .phases
            .iter()
            .filter(|(_, s)| *s > 0.0)
            .map(|(n, s)| format!("{n} {s:.2}s"))
            .collect();
        info!(
            "host profile: {:.2}s attributed across workers ({})",
            profile.attributed_seconds,
            breakdown.join(", ")
        );
    }
    if let Some(stats) = relsim_cache::global_stats() {
        if stats.lookups() > 0 {
            info!(
                "cache: {}/{} hits ({:.0}%; memory {}, disk {}), {} stores, \
                 {} invalidations, {} B read, {} B written",
                stats.hits,
                stats.lookups(),
                stats.hit_rate() * 100.0,
                stats.memory_hits,
                stats.disk_hits,
                stats.stores,
                stats.invalidations,
                stats.bytes_read,
                stats.bytes_written
            );
        }
    }
    let failures = relsim::pool::take_failures();
    if !failures.is_empty() {
        for f in &failures {
            relsim_obs::error!("job failed: {}: {}", f.label, f.message);
        }
        relsim_obs::error!(
            "{} of the experiment jobs failed; results above exclude them",
            failures.len()
        );
        std::process::exit(1);
    }
}

/// Parse the experiment scale from CLI arguments (`--quick` shrinks it).
pub fn scale_from_args() -> Scale {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        Scale::quick()
    } else {
        Scale::default_scale()
    }
}

/// Directory where experiment outputs and caches are written.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(
        std::env::var("RELSIM_OUT").unwrap_or_else(|_| "target/experiments".to_owned()),
    );
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Build or load the shared experiment context for `scale`.
pub fn context(scale: Scale) -> Context {
    let path = out_dir().join(format!(
        "context-{MODEL_VERSION}-{}-{}.json",
        scale.isolation_ticks, scale.seed
    ));
    info!("context: building/loading isolated reference table ({path:?})");
    Context::load_or_build(scale, &path)
}

/// Persist a JSON result artifact next to the printed output. The write
/// is atomic (temp file + rename in the output directory), so a reader —
/// or a concurrent run of the same figure — never observes a partial
/// file.
pub fn save_json<T: Serialize>(name: &str, data: &T) {
    let path = out_dir().join(format!("{name}.json"));
    match serde_json::to_vec_pretty(data) {
        Ok(bytes) => {
            if let Err(e) = relsim_obs::write_atomic(&path, &bytes) {
                relsim_obs::warn!("could not write {path:?}: {e}");
            } else {
                info!("wrote {path:?}");
            }
        }
        Err(e) => relsim_obs::warn!("could not serialize {name}: {e}"),
    }
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}

/// Perf-trend gate logic for `bench_perf --check`: pure comparison of a
/// fresh measurement against the committed snapshot, kept in the library
/// so the thresholds are unit-testable without timing anything.
pub mod perf {
    /// Sample statistics of one timed row: all repeats in measurement
    /// order, the minimum (a deterministic workload's least-noisy cost
    /// estimate), and the spread relative to that minimum.
    #[derive(Debug, Clone, PartialEq)]
    pub struct RowStat {
        /// Row name (`<workload>-<engine>-<skip|noskip>`).
        pub name: String,
        /// Best (minimum) wall time across the repeats, milliseconds.
        pub wall_ms: f64,
        /// Every repeat's wall time, in measurement order.
        pub samples_ms: Vec<f64>,
        /// Population standard deviation of the repeats, milliseconds.
        pub stddev_ms: f64,
        /// Relative spread of the *low half* of the repeats:
        /// `(median - min) / min`. The point estimate is the minimum, so
        /// the noise that matters is how far the floor wanders between
        /// runs — the low-half spread estimates that, while the full
        /// range `(max - min)` is dominated by one-off load spikes that
        /// the min estimator already rejects.
        pub jitter: f64,
    }

    impl RowStat {
        /// Reduce raw repeat timings to row statistics.
        ///
        /// # Panics
        ///
        /// Panics if `samples_ms` is empty.
        pub fn from_samples(name: &str, samples_ms: Vec<f64>) -> RowStat {
            assert!(!samples_ms.is_empty(), "row {name} measured no samples");
            let best = samples_ms.iter().copied().fold(f64::INFINITY, f64::min);
            let mean = samples_ms.iter().sum::<f64>() / samples_ms.len() as f64;
            let var = samples_ms.iter().map(|s| (s - mean).powi(2)).sum::<f64>()
                / samples_ms.len() as f64;
            let mut sorted = samples_ms.clone();
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            RowStat {
                name: name.to_string(),
                wall_ms: best,
                samples_ms,
                stddev_ms: var.sqrt(),
                jitter: if best > 0.0 {
                    (median - best) / best
                } else {
                    0.0
                },
            }
        }
    }

    /// Verdict on one row of a perf-trend check.
    #[derive(Debug, Clone, PartialEq)]
    pub struct RowDelta {
        /// Row name.
        pub name: String,
        /// `fresh / committed` wall-time ratio (1.0 = unchanged).
        pub ratio: f64,
        /// Slowdown tolerance applied to this row (e.g. 0.10 = +10%).
        pub threshold: f64,
        /// Whether the row slowed down beyond the tolerance.
        pub regressed: bool,
        /// Whether a regression on this row fails the gate ([`gating`]).
        pub gating: bool,
    }

    /// Whether a regression on this row fails `bench_perf --check`.
    ///
    /// Detailed-engine rows gate: they time the data-oriented core tick
    /// loop itself (`-detailed-` canonical mix, `-membound-` stall-heavy
    /// companion), which is deterministic work where best-of-N wall time
    /// tracks real cost. Sampled rows stay warn-only — their wall time is
    /// dominated by functional fast-forwarding between detail intervals,
    /// a different (and much shorter) code path whose share of timer
    /// noise is proportionally larger.
    pub fn gating(name: &str) -> bool {
        name.contains("-detailed-") || name.contains("-membound-")
    }

    /// Minimum slowdown tolerated by [`compare`] regardless of how quiet
    /// the samples were: machine load the repeats didn't witness can
    /// still move best-of-N wall times by several percent.
    pub const NOISE_FLOOR: f64 = 0.10;

    /// How many measured jitters of headroom the gate grants on top of
    /// the floor: a row whose best-of-N floor already wanders by x% may
    /// honestly wander by a small multiple of that between runs.
    pub const JITTER_MARGIN: f64 = 2.0;

    /// Per-row slowdown tolerance: the noise floor or the jitter margin
    /// times the worse of the two runs' observed jitter, whichever is
    /// larger.
    pub fn threshold(committed: &RowStat, fresh: &RowStat) -> f64 {
        NOISE_FLOOR.max(JITTER_MARGIN * committed.jitter.max(fresh.jitter))
    }

    /// Diff fresh row measurements against the committed snapshot. Rows
    /// present on only one side are ignored (renames are not
    /// regressions). Speedups are never flagged.
    pub fn compare(committed: &[RowStat], fresh: &[RowStat]) -> Vec<RowDelta> {
        fresh
            .iter()
            .filter_map(|f| {
                let c = committed.iter().find(|c| c.name == f.name)?;
                let threshold = threshold(c, f);
                let ratio = if c.wall_ms > 0.0 {
                    f.wall_ms / c.wall_ms
                } else {
                    1.0
                };
                Some(RowDelta {
                    gating: gating(&f.name),
                    name: f.name.clone(),
                    ratio,
                    threshold,
                    regressed: ratio > 1.0 + threshold,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::{parse_cache, parse_jobs, parse_sample, CacheChoice};
    use relsim::SamplingConfig;
    use std::path::PathBuf;

    fn parse(args: &[&str]) -> Option<usize> {
        parse_jobs(args.iter().map(|s| s.to_string()))
    }

    fn sample(args: &[&str]) -> Option<SamplingConfig> {
        parse_sample(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn jobs_flag_forms() {
        assert_eq!(parse(&["--jobs", "4"]), Some(4));
        assert_eq!(parse(&["--jobs=8"]), Some(8));
        assert_eq!(parse(&["-j", "2"]), Some(2));
        assert_eq!(parse(&["-j16"]), Some(16));
        assert_eq!(parse(&["--jobs", "0"]), Some(0));
        assert_eq!(parse(&["--quick"]), None);
        // `-json` must not be mistaken for `-j son`.
        assert_eq!(parse(&["-json"]), None);
        assert_eq!(parse(&["--jobs", "lots"]), None);
    }

    #[test]
    fn no_skip_flag_forms() {
        use super::parse_no_skip;
        let parse = |args: &[&str]| parse_no_skip(args.iter().map(|s| s.to_string()));
        assert!(parse(&["--no-skip"]));
        assert!(parse(&["--quick", "--no-skip", "-j2"]));
        assert!(!parse(&["--quick"]));
        assert!(!parse(&["--no-skip=1"]), "flag takes no value");
    }

    #[test]
    fn cache_flag_forms() {
        let parse = |args: &[&str]| parse_cache(args.iter().map(|s| s.to_string()));
        assert_eq!(parse(&[]), CacheChoice::Enabled);
        assert_eq!(parse(&["--quick", "--cache"]), CacheChoice::Enabled);
        assert_eq!(parse(&["--no-cache"]), CacheChoice::Disabled);
        // `--no-cache` wins regardless of flag order.
        assert_eq!(
            parse(&["--no-cache", "--cache-dir", "/tmp/c"]),
            CacheChoice::Disabled
        );
        assert_eq!(
            parse(&["--cache-dir", "/tmp/c", "--no-cache"]),
            CacheChoice::Disabled
        );
        assert_eq!(
            parse(&["--cache-dir", "/tmp/c"]),
            CacheChoice::Dir(PathBuf::from("/tmp/c"))
        );
        assert_eq!(
            parse(&["--cache-dir=/tmp/d"]),
            CacheChoice::Dir(PathBuf::from("/tmp/d"))
        );
        // Bare `--cache-dir` warns and keeps the default directory.
        assert_eq!(parse(&["--cache-dir"]), CacheChoice::Enabled);
    }

    #[test]
    fn row_stats_from_samples() {
        use super::perf::RowStat;
        let r = RowStat::from_samples("row", vec![120.0, 100.0, 110.0]);
        assert_eq!(r.wall_ms, 100.0);
        assert_eq!(r.samples_ms, vec![120.0, 100.0, 110.0]);
        // Low-half spread: (median 110 - min 100) / min 100.
        assert!((r.jitter - 0.1).abs() < 1e-12, "jitter {}", r.jitter);
        // Population stddev of {120,100,110} = sqrt(200/3).
        assert!((r.stddev_ms - (200.0f64 / 3.0).sqrt()).abs() < 1e-9);
        let quiet = RowStat::from_samples("quiet", vec![50.0]);
        assert_eq!(
            (quiet.wall_ms, quiet.jitter, quiet.stddev_ms),
            (50.0, 0.0, 0.0)
        );
    }

    #[test]
    fn perf_check_flags_real_regressions_only() {
        use super::perf::{compare, RowStat, NOISE_FLOOR};
        let committed = vec![
            RowStat::from_samples("a", vec![100.0, 101.0, 100.5]),
            RowStat::from_samples("b", vec![200.0, 201.0, 200.2]),
            RowStat::from_samples("gone", vec![50.0]),
        ];
        let fresh = vec![
            // +20% on quiet samples: beyond the 10% floor -> regression.
            RowStat::from_samples("a", vec![120.0, 121.0, 120.4]),
            // -30%: speedups never flag.
            RowStat::from_samples("b", vec![140.0, 141.0, 140.2]),
            // Unknown row: ignored, not a regression.
            RowStat::from_samples("new", vec![10.0]),
        ];
        let deltas = compare(&committed, &fresh);
        assert_eq!(deltas.len(), 2);
        assert!(deltas[0].regressed, "{deltas:?}");
        assert!((deltas[0].ratio - 1.2).abs() < 1e-9);
        assert!((deltas[0].threshold - NOISE_FLOOR).abs() < 1e-12);
        assert!(!deltas[1].regressed, "{deltas:?}");
    }

    #[test]
    fn perf_check_widens_threshold_with_jitter() {
        use super::perf::{compare, RowStat};
        // Committed floor wanders by 8% (median 108 vs min 100) ->
        // 2 x 8% = 16% tolerance; a 12% slowdown passes.
        let committed = vec![RowStat::from_samples("noisy", vec![100.0, 115.0, 108.0])];
        let fresh = vec![RowStat::from_samples("noisy", vec![112.0, 113.0, 112.4])];
        let deltas = compare(&committed, &fresh);
        assert!((deltas[0].threshold - 0.16).abs() < 1e-9, "{deltas:?}");
        assert!(!deltas[0].regressed, "{deltas:?}");
        // The same 8% committed jitter does not excuse a 25% slowdown.
        let slow = vec![RowStat::from_samples("noisy", vec![125.0, 126.0, 125.5])];
        assert!(compare(&committed, &slow)[0].regressed);
    }

    #[test]
    fn perf_gate_covers_detailed_engine_rows_only() {
        use super::perf::{compare, gating, RowStat};
        assert!(gating("4B4S-detailed-skip"));
        assert!(gating("4B4S-detailed-noskip"));
        assert!(gating("4B4S-membound-skip"));
        assert!(gating("4B4S-membound-noskip"));
        assert!(!gating("4B4S-sampled-skip"));
        assert!(!gating("4B4S-sampled-noskip"));
        // compare() stamps each delta with the row's gate class.
        let committed = vec![
            RowStat::from_samples("4B4S-detailed-skip", vec![100.0]),
            RowStat::from_samples("4B4S-sampled-skip", vec![100.0]),
        ];
        let fresh = vec![
            RowStat::from_samples("4B4S-detailed-skip", vec![130.0]),
            RowStat::from_samples("4B4S-sampled-skip", vec![130.0]),
        ];
        let deltas = compare(&committed, &fresh);
        assert!(deltas[0].regressed && deltas[0].gating, "{deltas:?}");
        assert!(deltas[1].regressed && !deltas[1].gating, "{deltas:?}");
    }

    #[test]
    fn mode_flag_forms() {
        use super::parse_mode;
        use relsim::ModeKind;
        let parse = |args: &[&str]| parse_mode(args.iter().map(|s| s.to_string()));
        assert_eq!(
            parse(&["--mode", "checkpoint"]),
            Some(vec![ModeKind::Checkpoint])
        );
        assert_eq!(parse(&["--mode=dmr"]), Some(vec![ModeKind::Dmr]));
        assert_eq!(parse(&["--mode", "all"]), Some(ModeKind::ALL.to_vec()));
        assert_eq!(parse(&["--quick"]), None);
        assert_eq!(parse(&["--mode", "bogus"]), None, "invalid warns -> all");
        assert_eq!(parse(&["--mode"]), None, "bare flag warns -> all");
    }

    #[test]
    fn u64_flag_forms() {
        use super::parse_u64_flag;
        let parse =
            |args: &[&str], flag: &str| parse_u64_flag(args.iter().map(|s| s.to_string()), flag);
        assert_eq!(parse(&["--faults", "500"], "--faults"), Some(500));
        assert_eq!(parse(&["--faults=2000"], "--faults"), Some(2000));
        assert_eq!(parse(&["--ckpt-interval", "9"], "--ckpt-interval"), Some(9));
        assert_eq!(parse(&["--faults", "many"], "--faults"), None);
        assert_eq!(parse(&["--quick"], "--faults"), None);
        // A flag must not swallow another flag's value.
        assert_eq!(parse(&["--fault-seed", "7"], "--faults"), None);
    }

    #[test]
    fn sample_flag_forms() {
        let cfg = SamplingConfig::parse("2000:8000").unwrap();
        assert_eq!(sample(&["--sample", "2000:8000"]), Some(cfg));
        assert_eq!(
            sample(&["--quick", "--sample=1000:4000:7"]),
            Some(SamplingConfig::parse("1000:4000:7").unwrap())
        );
        assert_eq!(sample(&["--quick"]), None);
        assert_eq!(sample(&["--sample", "nonsense"]), None);
        assert_eq!(sample(&["--sample"]), None);
        assert_eq!(sample(&["--sample", "0:4000"]), None);
    }
}
