//! # relsim-bench
//!
//! Shared plumbing for the figure/table regeneration binaries: scale
//! parsing, context caching, observability wiring and result output. Each
//! paper table/figure has a binary in `src/bin/`; run e.g.
//!
//! ```text
//! cargo run --release -p relsim-bench --bin fig01_avf
//! cargo run --release -p relsim-bench --bin run_all -- --quick
//! ```
//!
//! Every binary accepts `--quick` for a smoke-test scale, plus the shared
//! observability flags (`--trace-out`, `--metrics-out`, `--quiet`,
//! `--log-level`); see [`obs_init`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chart;
pub mod svg;

use relsim::experiments::{Context, Scale};
use relsim_obs::info;
use serde::Serialize;
use std::path::PathBuf;

pub use relsim_obs::ObsArgs;

/// Bump when simulator/model changes invalidate cached reference tables.
pub const MODEL_VERSION: u32 = 3;

/// Parse the shared observability flags from the process arguments and
/// apply the requested log level. Call once at the top of every binary's
/// `main`; progress output below the chosen level (everything under
/// `--quiet`) is silenced while stdout data stays untouched.
pub fn obs_init() -> ObsArgs {
    ObsArgs::from_env()
}

/// Parse the experiment scale from CLI arguments (`--quick` shrinks it).
pub fn scale_from_args() -> Scale {
    let quick = std::env::args().any(|a| a == "--quick");
    if quick {
        Scale::quick()
    } else {
        Scale::default_scale()
    }
}

/// Directory where experiment outputs and caches are written.
pub fn out_dir() -> PathBuf {
    let dir = PathBuf::from(
        std::env::var("RELSIM_OUT").unwrap_or_else(|_| "target/experiments".to_owned()),
    );
    let _ = std::fs::create_dir_all(&dir);
    dir
}

/// Build or load the shared experiment context for `scale`.
pub fn context(scale: Scale) -> Context {
    let path = out_dir().join(format!(
        "context-{MODEL_VERSION}-{}-{}.json",
        scale.isolation_ticks, scale.seed
    ));
    info!("context: building/loading isolated reference table ({path:?})");
    Context::load_or_build(scale, &path)
}

/// Persist a JSON result artifact next to the printed output. The write
/// is atomic (temp file + rename in the output directory), so a reader —
/// or a concurrent run of the same figure — never observes a partial
/// file.
pub fn save_json<T: Serialize>(name: &str, data: &T) {
    let path = out_dir().join(format!("{name}.json"));
    match serde_json::to_vec_pretty(data) {
        Ok(bytes) => {
            if let Err(e) = relsim_obs::write_atomic(&path, &bytes) {
                relsim_obs::warn!("could not write {path:?}: {e}");
            } else {
                info!("wrote {path:?}");
            }
        }
        Err(e) => relsim_obs::warn!("could not serialize {name}: {e}"),
    }
}

/// Format a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:+.1}%", x * 100.0)
}
