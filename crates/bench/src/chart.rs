//! Minimal ASCII charts for terminal figure output.
//!
//! The figure binaries print numeric tables; these helpers add a visual
//! rendering (horizontal bars, sparklines, grouped bars) so the *shape* of
//! each figure — who wins, where the crossovers are — is visible straight
//! from the terminal, mirroring how the paper presents them.

/// Render one horizontal bar of `value` against `max`, `width` cells wide.
///
/// # Examples
///
/// ```
/// let bar = relsim_bench::chart::bar(0.5, 1.0, 10);
/// assert_eq!(bar, "█████     ");
/// ```
pub fn bar(value: f64, max: f64, width: usize) -> String {
    if !(value.is_finite() && max.is_finite()) || max <= 0.0 || width == 0 {
        return " ".repeat(width);
    }
    let frac = (value / max).clamp(0.0, 1.0);
    let cells = frac * width as f64;
    let full = cells.floor() as usize;
    let rem = cells - full as f64;
    let partials = [' ', '▏', '▎', '▍', '▌', '▋', '▊', '▉'];
    let mut s = "█".repeat(full.min(width));
    if full < width {
        let idx = (rem * 8.0).floor() as usize;
        s.push(partials[idx.min(7)]);
        s.push_str(&" ".repeat(width - full - 1));
    }
    s
}

/// Render a sparkline of a series using eighth-block characters.
///
/// # Examples
///
/// ```
/// let s = relsim_bench::chart::sparkline(&[0.0, 0.5, 1.0]);
/// assert_eq!(s.chars().count(), 3);
/// ```
pub fn sparkline(series: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for &v in series {
        if v.is_finite() {
            lo = lo.min(v);
            hi = hi.max(v);
        }
    }
    if !lo.is_finite() || !hi.is_finite() {
        return String::new();
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    series
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                return ' ';
            }
            let idx = ((v - lo) / span * 7.0).round() as usize;
            LEVELS[idx.min(7)]
        })
        .collect()
}

/// Print a labeled horizontal bar chart. Bars are scaled to the maximum
/// value; each row shows the label, the bar and the value.
pub fn bar_chart(title: &str, rows: &[(String, f64)], width: usize) {
    println!("{title}");
    let max = rows
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, |a, b| if b.is_finite() { a.max(b) } else { a });
    let label_w = rows
        .iter()
        .map(|(l, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    for (label, value) in rows {
        println!("  {label:<label_w$} {} {value:.3}", bar(*value, max, width));
    }
}

/// Print a two-series grouped bar chart (e.g. perf-opt vs rel-opt per
/// workload), normalized to a common maximum.
pub fn grouped_bar_chart(
    title: &str,
    series_names: (&str, &str),
    rows: &[(String, f64, f64)],
    width: usize,
) {
    println!("{title}  [{} ▒ | {} █]", series_names.0, series_names.1);
    let max = rows
        .iter()
        .flat_map(|(_, a, b)| [*a, *b])
        .fold(
            0.0f64,
            |acc, v| if v.is_finite() { acc.max(v) } else { acc },
        );
    let label_w = rows
        .iter()
        .map(|(l, _, _)| l.chars().count())
        .max()
        .unwrap_or(0);
    for (label, a, b) in rows {
        let bar_a: String = bar(*a, max, width).replace('█', "▒");
        println!("  {label:<label_w$} {bar_a} {a:.3}");
        println!("  {:<label_w$} {} {b:.3}", "", bar(*b, max, width));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bar_scales_and_clamps() {
        assert_eq!(bar(1.0, 1.0, 4), "████");
        assert_eq!(bar(2.0, 1.0, 4), "████", "clamped at max");
        assert_eq!(bar(0.0, 1.0, 4), "    ");
        assert_eq!(bar(0.5, 1.0, 4).chars().count(), 4);
    }

    #[test]
    fn bar_handles_degenerate_inputs() {
        assert_eq!(bar(1.0, 0.0, 3), "   ");
        assert_eq!(bar(f64::NAN, 1.0, 3), "   ");
        assert_eq!(bar(1.0, 1.0, 0), "");
    }

    #[test]
    fn sparkline_spans_levels() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
        let flat = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(flat.chars().count(), 3);
        assert_eq!(sparkline(&[]), "");
    }

    #[test]
    fn sparkline_ignores_non_finite() {
        let s = sparkline(&[0.0, f64::NAN, 1.0]);
        assert_eq!(s.chars().count(), 3);
        assert_eq!(s.chars().nth(1), Some(' '));
    }

    #[test]
    fn charts_print_without_panicking() {
        bar_chart("t", &[("a".into(), 1.0), ("bb".into(), 0.5)], 10);
        grouped_bar_chart(
            "t",
            ("x", "y"),
            &[("a".into(), 1.0, 0.5), ("b".into(), 0.2, 0.9)],
            10,
        );
        bar_chart("empty", &[], 10);
    }
}
