//! Schedulers: random, performance-optimized and reliability-optimized
//! (Algorithm 1 of the paper).
//!
//! All schedulers produce a sequence of [`Segment`]s — a mapping of
//! applications to cores plus a duration — and receive
//! [`SegmentObservation`]s after each segment executes. The
//! sampling-based schedulers ([`SamplingScheduler`]) follow the paper's
//! design: an initial sampling phase measures every application on every
//! core type; thereafter applications are greedily pair-switched whenever
//! the sampled data predicts an improvement of the objective (SSER or
//! STP), and any application that has stayed on one core type for
//! `staleness_quanta` scheduler quanta is re-sampled on the other type for
//! one short sampling quantum.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use relsim_cpu::{CoreKind, CpiStack};
use serde::{Deserialize, Serialize};

/// One scheduling interval: which application runs on which core, and for
/// how long.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// `mapping[core] = app`; must be a permutation of `0..n`.
    pub mapping: Vec<usize>,
    /// Segment length in ticks.
    pub ticks: u64,
    /// Whether this is a short sampling segment (counted as overhead).
    pub is_sampling: bool,
}

/// What one application did during one segment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentObservation {
    /// Application index.
    pub app: usize,
    /// Core index it ran on.
    pub core: usize,
    /// That core's type.
    pub kind: CoreKind,
    /// Segment length in ticks.
    pub ticks: u64,
    /// Ticks the core was actually running (excluding migration stall).
    pub active_ticks: u64,
    /// Instructions committed during the segment.
    pub instructions: u64,
    /// ACE bit-time accumulated during the segment (as read from the
    /// configured ACE counter, i.e. possibly quantized).
    pub abc: f64,
    /// CPI-stack delta over the segment (cycle components).
    pub cpi: CpiStack,
}

/// A scheduler's explanation of its most recent [`Scheduler::next_segment`]
/// decision, consumed by the tracing runtime ([`crate::System::run_traced`])
/// to emit `SchedulerDecision` events.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionInfo {
    /// The mapping the scheduler committed to.
    pub mapping: Vec<usize>,
    /// Objective value the scheduler predicts for the chosen mapping, in
    /// the scheduler's own units and direction (SSER cost: lower is
    /// better; STP progress: higher is better). `None` for schedulers
    /// that do not predict (random, static, sampling phases).
    pub predicted_objective: Option<f64>,
    /// Objective value of keeping the previous mapping instead, same
    /// units as `predicted_objective`.
    pub baseline_objective: Option<f64>,
    /// Human-readable justification, e.g. `"pair-switch improves SSER"`.
    pub reason: String,
}

/// A scheduler decides the next segment and learns from observations.
pub trait Scheduler {
    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Plan the next segment.
    fn next_segment(&mut self) -> Segment;

    /// Digest the observations of the segment just executed.
    fn observe(&mut self, obs: &[SegmentObservation]);

    /// Explain the decision behind the most recent
    /// [`Scheduler::next_segment`] call. The default returns `None`,
    /// keeping simple and test-local schedulers source-compatible; the
    /// shipped schedulers record every decision.
    fn last_decision(&self) -> Option<DecisionInfo> {
        None
    }
}

/// Sampling parameters (Section 4.1: quantum 1 ms, sampling quantum
/// 0.1 ms, re-sample after 10 quanta).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplingParams {
    /// Re-sample an application after this many consecutive quanta on the
    /// same core type.
    pub staleness_quanta: u32,
    /// Sampling-quantum length as a fraction of the scheduler quantum.
    pub sampling_fraction: f64,
    /// Minimum relative objective improvement required to switch a pair
    /// of applications. Algorithm 1 switches on any predicted improvement;
    /// a small threshold keeps sampling noise from causing migration
    /// churn (robustness knob, 0.0 restores the literal algorithm).
    pub switch_threshold: f64,
    /// Weight of the newest sample when blending with the previous sample
    /// of the same core type (1.0 = use the latest sample only, as in the
    /// paper; lower values smooth sampling noise).
    pub sample_blend: f64,
}

impl Default for SamplingParams {
    fn default() -> Self {
        SamplingParams {
            staleness_quanta: 10,
            sampling_fraction: 0.1,
            switch_threshold: 0.03,
            sample_blend: 0.6,
        }
    }
}

// ---------------------------------------------------------------- random

/// The random scheduler: a fresh random assignment every quantum.
#[derive(Debug)]
pub struct RandomScheduler {
    core_kinds: Vec<CoreKind>,
    quantum_ticks: u64,
    rng: SmallRng,
    last_decision: Option<DecisionInfo>,
}

impl RandomScheduler {
    /// Build a random scheduler for the given core layout.
    pub fn new(core_kinds: Vec<CoreKind>, quantum_ticks: u64, seed: u64) -> Self {
        RandomScheduler {
            core_kinds,
            quantum_ticks,
            rng: SmallRng::seed_from_u64(seed),
            last_decision: None,
        }
    }
}

impl Scheduler for RandomScheduler {
    fn name(&self) -> &'static str {
        "random"
    }

    fn next_segment(&mut self) -> Segment {
        let mut mapping: Vec<usize> = (0..self.core_kinds.len()).collect();
        mapping.shuffle(&mut self.rng);
        self.last_decision = Some(DecisionInfo {
            mapping: mapping.clone(),
            predicted_objective: None,
            baseline_objective: None,
            reason: "uniform random shuffle".to_string(),
        });
        Segment {
            mapping,
            ticks: self.quantum_ticks,
            is_sampling: false,
        }
    }

    fn observe(&mut self, _obs: &[SegmentObservation]) {}

    fn last_decision(&self) -> Option<DecisionInfo> {
        self.last_decision.clone()
    }
}

// -------------------------------------------------------------- sampling

/// What the sampling scheduler optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize system soft error rate — the paper's contribution.
    Sser,
    /// Maximize system throughput (weighted speedup) — the
    /// performance-optimized baseline.
    Stp,
    /// A blended objective (an extension beyond the paper): minimize
    /// `w·wSER + (1−w)·wSER_big·(1−progress)` per application, where
    /// `w = reliability_pct / 100`. At 100 this reduces exactly to
    /// [`Objective::Sser`]; at 0 it maximizes vulnerability-weighted
    /// progress (a performance objective that still weighs the most
    /// vulnerable applications heaviest). Intermediate settings trace the
    /// reliability/performance Pareto front (see the `ablation_objective`
    /// bench).
    Weighted {
        /// Reliability weight in percent (0–100).
        reliability_pct: u8,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Sample {
    /// Instructions per tick on this core type.
    ips: f64,
    /// ACE bit-time per tick on this core type.
    abc_rate: f64,
    /// Whether the sample exists at all.
    valid: bool,
}

#[derive(Debug, Clone, Default)]
struct AppState {
    /// Samples indexed by core type (0 = big, 1 = small).
    samples: [Sample; 2],
    /// Consecutive scheduler quanta on the current core type.
    consecutive: u32,
    /// Core type during the last main segment.
    last_kind: Option<CoreKind>,
}

fn type_index(kind: CoreKind) -> usize {
    match kind {
        CoreKind::Big => 0,
        CoreKind::Small => 1,
    }
}

/// The paper's sampling-based scheduler, parameterized by objective:
/// [`Objective::Sser`] gives the reliability-optimized scheduler,
/// [`Objective::Stp`] the performance-optimized one.
#[derive(Debug)]
pub struct SamplingScheduler {
    objective: Objective,
    core_kinds: Vec<CoreKind>,
    quantum_ticks: u64,
    params: SamplingParams,
    apps: Vec<AppState>,
    mapping: Vec<usize>,
    /// Rotation counter for the initial sampling phase.
    init_rotation: usize,
    /// Whether the next segment should be the post-sampling main segment.
    pending_main: bool,
    /// Whether the segment most recently issued was a sampling segment.
    last_was_sampling: bool,
    /// Explanation of the most recent `next_segment` decision.
    last_decision: Option<DecisionInfo>,
}

impl SamplingScheduler {
    /// Build a sampling scheduler.
    ///
    /// # Panics
    ///
    /// Panics if there are no cores, or the cores are all of one type
    /// (sampling both types would be impossible).
    pub fn new(
        objective: Objective,
        core_kinds: Vec<CoreKind>,
        quantum_ticks: u64,
        params: SamplingParams,
    ) -> Self {
        assert!(!core_kinds.is_empty(), "need at least one core");
        assert!(
            core_kinds.contains(&CoreKind::Big) && core_kinds.contains(&CoreKind::Small),
            "sampling scheduler needs a heterogeneous system"
        );
        let n = core_kinds.len();
        SamplingScheduler {
            objective,
            quantum_ticks,
            params,
            apps: vec![AppState::default(); n],
            mapping: (0..n).collect(),
            init_rotation: 0,
            pending_main: false,
            last_was_sampling: false,
            last_decision: None,
            core_kinds,
        }
    }

    /// Total objective cost of a mapping (sum of per-pair costs; lower is
    /// better for every objective, see [`Self::pair_cost`]).
    fn total_cost(&self, mapping: &[usize]) -> f64 {
        mapping
            .iter()
            .zip(&self.core_kinds)
            .map(|(&app, &kind)| self.pair_cost(app, kind))
            .sum()
    }

    /// Whether every application has a sample for both core types.
    fn fully_sampled(&self) -> bool {
        self.apps
            .iter()
            .all(|a| a.samples[0].valid && a.samples[1].valid)
    }

    /// Mapping that rotates applications across cores by `k` positions.
    fn rotated_mapping(&self, k: usize) -> Vec<usize> {
        let n = self.core_kinds.len();
        (0..n).map(|core| (core + k) % n).collect()
    }

    /// Predicted per-quantum objective contribution of `app` on `kind`
    /// (lower is better for SSER; higher is better for STP).
    fn contribution(&self, app: usize, kind: CoreKind) -> f64 {
        let s = &self.apps[app].samples[type_index(kind)];
        let big = &self.apps[app].samples[0];
        match self.objective {
            Objective::Sser => {
                // wSER over a quantum ∝ abc_rate(kind) × ips(big)/ips(kind):
                // the sampled big-core IPS stands in for the isolated
                // reference (Section 4.1).
                if s.ips <= 0.0 {
                    return 0.0;
                }
                s.abc_rate * (big.ips / s.ips)
            }
            Objective::Stp => {
                if big.ips <= 0.0 {
                    return 0.0;
                }
                s.ips / big.ips
            }
            // The weighted objective is expressed directly as a pair cost;
            // see `pair_cost`.
            Objective::Weighted { .. } => 0.0,
        }
    }

    /// Greedy pairwise switching (the `while` loop of Algorithm 1): keep
    /// switching the best big/small application pair while it improves the
    /// global objective.
    fn optimize_mapping(&self, start: &[usize]) -> Vec<usize> {
        let mut mapping = start.to_vec();
        loop {
            let mut best: Option<(usize, usize, f64)> = None; // (core_a, core_b, gain)
            for (ca, &ka) in self.core_kinds.iter().enumerate() {
                if ka != CoreKind::Big {
                    continue;
                }
                for (cb, &kb) in self.core_kinds.iter().enumerate() {
                    if kb != CoreKind::Small {
                        continue;
                    }
                    let (a, b) = (mapping[ca], mapping[cb]);
                    let current =
                        self.pair_cost(a, CoreKind::Big) + self.pair_cost(b, CoreKind::Small);
                    let switched =
                        self.pair_cost(a, CoreKind::Small) + self.pair_cost(b, CoreKind::Big);
                    let gain = current - switched; // positive = improvement
                    let needed = self.params.switch_threshold * current.abs().max(1e-12);
                    if gain > needed && best.is_none_or(|(_, _, g)| gain > g) {
                        best = Some((ca, cb, gain));
                    }
                }
            }
            match best {
                Some((ca, cb, _)) => mapping.swap(ca, cb),
                None => return mapping,
            }
        }
    }

    /// Objective value as a cost (lower is better) for pair comparison.
    fn pair_cost(&self, app: usize, kind: CoreKind) -> f64 {
        match self.objective {
            Objective::Sser => self.contribution(app, kind),
            Objective::Stp => -self.contribution(app, kind),
            Objective::Weighted { reliability_pct } => {
                let w = f64::from(reliability_pct.min(100)) / 100.0;
                let s = &self.apps[app].samples[type_index(kind)];
                let big = &self.apps[app].samples[0];
                let wser = if s.ips > 0.0 {
                    s.abc_rate * (big.ips / s.ips)
                } else {
                    0.0
                };
                let wser_big = big.abc_rate;
                let progress = if big.ips > 0.0 { s.ips / big.ips } else { 0.0 };
                w * wser + (1.0 - w) * wser_big * (1.0 - progress)
            }
        }
    }

    fn sampling_ticks(&self) -> u64 {
        ((self.quantum_ticks as f64 * self.params.sampling_fraction) as u64).max(1)
    }

    /// Build the sampling mapping that swaps each stale application with
    /// the application that has run longest on the other core type.
    fn staleness_swaps(&self) -> Option<Vec<usize>> {
        let mut mapping = self.mapping.clone();
        let mut swapped = vec![false; self.apps.len()];
        let mut any = false;
        loop {
            // Find the stalest unswapped app.
            let mut stale: Option<(usize, u32)> = None; // (core, consecutive)
            for (core, &app) in mapping.iter().enumerate() {
                if swapped[app] {
                    continue;
                }
                let c = self.apps[app].consecutive;
                if c >= self.params.staleness_quanta && stale.is_none_or(|(_, best)| c > best) {
                    stale = Some((core, c));
                }
            }
            let Some((core_a, _)) = stale else { break };
            let kind_a = self.core_kinds[core_a];
            // Partner: longest-resident unswapped app on the other type.
            let mut partner: Option<(usize, u32)> = None;
            for (core, &app) in mapping.iter().enumerate() {
                if swapped[app] || self.core_kinds[core] != kind_a.other() {
                    continue;
                }
                let c = self.apps[app].consecutive;
                if partner.is_none_or(|(_, best)| c > best) {
                    partner = Some((core, c));
                }
            }
            let Some((core_b, _)) = partner else { break };
            swapped[mapping[core_a]] = true;
            swapped[mapping[core_b]] = true;
            mapping.swap(core_a, core_b);
            any = true;
        }
        any.then_some(mapping)
    }
}

impl Scheduler for SamplingScheduler {
    fn name(&self) -> &'static str {
        match self.objective {
            Objective::Sser => "reliability-optimized",
            Objective::Stp => "performance-optimized",
            Objective::Weighted { .. } => "weighted",
        }
    }

    fn next_segment(&mut self) -> Segment {
        if !self.fully_sampled() {
            // Initial sampling phase: rotate applications across cores so
            // every application visits every core type.
            let mapping = self.rotated_mapping(self.init_rotation);
            self.last_decision = Some(DecisionInfo {
                mapping: mapping.clone(),
                predicted_objective: None,
                baseline_objective: None,
                reason: format!("initial sampling rotation {}", self.init_rotation),
            });
            self.init_rotation += 1;
            self.last_was_sampling = true;
            return Segment {
                mapping,
                ticks: self.sampling_ticks(),
                is_sampling: true,
            };
        }

        if !self.pending_main {
            if let Some(mapping) = self.staleness_swaps() {
                // One short sampling quantum with the stale apps swapped.
                self.pending_main = true;
                self.last_was_sampling = true;
                self.last_decision = Some(DecisionInfo {
                    mapping: mapping.clone(),
                    predicted_objective: None,
                    baseline_objective: None,
                    reason: format!(
                        "re-sample applications stale for >= {} quanta",
                        self.params.staleness_quanta
                    ),
                });
                return Segment {
                    mapping,
                    ticks: self.sampling_ticks(),
                    is_sampling: true,
                };
            }
        }
        self.pending_main = false;

        let previous = self.mapping.clone();
        let baseline = self.total_cost(&previous);
        let mapping = self.optimize_mapping(&previous);
        let predicted = self.total_cost(&mapping);
        self.last_decision = Some(DecisionInfo {
            mapping: mapping.clone(),
            predicted_objective: Some(predicted),
            baseline_objective: Some(baseline),
            reason: if mapping == previous {
                "keep mapping: no pair-switch clears the threshold".to_string()
            } else {
                format!(
                    "pair-switch: predicted cost {predicted:.6e} vs {baseline:.6e} \
                     for the previous mapping"
                )
            },
        });
        self.mapping = mapping.clone();
        self.last_was_sampling = false;
        Segment {
            mapping,
            ticks: self.quantum_ticks,
            is_sampling: false,
        }
    }

    fn observe(&mut self, obs: &[SegmentObservation]) {
        let sampling = self.last_was_sampling;
        for o in obs {
            if o.active_ticks == 0 {
                continue;
            }
            let st = &mut self.apps[o.app];
            let slot = &mut st.samples[type_index(o.kind)];
            let (new_ips, new_abc) = (
                o.instructions as f64 / o.active_ticks as f64,
                o.abc / o.active_ticks as f64,
            );
            if slot.valid {
                let w = self.params.sample_blend;
                slot.ips = w * new_ips + (1.0 - w) * slot.ips;
                slot.abc_rate = w * new_abc + (1.0 - w) * slot.abc_rate;
            } else {
                *slot = Sample {
                    ips: new_ips,
                    abc_rate: new_abc,
                    valid: true,
                };
            }
            if sampling {
                // Apps moved for sampling have fresh cross-type data now.
                if st.last_kind.is_some() && st.last_kind != Some(o.kind) {
                    st.consecutive = 0;
                }
            } else if st.last_kind == Some(o.kind) {
                st.consecutive = st.consecutive.saturating_add(1);
                // Staleness applies to the *other* type's sample: ageing is
                // implied by `consecutive` alone.
            } else {
                st.consecutive = 1;
                st.last_kind = Some(o.kind);
            }
        }
    }

    fn last_decision(&self) -> Option<DecisionInfo> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds_2b2s() -> Vec<CoreKind> {
        vec![
            CoreKind::Big,
            CoreKind::Big,
            CoreKind::Small,
            CoreKind::Small,
        ]
    }

    fn is_permutation(mapping: &[usize]) -> bool {
        let mut seen = vec![false; mapping.len()];
        for &a in mapping {
            if a >= mapping.len() || seen[a] {
                return false;
            }
            seen[a] = true;
        }
        true
    }

    #[test]
    fn random_scheduler_emits_permutations() {
        let mut s = RandomScheduler::new(kinds_2b2s(), 1000, 42);
        for _ in 0..50 {
            let seg = s.next_segment();
            assert!(is_permutation(&seg.mapping));
            assert_eq!(seg.ticks, 1000);
            assert!(!seg.is_sampling);
        }
    }

    #[test]
    fn random_scheduler_actually_varies() {
        let mut s = RandomScheduler::new(kinds_2b2s(), 1000, 42);
        let maps: Vec<_> = (0..20).map(|_| s.next_segment().mapping).collect();
        assert!(maps.windows(2).any(|w| w[0] != w[1]));
    }

    fn observe_segment(
        s: &mut SamplingScheduler,
        seg: &Segment,
        profiles: &[(f64, f64, f64, f64)],
    ) {
        // profiles[app] = (big_ips, big_abc_rate, small_ips, small_abc_rate)
        let kinds = s.core_kinds.clone();
        let obs: Vec<SegmentObservation> = seg
            .mapping
            .iter()
            .enumerate()
            .map(|(core, &app)| {
                let (bi, ba, si, sa) = profiles[app];
                let (ips, abc) = match kinds[core] {
                    CoreKind::Big => (bi, ba),
                    CoreKind::Small => (si, sa),
                };
                SegmentObservation {
                    app,
                    core,
                    kind: kinds[core],
                    ticks: seg.ticks,
                    active_ticks: seg.ticks,
                    instructions: (ips * seg.ticks as f64) as u64,
                    abc: abc * seg.ticks as f64,
                    cpi: CpiStack::default(),
                }
            })
            .collect();
        s.observe(&obs);
    }

    /// Drive a scheduler against fixed analytic app profiles until it
    /// settles; return the settled mapping.
    fn settle(objective: Objective, profiles: &[(f64, f64, f64, f64)]) -> Vec<usize> {
        let mut s =
            SamplingScheduler::new(objective, kinds_2b2s(), 10_000, SamplingParams::default());
        let mut last = Vec::new();
        for _ in 0..30 {
            let seg = s.next_segment();
            observe_segment(&mut s, &seg, profiles);
            if !seg.is_sampling {
                last = seg.mapping.clone();
            }
        }
        last
    }

    #[test]
    fn sser_scheduler_puts_high_avf_apps_on_small_cores() {
        // Apps 0,1: high big-core ABC rate; apps 2,3: low.
        // All have the same performance profile.
        let profiles = [
            (1.0, 100.0, 0.5, 10.0),
            (1.0, 100.0, 0.5, 10.0),
            (1.0, 20.0, 0.5, 5.0),
            (1.0, 20.0, 0.5, 5.0),
        ];
        let mapping = settle(Objective::Sser, &profiles);
        assert!(is_permutation(&mapping));
        // Cores 0,1 are big; they should hold the low-ABC apps 2 and 3.
        let on_big: Vec<usize> = vec![mapping[0], mapping[1]];
        assert!(
            on_big.contains(&2) && on_big.contains(&3),
            "big cores should run low-AVF apps, got {mapping:?}"
        );
    }

    #[test]
    fn stp_scheduler_puts_big_core_friendly_apps_on_big_cores() {
        // Apps 0,1 speed up 4x on big; apps 2,3 only 1.25x.
        let profiles = [
            (2.0, 1.0, 0.5, 1.0),
            (2.0, 1.0, 0.5, 1.0),
            (1.0, 1.0, 0.8, 1.0),
            (1.0, 1.0, 0.8, 1.0),
        ];
        let mapping = settle(Objective::Stp, &profiles);
        let on_big: Vec<usize> = vec![mapping[0], mapping[1]];
        assert!(
            on_big.contains(&0) && on_big.contains(&1),
            "big cores should run high-speedup apps, got {mapping:?}"
        );
    }

    #[test]
    fn initial_phase_samples_every_app_on_every_type() {
        let mut s = SamplingScheduler::new(
            Objective::Sser,
            vec![
                CoreKind::Big,
                CoreKind::Small,
                CoreKind::Small,
                CoreKind::Small,
            ],
            10_000,
            SamplingParams::default(),
        );
        let profiles = [(1.0, 10.0, 0.5, 2.0); 4];
        let mut sampling_segments = 0;
        for _ in 0..20 {
            let seg = s.next_segment();
            if seg.is_sampling {
                sampling_segments += 1;
            }
            observe_segment(&mut s, &seg, &profiles);
            if s.fully_sampled() {
                break;
            }
        }
        assert!(s.fully_sampled());
        // 1B3S needs at least 4 rotations to see every app on the big core.
        assert!(sampling_segments >= 4, "got {sampling_segments}");
    }

    #[test]
    fn staleness_triggers_resampling() {
        let mut s = SamplingScheduler::new(
            Objective::Sser,
            kinds_2b2s(),
            10_000,
            SamplingParams {
                staleness_quanta: 3,
                sampling_fraction: 0.1,
                ..SamplingParams::default()
            },
        );
        let profiles = [
            (1.0, 100.0, 0.5, 10.0),
            (1.0, 100.0, 0.5, 10.0),
            (1.0, 20.0, 0.5, 5.0),
            (1.0, 20.0, 0.5, 5.0),
        ];
        let mut sampling_after_init = 0;
        let mut seen_main = false;
        for _ in 0..40 {
            let seg = s.next_segment();
            if !seg.is_sampling {
                seen_main = true;
            } else if seen_main {
                sampling_after_init += 1;
                assert_eq!(seg.ticks, 1000, "sampling quantum is a tenth");
            }
            observe_segment(&mut s, &seg, &profiles);
        }
        assert!(
            sampling_after_init >= 2,
            "steady-state resampling expected, got {sampling_after_init}"
        );
    }

    #[test]
    fn optimized_mapping_is_always_a_permutation() {
        let profiles = [
            (1.3, 80.0, 0.6, 9.0),
            (0.9, 10.0, 0.6, 7.0),
            (0.4, 60.0, 0.3, 20.0),
            (1.9, 30.0, 0.8, 3.0),
        ];
        for obj in [Objective::Sser, Objective::Stp] {
            let mapping = settle(obj, &profiles);
            assert!(is_permutation(&mapping), "{obj:?}: {mapping:?}");
        }
    }

    #[test]
    fn weighted_objective_interpolates() {
        // Apps 0,1: high big-core ABC; apps 2,3: big speedup ratio. Pure
        // reliability puts 0,1 on small; pure performance puts 2,3... all
        // apps have distinct trade-offs, so the extremes must differ.
        let profiles = [
            (1.0, 100.0, 0.9, 10.0), // high ABC, tiny speedup
            (1.0, 100.0, 0.9, 10.0),
            (2.0, 20.0, 0.5, 8.0), // low ABC, huge speedup
            (2.0, 20.0, 0.5, 8.0),
        ];
        let rel = settle(
            Objective::Weighted {
                reliability_pct: 100,
            },
            &profiles,
        );
        let perf = settle(Objective::Weighted { reliability_pct: 0 }, &profiles);
        let pure_rel = settle(Objective::Sser, &profiles);
        assert_eq!(rel, pure_rel, "w=100% must match the Sser objective");
        // Reliability extreme: high-ABC apps 0,1 on small (cores 2,3).
        assert!(rel[0] >= 2 && rel[1] >= 2, "{rel:?}");
        // Performance extreme: high-speedup apps 2,3 on big.
        assert!(perf[0] >= 2 && perf[1] >= 2, "{perf:?}");
    }

    #[test]
    fn decisions_are_recorded_with_objectives() {
        let profiles = [
            (1.0, 100.0, 0.5, 10.0),
            (1.0, 100.0, 0.5, 10.0),
            (1.0, 20.0, 0.5, 5.0),
            (1.0, 20.0, 0.5, 5.0),
        ];
        let mut s = SamplingScheduler::new(
            Objective::Sser,
            kinds_2b2s(),
            10_000,
            SamplingParams::default(),
        );
        assert!(
            s.last_decision().is_none(),
            "no decision before the first segment"
        );
        let mut main_decisions = 0;
        for _ in 0..30 {
            let seg = s.next_segment();
            let d = s.last_decision().expect("every segment leaves a decision");
            assert_eq!(d.mapping, seg.mapping);
            if seg.is_sampling {
                assert!(d.predicted_objective.is_none());
            } else {
                assert!(d.predicted_objective.is_some());
                assert!(d.baseline_objective.is_some());
                // The chosen mapping can never predict worse than keeping
                // the previous one.
                assert!(d.predicted_objective <= d.baseline_objective);
                main_decisions += 1;
            }
            assert!(!d.reason.is_empty());
            observe_segment(&mut s, &seg, &profiles);
        }
        assert!(main_decisions > 0);
    }

    #[test]
    #[should_panic(expected = "heterogeneous")]
    fn homogeneous_system_rejected() {
        let _ = SamplingScheduler::new(
            Objective::Sser,
            vec![CoreKind::Big, CoreKind::Big],
            1000,
            SamplingParams::default(),
        );
    }
}

// ---------------------------------------------------------------- static

/// A scheduler that pins one fixed application-to-core mapping for the
/// whole run (no sampling, no migrations). Useful as a baseline, for
/// isolating interference effects, and as the executor for offline oracle
/// schedules (see [`crate::oracle`]).
#[derive(Debug, Clone)]
pub struct StaticScheduler {
    mapping: Vec<usize>,
    quantum_ticks: u64,
}

impl StaticScheduler {
    /// Pin `mapping[core] = app` for the whole run.
    ///
    /// # Panics
    ///
    /// Panics if `mapping` is not a permutation of `0..n`.
    pub fn new(mapping: Vec<usize>, quantum_ticks: u64) -> Self {
        let mut seen = vec![false; mapping.len()];
        for &a in &mapping {
            assert!(
                a < mapping.len() && !seen[a],
                "mapping must be a permutation, got {mapping:?}"
            );
            seen[a] = true;
        }
        StaticScheduler {
            mapping,
            quantum_ticks,
        }
    }

    /// Build the static schedule that realizes an oracle outcome: the
    /// applications in `on_big` (indices into the workload) are placed on
    /// the big cores of `core_kinds`, everything else on small cores.
    ///
    /// # Panics
    ///
    /// Panics if the number of big cores does not match `on_big`, or the
    /// arities are inconsistent.
    pub fn from_oracle(on_big: &[usize], core_kinds: &[CoreKind], quantum_ticks: u64) -> Self {
        let n_big = core_kinds.iter().filter(|k| **k == CoreKind::Big).count();
        assert_eq!(on_big.len(), n_big, "oracle schedule arity mismatch");
        let n = core_kinds.len();
        let mut big_apps = on_big.to_vec();
        let mut small_apps: Vec<usize> = (0..n).filter(|a| !on_big.contains(a)).collect();
        let mapping: Vec<usize> = core_kinds
            .iter()
            .map(|k| match k {
                CoreKind::Big => big_apps.remove(0),
                CoreKind::Small => small_apps.remove(0),
            })
            .collect();
        Self::new(mapping, quantum_ticks)
    }
}

impl Scheduler for StaticScheduler {
    fn name(&self) -> &'static str {
        "static"
    }

    fn next_segment(&mut self) -> Segment {
        Segment {
            mapping: self.mapping.clone(),
            ticks: self.quantum_ticks,
            is_sampling: false,
        }
    }

    fn observe(&mut self, _obs: &[SegmentObservation]) {}

    fn last_decision(&self) -> Option<DecisionInfo> {
        Some(DecisionInfo {
            mapping: self.mapping.clone(),
            predicted_objective: None,
            baseline_objective: None,
            reason: "pinned mapping".to_string(),
        })
    }
}

#[cfg(test)]
mod static_tests {
    use super::*;

    #[test]
    fn static_scheduler_never_moves() {
        let mut s = StaticScheduler::new(vec![2, 0, 3, 1], 500);
        for _ in 0..10 {
            let seg = s.next_segment();
            assert_eq!(seg.mapping, vec![2, 0, 3, 1]);
            assert_eq!(seg.ticks, 500);
            assert!(!seg.is_sampling);
        }
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn non_permutation_rejected() {
        let _ = StaticScheduler::new(vec![0, 0, 1, 2], 500);
    }

    #[test]
    fn from_oracle_places_big_apps_on_big_cores() {
        let kinds = vec![
            CoreKind::Big,
            CoreKind::Big,
            CoreKind::Small,
            CoreKind::Small,
        ];
        let s = StaticScheduler::from_oracle(&[1, 3], &kinds, 100);
        let seg = {
            let mut s = s.clone();
            s.next_segment()
        };
        assert_eq!(seg.mapping[0], 1);
        assert_eq!(seg.mapping[1], 3);
        let on_small: Vec<usize> = vec![seg.mapping[2], seg.mapping[3]];
        assert!(on_small.contains(&0) && on_small.contains(&2));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn oracle_arity_checked() {
        let kinds = vec![CoreKind::Big, CoreKind::Small];
        let _ = StaticScheduler::from_oracle(&[0, 1], &kinds, 100);
    }
}

// ---------------------------------------------------------------- backup

/// The backup-aware scheduler (DESIGN.md §15): place the applications
/// whose state is most vulnerable where the k-fault recovery guarantee
/// protects them.
///
/// Under the backup reliability mode ([`crate::ModeKind::Backup`]) the
/// small cores double as backup/compare partners: an ACE-hitting fault on
/// a protected application is recovered by its backup, up to `k` faults
/// per scheduling quantum. This scheduler samples every application on
/// both core types (same rotation phase as [`SamplingScheduler`]), then
/// deterministically pins the highest-ABC applications — the ones most
/// likely to turn a strike into an SDC — onto the protected small cores,
/// ordered by observed big-core ACE bit-rate (ties broken by application
/// index, so the mapping is a pure function of the observations).
#[derive(Debug)]
pub struct BackupScheduler {
    core_kinds: Vec<CoreKind>,
    quantum_ticks: u64,
    /// Number of faults per quantum the backup arrangement must absorb.
    k: u32,
    apps: Vec<AppState>,
    init_rotation: usize,
    last_was_sampling: bool,
    last_decision: Option<DecisionInfo>,
}

impl BackupScheduler {
    /// Build a backup-aware scheduler honoring a `k`-fault guarantee.
    ///
    /// # Panics
    ///
    /// Panics if there are no cores.
    pub fn new(core_kinds: Vec<CoreKind>, quantum_ticks: u64, k: u32) -> Self {
        assert!(!core_kinds.is_empty(), "need at least one core");
        let n = core_kinds.len();
        BackupScheduler {
            core_kinds,
            quantum_ticks,
            k,
            apps: vec![AppState::default(); n],
            init_rotation: 0,
            last_was_sampling: false,
            last_decision: None,
        }
    }

    /// The configured fault-guarantee budget.
    pub fn k(&self) -> u32 {
        self.k
    }

    fn fully_sampled(&self) -> bool {
        // A homogeneous layout can only ever sample one type; require
        // whatever types actually exist.
        let has = |kind: CoreKind| self.core_kinds.contains(&kind);
        self.apps.iter().all(|a| {
            (!has(CoreKind::Big) || a.samples[0].valid)
                && (!has(CoreKind::Small) || a.samples[1].valid)
        })
    }

    fn rotated_mapping(&self, k: usize) -> Vec<usize> {
        let n = self.core_kinds.len();
        (0..n).map(|core| (core + k) % n).collect()
    }

    /// The deterministic protected placement: applications in descending
    /// big-core ABC-rate order fill the small (protected) cores first,
    /// the remainder fill the big cores, both in core-index order.
    fn protected_mapping(&self) -> Vec<usize> {
        let n = self.core_kinds.len();
        let mut by_vuln: Vec<usize> = (0..n).collect();
        by_vuln.sort_by(|&a, &b| {
            let ra = self.apps[a].samples[0].abc_rate;
            let rb = self.apps[b].samples[0].abc_rate;
            rb.partial_cmp(&ra)
                .unwrap_or(core::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        let mut mapping = vec![usize::MAX; n];
        let mut next = by_vuln.into_iter();
        for (core, kind) in self.core_kinds.iter().enumerate() {
            if *kind == CoreKind::Small {
                mapping[core] = next.next().expect("one app per core");
            }
        }
        for (core, kind) in self.core_kinds.iter().enumerate() {
            if *kind == CoreKind::Big {
                mapping[core] = next.next().expect("one app per core");
            }
        }
        mapping
    }
}

impl Scheduler for BackupScheduler {
    fn name(&self) -> &'static str {
        "backup-aware"
    }

    fn next_segment(&mut self) -> Segment {
        if !self.fully_sampled() {
            let mapping = self.rotated_mapping(self.init_rotation);
            self.last_decision = Some(DecisionInfo {
                mapping: mapping.clone(),
                predicted_objective: None,
                baseline_objective: None,
                reason: format!("initial sampling rotation {}", self.init_rotation),
            });
            self.init_rotation += 1;
            self.last_was_sampling = true;
            return Segment {
                mapping,
                ticks: ((self.quantum_ticks / 10).max(1)).min(self.quantum_ticks),
                is_sampling: true,
            };
        }
        let mapping = self.protected_mapping();
        self.last_decision = Some(DecisionInfo {
            mapping: mapping.clone(),
            predicted_objective: None,
            baseline_objective: None,
            reason: format!(
                "protect the most vulnerable applications on backup cores (k={})",
                self.k
            ),
        });
        self.last_was_sampling = false;
        Segment {
            mapping,
            ticks: self.quantum_ticks,
            is_sampling: false,
        }
    }

    fn observe(&mut self, obs: &[SegmentObservation]) {
        for o in obs {
            if o.active_ticks == 0 {
                continue;
            }
            let slot = &mut self.apps[o.app].samples[type_index(o.kind)];
            let (new_ips, new_abc) = (
                o.instructions as f64 / o.active_ticks as f64,
                o.abc / o.active_ticks as f64,
            );
            if slot.valid {
                // Blend like the sampling scheduler's default so steady
                // state stays stable under noisy observations.
                slot.ips = 0.6 * new_ips + 0.4 * slot.ips;
                slot.abc_rate = 0.6 * new_abc + 0.4 * slot.abc_rate;
            } else {
                *slot = Sample {
                    ips: new_ips,
                    abc_rate: new_abc,
                    valid: true,
                };
            }
        }
    }

    fn last_decision(&self) -> Option<DecisionInfo> {
        self.last_decision.clone()
    }
}

#[cfg(test)]
mod backup_tests {
    use super::*;

    #[test]
    fn protects_the_most_vulnerable_apps_on_small_cores() {
        let kinds = vec![
            CoreKind::Big,
            CoreKind::Big,
            CoreKind::Small,
            CoreKind::Small,
        ];
        let mut s = BackupScheduler::new(kinds.clone(), 10_000, 1);
        // profiles[app] = (big_ips, big_abc, small_ips, small_abc)
        let profiles = [
            (1.0, 100.0, 0.5, 10.0),
            (1.0, 20.0, 0.5, 5.0),
            (1.0, 90.0, 0.5, 9.0),
            (1.0, 30.0, 0.5, 6.0),
        ];
        let mut last = Vec::new();
        for _ in 0..20 {
            let seg = s.next_segment();
            let obs: Vec<SegmentObservation> = seg
                .mapping
                .iter()
                .enumerate()
                .map(|(core, &app)| {
                    let (bi, ba, si, sa) = profiles[app];
                    let (ips, abc) = match kinds[core] {
                        CoreKind::Big => (bi, ba),
                        CoreKind::Small => (si, sa),
                    };
                    SegmentObservation {
                        app,
                        core,
                        kind: kinds[core],
                        ticks: seg.ticks,
                        active_ticks: seg.ticks,
                        instructions: (ips * seg.ticks as f64) as u64,
                        abc: abc * seg.ticks as f64,
                        cpi: CpiStack::default(),
                    }
                })
                .collect();
            s.observe(&obs);
            if !seg.is_sampling {
                last = seg.mapping;
            }
        }
        // Apps 0 and 2 have the highest big-core ABC: they belong on the
        // protected small cores (cores 2 and 3).
        assert_eq!(last[2], 0, "most vulnerable app on the first small core");
        assert_eq!(last[3], 2);
        assert!(last[..2].contains(&1) && last[..2].contains(&3));
    }

    #[test]
    fn settled_mapping_is_deterministic() {
        let kinds = vec![CoreKind::Big, CoreKind::Small];
        let run = || {
            let mut s = BackupScheduler::new(kinds.clone(), 5_000, 2);
            let mut maps = Vec::new();
            for round in 0..10 {
                let seg = s.next_segment();
                let obs: Vec<SegmentObservation> = seg
                    .mapping
                    .iter()
                    .enumerate()
                    .map(|(core, &app)| SegmentObservation {
                        app,
                        core,
                        kind: kinds[core],
                        ticks: seg.ticks,
                        active_ticks: seg.ticks,
                        instructions: 100 + app as u64 + round,
                        abc: 50.0 * (app + 1) as f64,
                        cpi: CpiStack::default(),
                    })
                    .collect();
                s.observe(&obs);
                maps.push(seg.mapping);
            }
            maps
        };
        assert_eq!(run(), run());
    }
}
