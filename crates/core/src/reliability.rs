//! Per-core reliability modes and active fault-outcome classification
//! (DESIGN.md §15).
//!
//! The paper mitigates soft errors purely by *scheduling*; this module
//! adds the orthogonal design axis explored by the
//! checkpointing/replication literature (arXiv 1811.07612, 1405.2913):
//! each run can execute under a [`ModeKind`] — checkpoint/rollback,
//! dual-modular replication, or backup-aware scheduling with a k-fault
//! guarantee — and an active fault campaign
//! ([`relsim_ace::live::draw_campaign`]) is classified against the run's
//! measured ACE occupancy into the four-way outcome taxonomy of
//! [`FaultOutcome`].
//!
//! Classification is a pure post-run function of the (deterministic)
//! timeline and the campaign seed: it never perturbs the tick loop, so
//! every engine equivalence (event-horizon skip, interval sampling,
//! `-jN`, result cache) carries over to reliability runs unchanged. The
//! microarchitectural reality of rollback recovery — that restore plus
//! re-execution commits bit-identical state — is proven separately, on a
//! live core, by [`relsim_ace::live::run_checkpointed`] and the
//! `fault_recovery` suite.

use crate::system::SegmentRecord;
use relsim_ace::live::{draw_campaign, FaultOutcome, RawFault};
use serde::{Deserialize, Serialize};

/// Which reliability mode a run executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ModeKind {
    /// No redundancy: every ACE hit is an SDC (the paper's baseline).
    Off,
    /// Checkpoint/rollback: epochs of `ckpt_interval` ticks; a detected
    /// fault rolls back to the last checkpoint and re-executes.
    Checkpoint,
    /// Dual-modular replication: a big/small pair runs the same work in
    /// lockstep; compare-at-commit masks any single fault.
    Dmr,
    /// Backup-aware scheduling: protected placement plus spare capacity
    /// recovering up to `k` faults per scheduling quantum.
    Backup,
}

impl ModeKind {
    /// All modes, in report order.
    pub const ALL: [ModeKind; 4] = [
        ModeKind::Off,
        ModeKind::Checkpoint,
        ModeKind::Dmr,
        ModeKind::Backup,
    ];

    /// Stable lowercase name (flag value, event/counter field).
    pub fn name(self) -> &'static str {
        match self {
            ModeKind::Off => "off",
            ModeKind::Checkpoint => "checkpoint",
            ModeKind::Dmr => "dmr",
            ModeKind::Backup => "backup",
        }
    }

    /// Parse a `--mode` flag value.
    pub fn parse(s: &str) -> Option<Self> {
        ModeKind::ALL.into_iter().find(|m| m.name() == s)
    }
}

/// Everything a reliability-mode run is parameterized by. Hashed into
/// cache keys, so any change to the plan re-simulates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityPlan {
    /// The active mode.
    pub mode: ModeKind,
    /// Checkpoint interval in ticks (checkpoint mode).
    pub ckpt_interval: u64,
    /// Ticks charged per checkpoint taken (capture overhead).
    pub ckpt_overhead_ticks: u64,
    /// Number of single-bit faults to inject over the run.
    pub faults: u64,
    /// Campaign RNG seed (one stream for the whole run).
    pub fault_seed: u64,
    /// Fault-guarantee budget per scheduling quantum (backup mode).
    pub k: u32,
}

impl Default for ReliabilityPlan {
    fn default() -> Self {
        ReliabilityPlan {
            mode: ModeKind::Off,
            ckpt_interval: 50_000,
            ckpt_overhead_ticks: 500,
            faults: 0,
            fault_seed: 0x5eed_fa57,
            k: 1,
        }
    }
}

impl ReliabilityPlan {
    /// A plan running `mode` with `faults` injections, other knobs at
    /// their defaults.
    pub fn new(mode: ModeKind, faults: u64) -> Self {
        ReliabilityPlan {
            mode,
            faults,
            ..ReliabilityPlan::default()
        }
    }
}

/// One classified fault of a run's campaign, in strike-tick order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct ClassifiedFault {
    /// The raw draw.
    pub fault: RawFault,
    /// Whether the strike hit ACE state (occupancy test).
    pub ace_hit: bool,
    /// How it ended under the active mode.
    pub outcome: FaultOutcome,
}

/// Outcome totals of one run's fault campaign, attached to
/// [`crate::RunResult`] and serialized into artifacts.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityReport {
    /// Active mode name ([`ModeKind::name`]).
    pub mode: String,
    /// Fault-guarantee budget (backup mode; echoed for all modes).
    pub k: u32,
    /// Faults injected.
    pub faults: u64,
    /// Strikes that hit non-ACE state.
    pub masked: u64,
    /// ACE hits recovered by checkpoint rollback.
    pub recovered_rollback: u64,
    /// ACE hits recovered by a replica or backup.
    pub recovered_replica: u64,
    /// ACE hits that reached committed state.
    pub sdc: u64,
    /// Checkpoints taken over the run (checkpoint mode).
    pub checkpoints: u64,
    /// Ticks spent capturing checkpoints (`checkpoints ×
    /// ckpt_overhead_ticks`).
    pub ckpt_overhead_ticks: u64,
    /// Ticks re-executed recovering from rollbacks.
    pub reexec_ticks: u64,
}

impl ReliabilityReport {
    /// ACE hits (everything that needed handling).
    pub fn ace_hits(&self) -> u64 {
        self.recovered_rollback + self.recovered_replica + self.sdc
    }

    /// Total recovery/protection overhead in ticks, to be charged to
    /// throughput and energy.
    pub fn overhead_ticks(&self) -> u64 {
        self.ckpt_overhead_ticks + self.reexec_ticks
    }
}

/// Average ACE-bit occupancy (fraction of the core's bits holding ACE
/// state) of `core` during the segment covering `tick`, from the run
/// timeline. Segments are contiguous and sorted by start, so a binary
/// search finds the covering segment.
fn occupancy(timeline: &[SegmentRecord], core: usize, tick: u64, core_bits: u64) -> f64 {
    if core_bits == 0 {
        return 0.0;
    }
    let idx = match timeline.binary_search_by(|seg| seg.start.cmp(&tick)) {
        Ok(i) => i,
        Err(0) => return 0.0,
        Err(i) => i - 1,
    };
    let seg = &timeline[idx];
    if tick >= seg.start + seg.ticks || core >= seg.mapping.len() {
        return 0.0;
    }
    let app = seg.mapping[core];
    let abc = seg.app_abc.get(app).copied().unwrap_or(0.0);
    (abc / (seg.ticks as f64 * core_bits as f64)).clamp(0.0, 1.0)
}

/// Classify a whole campaign against a finished run.
///
/// Faults are drawn from the plan's single seeded stream, then processed
/// in strike-tick order (ties broken by injection index) — the order a
/// hardware detector would see them, and the order the per-quantum
/// `k`-budget of backup mode consumes them in. Pure function of its
/// arguments; `core_bits[c]` is core `c`'s total bit count.
pub fn classify(
    plan: &ReliabilityPlan,
    duration: u64,
    quantum_ticks: u64,
    timeline: &[SegmentRecord],
    core_bits: &[u64],
) -> (ReliabilityReport, Vec<ClassifiedFault>) {
    let mut report = ReliabilityReport {
        mode: plan.mode.name().to_string(),
        k: plan.k,
        faults: plan.faults,
        masked: 0,
        recovered_rollback: 0,
        recovered_replica: 0,
        sdc: 0,
        checkpoints: 0,
        ckpt_overhead_ticks: 0,
        reexec_ticks: 0,
    };
    if plan.mode == ModeKind::Checkpoint && duration > 0 {
        // One checkpoint at tick 0 plus one per full interval boundary
        // inside the run.
        report.checkpoints = 1 + (duration - 1) / plan.ckpt_interval.max(1);
        report.ckpt_overhead_ticks = report.checkpoints * plan.ckpt_overhead_ticks;
    }
    if plan.faults == 0 || duration == 0 || core_bits.is_empty() {
        return (report, Vec::new());
    }

    let mut faults = draw_campaign(duration, core_bits.len(), plan.faults, plan.fault_seed);
    faults.sort_by_key(|f| (f.tick, f.injection));

    let quantum = quantum_ticks.max(1);
    let mut budget_quantum = u64::MAX;
    let mut budget_left = 0u64;
    let classified: Vec<ClassifiedFault> = faults
        .into_iter()
        .map(|fault| {
            let occ = occupancy(timeline, fault.core, fault.tick, core_bits[fault.core]);
            let ace_hit = fault.hit_draw < occ;
            let outcome = if !ace_hit {
                FaultOutcome::Masked
            } else {
                match plan.mode {
                    ModeKind::Off => FaultOutcome::Sdc,
                    ModeKind::Checkpoint => {
                        report.reexec_ticks += fault.tick % plan.ckpt_interval.max(1);
                        FaultOutcome::RecoveredByRollback
                    }
                    ModeKind::Dmr => FaultOutcome::RecoveredByReplica,
                    ModeKind::Backup => {
                        let q = fault.tick / quantum;
                        if q != budget_quantum {
                            budget_quantum = q;
                            budget_left = u64::from(plan.k);
                        }
                        if budget_left > 0 {
                            budget_left -= 1;
                            FaultOutcome::RecoveredByReplica
                        } else {
                            FaultOutcome::Sdc
                        }
                    }
                }
            };
            match outcome {
                FaultOutcome::Masked => report.masked += 1,
                FaultOutcome::RecoveredByRollback => report.recovered_rollback += 1,
                FaultOutcome::RecoveredByReplica => report.recovered_replica += 1,
                FaultOutcome::Sdc => report.sdc += 1,
            }
            ClassifiedFault {
                fault,
                ace_hit,
                outcome,
            }
        })
        .collect();
    (report, classified)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_timeline(duration: u64, cores: usize, abc_per_tick: f64) -> Vec<SegmentRecord> {
        // One segment covering the whole run, identity mapping, every app
        // accumulating `abc_per_tick × duration` ACE bit-time.
        vec![SegmentRecord {
            start: 0,
            ticks: duration,
            mapping: (0..cores).collect(),
            is_sampling: false,
            app_abc: vec![abc_per_tick * duration as f64; cores],
            app_instructions: vec![duration; cores],
        }]
    }

    fn plan(mode: ModeKind, faults: u64) -> ReliabilityPlan {
        ReliabilityPlan {
            mode,
            faults,
            ..ReliabilityPlan::default()
        }
    }

    #[test]
    fn mode_names_round_trip() {
        for m in ModeKind::ALL {
            assert_eq!(ModeKind::parse(m.name()), Some(m));
        }
        assert_eq!(ModeKind::parse("bogus"), None);
    }

    #[test]
    fn off_mode_turns_every_ace_hit_into_sdc() {
        let t = flat_timeline(100_000, 2, 400.0);
        let (r, faults) = classify(
            &plan(ModeKind::Off, 2_000),
            100_000,
            10_000,
            &t,
            &[800, 800],
        );
        // Occupancy is 0.5 everywhere, so roughly half the strikes hit.
        assert_eq!(r.faults, 2_000);
        assert_eq!(r.masked + r.sdc, 2_000);
        assert!(r.sdc > 500, "sdc = {}", r.sdc);
        assert_eq!(r.recovered_rollback + r.recovered_replica, 0);
        assert!(faults
            .windows(2)
            .all(|w| w[0].fault.tick <= w[1].fault.tick));
    }

    #[test]
    fn checkpoint_and_dmr_recover_every_hit() {
        let t = flat_timeline(100_000, 2, 400.0);
        let bits = [800u64, 800];
        let off = classify(&plan(ModeKind::Off, 2_000), 100_000, 10_000, &t, &bits).0;
        let ck = classify(
            &plan(ModeKind::Checkpoint, 2_000),
            100_000,
            10_000,
            &t,
            &bits,
        )
        .0;
        let dmr = classify(&plan(ModeKind::Dmr, 2_000), 100_000, 10_000, &t, &bits).0;
        // Same seed, same draws: the hit set is identical across modes.
        assert_eq!(ck.ace_hits(), off.sdc);
        assert_eq!(dmr.ace_hits(), off.sdc);
        assert_eq!(ck.sdc, 0);
        assert_eq!(dmr.sdc, 0);
        assert_eq!(ck.recovered_rollback, ck.ace_hits());
        assert_eq!(dmr.recovered_replica, dmr.ace_hits());
        assert!(ck.reexec_ticks > 0);
        assert!(ck.checkpoints >= 2);
        assert!(ck.ckpt_overhead_ticks >= ck.checkpoints * 500);
    }

    #[test]
    fn backup_mode_honors_the_k_budget_per_quantum() {
        let t = flat_timeline(100_000, 2, 800.0); // occupancy 1.0: every strike hits
        let bits = [800u64, 800];
        let p = ReliabilityPlan {
            k: 1,
            ..plan(ModeKind::Backup, 300)
        };
        let (r, faults) = classify(&p, 100_000, 10_000, &t, &bits);
        assert_eq!(r.masked, 0);
        // Exactly one recovery per quantum that saw any hit.
        let mut quanta_hit = std::collections::BTreeMap::new();
        for f in &faults {
            *quanta_hit.entry(f.fault.tick / 10_000).or_insert(0u64) += 1;
        }
        let expected_recovered = quanta_hit.len() as u64;
        let expected_sdc: u64 = quanta_hit.values().map(|&n| n - 1).sum();
        assert_eq!(r.recovered_replica, expected_recovered);
        assert_eq!(r.sdc, expected_sdc);
        assert!(r.sdc > 0, "300 faults over 10 quanta must overflow k=1");
        // And within each quantum, the *earliest* hit is the recovered one.
        let mut seen = std::collections::BTreeSet::new();
        for f in &faults {
            let q = f.fault.tick / 10_000;
            if seen.insert(q) {
                assert_eq!(f.outcome, FaultOutcome::RecoveredByReplica);
            } else {
                assert_eq!(f.outcome, FaultOutcome::Sdc);
            }
        }
    }

    #[test]
    fn classification_is_deterministic() {
        let t = flat_timeline(50_000, 4, 300.0);
        let bits = [900u64; 4];
        let a = classify(&plan(ModeKind::Checkpoint, 1_000), 50_000, 5_000, &t, &bits);
        let b = classify(&plan(ModeKind::Checkpoint, 1_000), 50_000, 5_000, &t, &bits);
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        let c = classify(
            &ReliabilityPlan {
                fault_seed: 99,
                ..plan(ModeKind::Checkpoint, 1_000)
            },
            50_000,
            5_000,
            &t,
            &bits,
        );
        assert_ne!(a.0, c.0, "a different seed draws a different campaign");
    }

    #[test]
    fn zero_faults_still_reports_checkpoint_overhead() {
        let t = flat_timeline(100_000, 1, 0.0);
        let (r, faults) = classify(&plan(ModeKind::Checkpoint, 0), 100_000, 10_000, &t, &[800]);
        assert!(faults.is_empty());
        assert_eq!(r.faults, 0);
        assert_eq!(r.checkpoints, 2); // tick 0 + boundary at 50_000
        assert_eq!(r.ckpt_overhead_ticks, 1_000);
    }

    #[test]
    fn occupancy_outside_timeline_is_zero() {
        let t = flat_timeline(10_000, 1, 400.0);
        assert_eq!(occupancy(&t, 0, 20_000, 800), 0.0);
        assert_eq!(occupancy(&[], 0, 5, 800), 0.0);
        assert!(occupancy(&t, 0, 5_000, 800) > 0.0);
    }
}
