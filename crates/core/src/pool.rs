//! Std-only work-stealing job pool for the experiment grid.
//!
//! Every figure in the evaluation is an embarrassingly parallel grid of
//! independent simulations (mix × scheduler × seed). This module shards
//! such a grid across OS threads without pulling in an external runtime
//! (the workspace is offline and vendored), while keeping the output a
//! deterministic function of the inputs:
//!
//! * each job runs with its own [`RunObs`] (buffered event sink, private
//!   recorder and phase timers), so workers never contend on shared
//!   observability state;
//! * at the barrier, per-job observations are merged back into the
//!   caller's [`RunObs`] in grid order — events replay in the order a
//!   serial run would have emitted them, counters add, gauges take the
//!   last (grid-order) value, and per-worker phase timers roll up into
//!   the host profile. `-j8` output is therefore byte-identical to `-j1`;
//! * a panicking job is caught ([`std::panic::catch_unwind`]), logged as
//!   a structured [`Event::JobFailed`] at its grid position, and recorded
//!   for end-of-run reporting via [`take_failures`] — the other workers
//!   keep going.
//!
//! Scheduling is work-stealing over per-worker deques: jobs are dealt
//! round-robin, each worker pops from the front of its own queue and
//! steals from the back of its neighbours' when it runs dry. Because the
//! whole grid is enqueued before the workers start and jobs never spawn
//! jobs, an empty sweep over every queue means the grid is drained.

use relsim_cache::Key;
use relsim_obs::span::{self, Stage};
use relsim_obs::{Event, RunObs, SpanThread};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Process-wide default worker count; 0 means "ask the OS".
static DEFAULT_JOBS: AtomicUsize = AtomicUsize::new(0);

/// Set the default worker count used by [`scatter_map`] /
/// [`scatter_map_into`]. `0` restores the automatic default
/// (available parallelism). Binaries call this once from `--jobs`.
pub fn set_default_jobs(jobs: usize) {
    DEFAULT_JOBS.store(jobs, Ordering::SeqCst);
}

/// The worker count the pool will use: the value set via
/// [`set_default_jobs`], or the machine's available parallelism.
pub fn default_jobs() -> usize {
    match DEFAULT_JOBS.load(Ordering::SeqCst) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// One caught job panic, reported at the end of the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobFailure {
    /// Grid index of the failed job.
    pub index: usize,
    /// `label[index]` of the scatter call that ran it.
    pub label: String,
    /// The panic payload, if it was a string.
    pub message: String,
}

/// Failures accumulated across every scatter call in this process.
static FAILURES: Mutex<Vec<JobFailure>> = Mutex::new(Vec::new());

/// Acquire a pool mutex, recovering from poisoning instead of
/// panicking. Job panics are caught inside [`catch_unwind`] before any
/// of these locks is held, so poison here means a panic at an unrelated
/// point (e.g. an allocation failure); every guarded value is valid at
/// each instruction boundary, and a long-lived host (`relsim-serve`)
/// must keep scattering after one job thread dies.
fn lock_recover<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Drain the failures recorded since the last call. Binaries report
/// these at the end of the run and exit nonzero if any occurred.
pub fn take_failures() -> Vec<JobFailure> {
    std::mem::take(&mut lock_recover(&FAILURES))
}

/// Outcome of one job, in a `Send`-safe deconstructed form (the job's
/// `RunObs` holds a `Box<dyn EventSink>`, which is not `Send`).
struct Done<T> {
    result: Result<T, String>,
    events: Vec<Event>,
    obs: relsim_obs::Recorder,
    timers: relsim_obs::PhaseTimers,
    spans: Vec<relsim_obs::SpanRecord>,
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn run_one<I, T>(
    index: usize,
    item: I,
    buffer: bool,
    f: &(impl Fn(usize, I, &mut RunObs) -> T + Sync),
) -> Done<T> {
    let mut job_obs = if buffer {
        RunObs::buffered()
    } else {
        RunObs::disabled()
    };
    // A previous job on this worker may have panicked mid-span; start
    // from clean thread-local profiler state.
    span::reset_thread();
    let result = catch_unwind(AssertUnwindSafe(|| {
        span::scope(Stage::PoolJob, || f(index, item, &mut job_obs))
    }))
    .map_err(|e| panic_message(e.as_ref()));
    let events = job_obs.sink.take_events().unwrap_or_default();
    let mut spans = Vec::new();
    if result.is_ok() {
        span::drain_into(&mut job_obs.recorder, &mut spans);
    } else {
        // A panic unwound past open spans; their state is unusable.
        span::reset_thread();
    }
    Done {
        result,
        events,
        obs: job_obs.recorder,
        timers: job_obs.timers,
        spans,
    }
}

/// Pop the next job for worker `w`: own queue first (front), then steal
/// from the back of the other workers' queues.
fn next_job<I>(queues: &[Mutex<VecDeque<(usize, I)>>], w: usize) -> Option<(usize, I)> {
    if let Some(job) = lock_recover(&queues[w]).pop_front() {
        return Some(job);
    }
    for k in 1..queues.len() {
        let victim = (w + k) % queues.len();
        if let Some(job) = lock_recover(&queues[victim]).pop_back() {
            return Some(job);
        }
    }
    None
}

/// Run `f` over `items` on `jobs` workers, observing each job through its
/// own buffered [`RunObs`] and merging everything into `obs` in item
/// order. Returns one slot per item: `Some(output)` on success, `None`
/// for a job that panicked (also reported via [`Event::JobFailed`], a
/// `warn!` line, and [`take_failures`]).
pub fn scatter_map_into_with_jobs<I, T, F>(
    label: &str,
    items: Vec<I>,
    obs: &mut RunObs,
    jobs: usize,
    f: F,
) -> Vec<Option<T>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I, &mut RunObs) -> T + Sync,
{
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let jobs = jobs.clamp(1, n);
    // Flush the caller's own pending spans before any job runs: the
    // jobs==1 path reuses this thread's span state (resetting it per
    // job), so main-thread spans recorded since the last flush would
    // otherwise be destroyed at -j1 but survive at -jN — absorbing
    // them here, at the same program point for every worker count,
    // keeps `--trace-spans` output identical at any `-jN`.
    obs.absorb_spans("main");
    // Buffering events only pays off if someone will read them.
    let buffer = !obs.sink.is_null();

    let queues: Vec<Mutex<VecDeque<(usize, I)>>> =
        (0..jobs).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, item) in items.into_iter().enumerate() {
        lock_recover(&queues[i % jobs]).push_back((i, item));
    }
    let slots: Vec<Mutex<Option<Done<T>>>> = (0..n).map(|_| Mutex::new(None)).collect();

    if jobs == 1 {
        // Inline path: same per-job observation and panic isolation,
        // no threads.
        while let Some((i, item)) = next_job(&queues, 0) {
            *lock_recover(&slots[i]) = Some(run_one(i, item, buffer, &f));
        }
    } else {
        std::thread::scope(|s| {
            for w in 0..jobs {
                let queues = &queues;
                let slots = &slots;
                let f = &f;
                s.spawn(move || {
                    while let Some((i, item)) = next_job(queues, w) {
                        *lock_recover(&slots[i]) = Some(run_one(i, item, buffer, f));
                    }
                });
            }
        });
    }

    // Barrier: merge per-job observations back in grid order.
    let mut out = Vec::with_capacity(n);
    for (i, slot) in slots.into_iter().enumerate() {
        let done = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("every job runs exactly once");
        out.push(merge_done(label, i, done, obs));
    }
    out
}

/// Merge one finished job into the caller's observer (events in order,
/// counters added, timers absorbed) and convert its outcome: `Some` on
/// success, `None` for a panic (warned, evented, registered).
fn merge_done<T>(label: &str, i: usize, done: Done<T>, obs: &mut RunObs) -> Option<T> {
    for e in &done.events {
        obs.sink.emit(e);
    }
    obs.recorder.merge(&done.obs);
    obs.timers.absorb(&done.timers);
    if !done.spans.is_empty() {
        // Grid order, not worker order: the trace is a deterministic
        // function of the inputs at any `-jN`.
        obs.spans.push(SpanThread {
            name: format!("job{i}"),
            records: done.spans,
        });
    }
    match done.result {
        Ok(t) => Some(t),
        Err(message) => {
            let job_label = format!("{label}[{i}]");
            relsim_obs::warn!("job {job_label} panicked: {message}");
            obs.emit(Event::JobFailed {
                tick: 0,
                job: i as u64,
                label: job_label.clone(),
                error: message.clone(),
            });
            lock_recover(&FAILURES).push(JobFailure {
                index: i,
                label: job_label,
                message,
            });
            None
        }
    }
}

/// [`scatter_map_into_with_jobs`] at the process default worker count.
pub fn scatter_map_into<I, T, F>(
    label: &str,
    items: Vec<I>,
    obs: &mut RunObs,
    f: F,
) -> Vec<Option<T>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I, &mut RunObs) -> T + Sync,
{
    scatter_map_into_with_jobs(label, items, obs, default_jobs(), f)
}

/// Scatter without observability: jobs still run isolated and panics are
/// still caught/reported, but events, counters and timers are discarded.
pub fn scatter_map<I, T, F>(label: &str, items: Vec<I>, f: F) -> Vec<Option<T>>
where
    I: Send,
    T: Send,
    F: Fn(usize, I) -> T + Sync,
{
    let mut obs = RunObs::disabled();
    scatter_map_into(label, items, &mut obs, |i, item, _| f(i, item))
}

/// [`scatter_map_into_with_jobs`] routed through the content-addressed
/// result cache. Each item carries an optional [`Key`]; keyed items are
/// served via [`crate::cache::run_keyed`] (hit → replay the stored
/// bundle, miss → compute under the single-flight lease and store),
/// unkeyed items always compute. With the process-wide cache disabled
/// this is exactly the plain scatter.
///
/// Determinism across worker counts is preserved by construction:
/// duplicate keys *within one scatter* never race for flight leadership.
/// Only the first occurrence of each key enters the parallel phase; the
/// duplicates are filled in sequentially after the barrier, in grid
/// order, from the (by then warm) cache.
pub fn scatter_map_cached_into_with_jobs<I, T, F>(
    label: &str,
    items: Vec<(Option<Key>, I)>,
    obs: &mut RunObs,
    jobs: usize,
    f: F,
) -> Vec<Option<T>>
where
    I: Send,
    T: Send + Serialize + Deserialize,
    F: Fn(usize, I, &mut RunObs) -> T + Sync,
{
    let Some(store) = relsim_cache::global() else {
        let plain: Vec<I> = items.into_iter().map(|(_, item)| item).collect();
        return scatter_map_into_with_jobs(label, plain, obs, jobs, f);
    };

    // Partition: first occurrence of each key (and every unkeyed item)
    // runs in the parallel scatter; repeats wait for the barrier.
    let n = items.len();
    let mut seen: std::collections::HashSet<u128> = std::collections::HashSet::new();
    let mut scatter_items: Vec<(usize, Option<Key>, I)> = Vec::new();
    let mut dups: Vec<(usize, Key, I)> = Vec::new();
    for (i, (key, item)) in items.into_iter().enumerate() {
        match key {
            Some(k) if !seen.insert(k.0) => dups.push((i, k, item)),
            key => scatter_items.push((i, key, item)),
        }
    }

    let runner =
        |_: usize, (orig, key, item): (usize, Option<Key>, I), job_obs: &mut RunObs| match key {
            Some(k) => crate::cache::run_keyed(&store, k, job_obs, |inner| f(orig, item, inner)),
            None => f(orig, item, job_obs),
        };

    let origs: Vec<usize> = scatter_items.iter().map(|(orig, _, _)| *orig).collect();
    let partial = scatter_map_into_with_jobs(label, scatter_items, obs, jobs, runner);

    let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
    for (orig, result) in origs.into_iter().zip(partial) {
        out[orig] = result;
    }
    // Fill the duplicates in grid order: each is a memory-tier hit on
    // its primary's entry (or an inline recompute if the primary failed
    // or its bundle was unstorable) — sequential, hence deterministic.
    let buffer = !obs.sink.is_null();
    for (orig, k, item) in dups {
        let done = run_one(orig, (orig, Some(k), item), buffer, &runner);
        out[orig] = merge_done(label, orig, done, obs);
    }
    out
}

/// [`scatter_map_cached_into_with_jobs`] at the process default worker
/// count.
pub fn scatter_map_cached_into<I, T, F>(
    label: &str,
    items: Vec<(Option<Key>, I)>,
    obs: &mut RunObs,
    f: F,
) -> Vec<Option<T>>
where
    I: Send,
    T: Send + Serialize + Deserialize,
    F: Fn(usize, I, &mut RunObs) -> T + Sync,
{
    scatter_map_cached_into_with_jobs(label, items, obs, default_jobs(), f)
}

/// Cached scatter without caller-side observability (cache markers and
/// replayed events are discarded; panics still caught/reported).
pub fn scatter_map_cached<I, T, F>(
    label: &str,
    items: Vec<(Option<Key>, I)>,
    f: F,
) -> Vec<Option<T>>
where
    I: Send,
    T: Send + Serialize + Deserialize,
    F: Fn(usize, I) -> T + Sync,
{
    let mut obs = RunObs::disabled();
    scatter_map_cached_into(label, items, &mut obs, |i, item, _| f(i, item))
}

#[cfg(test)]
mod tests {
    use super::*;
    use relsim_obs::{EventSink, JsonlSink};

    fn square_grid(jobs: usize) -> Vec<Option<u64>> {
        let items: Vec<u64> = (0..37).collect();
        let mut obs = RunObs::disabled();
        scatter_map_into_with_jobs("square", items, &mut obs, jobs, |_, x, _| x * x)
    }

    #[test]
    fn results_come_back_in_item_order() {
        for jobs in [1, 2, 4, 8] {
            let out = square_grid(jobs);
            assert_eq!(out.len(), 37, "-j{jobs}");
            for (i, v) in out.iter().enumerate() {
                assert_eq!(*v, Some((i as u64).pow(2)), "-j{jobs} slot {i}");
            }
        }
    }

    #[test]
    fn imbalanced_jobs_are_stolen_and_still_ordered() {
        // Front-load the grid: early items do far more work than late
        // ones, so with round-robin dealing the other workers must steal.
        let items: Vec<u64> = (0..24).collect();
        let out = scatter_map_into_with_jobs(
            "imbalanced",
            items,
            &mut RunObs::disabled(),
            4,
            |_, x, _| {
                let spins = if x < 4 { 200_000 } else { 10 };
                (0..spins).fold(x, |a, _| a.wrapping_mul(31).wrapping_add(7))
            },
        );
        let serial: Vec<u64> = (0..24u64)
            .map(|x| {
                let spins = if x < 4 { 200_000 } else { 10 };
                (0..spins).fold(x, |a, _| a.wrapping_mul(31).wrapping_add(7))
            })
            .collect();
        assert_eq!(
            out.into_iter().map(Option::unwrap).collect::<Vec<_>>(),
            serial
        );
    }

    #[test]
    fn panicking_job_is_isolated_and_reported() {
        let _ = take_failures(); // drain other tests' leftovers
        let items: Vec<u32> = (0..8).collect();
        let mut obs = RunObs::buffered();
        let out = scatter_map_into_with_jobs("faulty", items, &mut obs, 4, |_, x, _| {
            if x == 3 {
                panic!("job {x} exploded");
            }
            x + 1
        });
        assert_eq!(out.len(), 8);
        for (i, v) in out.iter().enumerate() {
            if i == 3 {
                assert_eq!(*v, None);
            } else {
                assert_eq!(*v, Some(i as u32 + 1));
            }
        }
        // The failure is visible as a structured event...
        let events = obs.sink.take_events().unwrap();
        let failed: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::JobFailed { .. }))
            .collect();
        assert_eq!(failed.len(), 1);
        if let Event::JobFailed {
            job, label, error, ..
        } = failed[0]
        {
            assert_eq!(*job, 3);
            assert_eq!(label, "faulty[3]");
            assert!(error.contains("job 3 exploded"), "{error}");
        }
        // ...and in the end-of-run failure report.
        let failures: Vec<JobFailure> = take_failures()
            .into_iter()
            .filter(|f| f.label.starts_with("faulty["))
            .collect();
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].index, 3);
    }

    #[test]
    fn merged_observations_are_independent_of_job_count() {
        let run = |jobs: usize| {
            let mut obs = RunObs::with_sink(Box::new(JsonlSink::new(Vec::new())));
            let items: Vec<u64> = (0..12).collect();
            let out = scatter_map_into_with_jobs("det", items, &mut obs, jobs, |i, x, job_obs| {
                job_obs.emit(Event::RunStart {
                    tick: x,
                    scheduler: format!("job-{i}"),
                    cores: 2,
                    apps: 2,
                    quantum_ticks: 1,
                    duration_ticks: x,
                });
                let c = job_obs.recorder.counter("pool.test.work");
                job_obs.recorder.add(c, x);
                let h = job_obs.recorder.histogram("pool.test.sizes");
                job_obs.recorder.observe(h, x);
                x * 2
            });
            let snapshot = obs.recorder.snapshot();
            (out, snapshot)
        };
        let (out1, snap1) = run(1);
        let (out4, snap4) = run(4);
        let (out8, snap8) = run(8);
        assert_eq!(out1, out4);
        assert_eq!(out1, out8);
        assert_eq!(snap1, snap4);
        assert_eq!(snap1, snap8);
    }

    #[test]
    fn cached_scatter_dedups_and_returns_in_grid_order() {
        let _guard = crate::cache::test_guard();
        relsim_cache::configure(Some(relsim_cache::CacheConfig::default()));
        let computed = std::sync::atomic::AtomicUsize::new(0);
        // 12 items over 4 distinct keys, interleaved.
        let items: Vec<(Option<Key>, u64)> = (0..12u64)
            .map(|x| (Some(relsim_cache::Key::of(&("dedup", x % 4))), x % 4))
            .collect();
        let out = scatter_map_cached_into_with_jobs(
            "cdedup",
            items,
            &mut RunObs::disabled(),
            4,
            |_, x, _| {
                computed.fetch_add(1, Ordering::SeqCst);
                x * 10
            },
        );
        let expect: Vec<Option<u64>> = (0..12u64).map(|x| Some((x % 4) * 10)).collect();
        assert_eq!(out, expect);
        assert_eq!(
            computed.load(Ordering::SeqCst),
            4,
            "one computation per distinct key"
        );
        let stats = relsim_cache::global_stats().unwrap();
        assert_eq!((stats.misses, stats.hits), (4, 8));
        relsim_cache::configure(None);
    }

    #[test]
    fn cached_scatter_replay_bytes_match_across_job_counts() {
        let _guard = crate::cache::test_guard();
        let replay = |jobs: usize| -> Vec<u8> {
            // Fresh (cold) store per run so both job counts start equal.
            relsim_cache::configure(Some(relsim_cache::CacheConfig::default()));
            let mut obs = RunObs::buffered();
            let items: Vec<(Option<Key>, u64)> = (0..10u64)
                .map(|x| (Some(relsim_cache::Key::of(&("cbytes", x % 3))), x % 3))
                .collect();
            scatter_map_cached_into_with_jobs("cbytes", items, &mut obs, jobs, |_, x, job_obs| {
                job_obs.emit(Event::Migration {
                    tick: x,
                    app: x as usize,
                    from_core: Some(0),
                    to_core: 1,
                });
                x
            });
            let mut out = JsonlSink::new(Vec::new());
            for e in obs.sink.take_events().unwrap() {
                out.emit(&e);
            }
            out.into_inner()
        };
        let a = replay(1);
        let b = replay(4);
        let c = replay(8);
        assert!(!a.is_empty());
        assert_eq!(a, b);
        assert_eq!(a, c);
        relsim_cache::configure(None);
    }

    #[test]
    fn cached_scatter_without_store_is_plain_scatter() {
        let _guard = crate::cache::test_guard();
        relsim_cache::configure(None);
        let items: Vec<(Option<Key>, u64)> = (0..8u64)
            .map(|x| (Some(relsim_cache::Key::of(&x)), x))
            .collect();
        let out = scatter_map_cached_into_with_jobs(
            "coff",
            items,
            &mut RunObs::disabled(),
            2,
            |_, x, _| x + 1,
        );
        assert_eq!(out, (0..8u64).map(|x| Some(x + 1)).collect::<Vec<_>>());
    }

    #[test]
    fn replayed_event_bytes_match_across_job_counts() {
        // Buffer per-job events, then serialize the merged stream to
        // JSONL bytes: the bytes must not depend on the worker count.
        let replay = |jobs: usize| -> Vec<u8> {
            let mut obs = RunObs::buffered();
            let items: Vec<u64> = (0..10).collect();
            scatter_map_into_with_jobs("bytes", items, &mut obs, jobs, |i, x, job_obs| {
                job_obs.emit(Event::Migration {
                    tick: x,
                    app: i,
                    from_core: Some(0),
                    to_core: 1,
                });
            });
            let mut out = JsonlSink::new(Vec::new());
            for e in obs.sink.take_events().unwrap() {
                out.emit(&e);
            }
            out.into_inner()
        };
        let a = replay(1);
        let b = replay(4);
        assert!(!a.is_empty());
        assert_eq!(a, b);
    }
}
