//! Content-addressed caching of simulation results.
//!
//! A cache entry is a *bundle*: the result value, the buffered event
//! stream the computation emitted, and a snapshot of its metrics. On a
//! hit the bundle is replayed into the caller's [`RunObs`] — events in
//! original order after a [`Event::CacheHit`] marker, counters and
//! histograms merged exactly — so a warm run is observationally
//! equivalent to a cold one, not just equal in its return value.
//!
//! Keys are derived with [`key`]: the MurmurHash3 x64/128 digest of the
//! canonical JSON of `(site, MODEL_VERSION, input)`. The *site* names
//! the call point and the shape of the stored value (bump its suffix
//! when the value type changes); [`MODEL_VERSION`] invalidates the
//! whole universe of entries whenever the simulation model changes; the
//! *input* must contain every value that determines the result.
//!
//! Corruption, framing drift, and undecodable payloads are all healed
//! locally: the entry is dropped, the result recomputed and re-stored.
//! A bundle that does not survive a decode/re-encode round trip (JSON
//! has no NaN, so non-finite floats degrade to `null`) is *never*
//! stored — such results always recompute, keeping warm output
//! byte-identical to cold output even for degenerate configurations.

use relsim_cache::{Key, Lookup, Store};
use relsim_obs::span::{self, Stage};
use relsim_obs::{warn, Event, MetricsSnapshot, RunObs};
use serde::{Deserialize, Serialize};

/// Version stamp of the simulation model itself. Any change that alters
/// simulated results — timing model, scheduler behaviour, reliability
/// model, serialized result schema — must bump this. It is hashed into
/// every cache key (orphaning all previous entries) and recorded in run
/// manifests and result files.
pub const MODEL_VERSION: u32 = 3;

/// Derive the content key for a cached result: the digest of the
/// canonical serialization of `(site, MODEL_VERSION, input)`.
pub fn key<T: Serialize + ?Sized>(site: &str, input: &T) -> Key {
    Key::of(&(site, MODEL_VERSION, input))
}

/// [`key`] when the process-wide cache is enabled, else `None` (skipping
/// serialization + hashing entirely). The `Option<Key>` plugs directly
/// into [`crate::pool::scatter_map_cached_into`] item tuples.
pub fn key_if_enabled<T: Serialize + ?Sized>(site: &str, input: &T) -> Option<Key> {
    if relsim_cache::enabled() {
        Some(key(site, input))
    } else {
        None
    }
}

/// Serialize a result bundle, verifying it survives a decode/re-encode
/// round trip. Returns `None` — "do not store this" — when it does not
/// (non-finite floats serialize as `null` and cannot come back).
pub fn encode_bundle<T>(value: &T, events: &[Event], metrics: &MetricsSnapshot) -> Option<Vec<u8>>
where
    T: Serialize + Deserialize,
{
    let bytes = serde_json::to_vec(&(value, events, metrics)).ok()?;
    let decoded: (T, Vec<Event>, MetricsSnapshot) = serde_json::from_slice(&bytes).ok()?;
    let reencoded = serde_json::to_vec(&decoded).ok()?;
    if reencoded == bytes {
        Some(bytes)
    } else {
        None
    }
}

/// Decode a stored bundle. `None` means the payload is stale or corrupt
/// at this layer (e.g. the value shape changed without a site bump);
/// callers treat it as a miss and heal the entry.
pub fn decode_bundle<T: Deserialize>(bytes: &[u8]) -> Option<(T, Vec<Event>, MetricsSnapshot)> {
    serde_json::from_slice(bytes).ok()
}

/// Replay a hit into `obs`: marker event, then the stored stream, then
/// the stored metrics.
fn replay_hit(
    obs: &mut RunObs,
    keyhex: String,
    tier: &'static str,
    bytes: u64,
    events: &[Event],
    metrics: &MetricsSnapshot,
) {
    obs.emit(Event::CacheHit {
        tick: 0,
        key: keyhex,
        tier: tier.to_string(),
        bytes,
    });
    let hits = obs.recorder.counter("cache.hits");
    obs.recorder.inc(hits);
    let read = obs.recorder.counter("cache.bytes_read");
    obs.recorder.add(read, bytes);
    for e in events {
        obs.sink.emit(e);
    }
    obs.recorder.merge_snapshot(metrics);
}

/// Serve one keyed computation through `store`: hit → replay the stored
/// bundle; miss → compute under the single-flight lease, store the
/// bundle (if it round-trips), and merge the fresh observations into
/// `obs`. Exactly the engine behind both the cached scatter
/// ([`crate::pool::scatter_map_cached_into`]) and [`cached`].
pub fn run_keyed<T, F>(store: &Store, key: Key, obs: &mut RunObs, f: F) -> T
where
    T: Serialize + Deserialize,
    F: FnOnce(&mut RunObs) -> T,
{
    let mut healed = false;
    // Resolve to either a compute lease, or `None` after giving up on a
    // repeatedly undecodable entry (compute without storing).
    let lease = loop {
        match span::scope(Stage::CacheLookup, || store.lookup_or_lead(key)) {
            Lookup::Hit(payload, tier) => {
                let decoded = span::scope(Stage::CacheLookup, || decode_bundle::<T>(&payload));
                if let Some((value, events, metrics)) = decoded {
                    replay_hit(
                        obs,
                        key.hex(),
                        tier.name(),
                        payload.len() as u64,
                        &events,
                        &metrics,
                    );
                    return value;
                }
                warn!("cache: entry {key} does not decode at this site; recomputing");
                store.invalidate(key);
                if healed {
                    break None;
                }
                healed = true;
            }
            Lookup::Lead(lease) => break Some(lease),
        }
    };

    // Compute into a private buffered observer so the bundle captures
    // the job's events and metrics, then merge them out in order.
    let mut inner = RunObs::buffered();
    let value = f(&mut inner);
    let events = inner.sink.take_events().unwrap_or_default();
    let metrics = inner.recorder.snapshot();

    obs.emit(Event::CacheMiss {
        tick: 0,
        key: key.hex(),
    });
    let misses = obs.recorder.counter("cache.misses");
    obs.recorder.inc(misses);
    for e in &events {
        obs.sink.emit(e);
    }
    obs.recorder.merge(&inner.recorder);
    obs.timers.absorb(&inner.timers);

    if lease.is_some() {
        let stored = span::scope(Stage::CacheStore, || {
            encode_bundle(&value, &events, &metrics).map(|bytes| {
                let n = bytes.len() as u64;
                store.put(key, bytes);
                n
            })
        });
        match stored {
            Some(n) => {
                obs.emit(Event::CacheStore {
                    tick: 0,
                    key: key.hex(),
                    bytes: n,
                });
                let stores = obs.recorder.counter("cache.stores");
                obs.recorder.inc(stores);
                let written = obs.recorder.counter("cache.bytes_written");
                obs.recorder.add(written, n);
            }
            None => {
                warn!(
                    "cache: result for {key} does not round-trip (non-finite values?); not stored"
                );
            }
        }
    }
    // Lease (if held) drops here, waking any single-flight waiters.
    value
}

/// Cache one whole computation under the process-wide store: compute
/// `f` through the cache keyed by `(site, MODEL_VERSION, input)`, or run
/// it directly when caching is disabled. For single-result call sites
/// (e.g. whole-figure drivers); grids go through
/// [`crate::pool::scatter_map_cached_into`].
pub fn cached<T, F, In>(site: &str, input: &In, obs: &mut RunObs, f: F) -> T
where
    T: Serialize + Deserialize,
    In: Serialize + ?Sized,
    F: FnOnce(&mut RunObs) -> T,
{
    match relsim_cache::global() {
        Some(store) => run_keyed(&store, key(site, input), obs, f),
        None => f(obs),
    }
}

/// Serialize tests that reconfigure the process-wide store (it is one
/// per process, and `cargo test` threads share it).
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use relsim_cache::CacheConfig;

    #[test]
    fn bundle_round_trips() {
        let events = vec![Event::RunEnd {
            tick: 10,
            quanta: 1,
            migrations: 0,
            instructions: 99,
        }];
        let mut rec = relsim_obs::Recorder::new();
        let c = rec.counter("test.count");
        rec.add(c, 5);
        let snap = rec.snapshot();
        let value = (1.5f64, "milc".to_string());
        let bytes = encode_bundle(&value, &events, &snap).expect("finite bundle stores");
        let (v2, e2, m2) = decode_bundle::<(f64, String)>(&bytes).expect("decodes");
        assert_eq!(v2, value);
        assert_eq!(e2, events);
        assert_eq!(m2, snap);
    }

    #[test]
    fn non_finite_bundles_are_refused() {
        let snap = relsim_obs::Recorder::new().snapshot();
        assert!(encode_bundle(&f64::NAN, &[], &snap).is_none());
        assert!(encode_bundle(&f64::INFINITY, &[], &snap).is_none());
        assert!(encode_bundle(&1.25f64, &[], &snap).is_some());
    }

    #[test]
    fn key_separates_sites_versions_and_inputs() {
        let a = key("site-a/v1", &42u64);
        assert_eq!(a, key("site-a/v1", &42u64));
        assert_ne!(a, key("site-b/v1", &42u64));
        assert_ne!(a, key("site-a/v2", &42u64));
        assert_ne!(a, key("site-a/v1", &43u64));
    }

    #[test]
    fn run_keyed_hit_replays_events_and_metrics() {
        let store = Store::new(CacheConfig::default());
        let k = Key::of(&"run-keyed-replay");
        let body = |obs: &mut RunObs| -> u64 {
            obs.emit(Event::RunEnd {
                tick: 7,
                quanta: 2,
                migrations: 1,
                instructions: 100,
            });
            let c = obs.recorder.counter("work.done");
            obs.recorder.add(c, 3);
            41
        };

        let mut cold = RunObs::buffered();
        assert_eq!(run_keyed(&store, k, &mut cold, body), 41);
        let mut warm = RunObs::buffered();
        assert_eq!(run_keyed(&store, k, &mut warm, body), 41);

        let cold_events = cold.sink.take_events().unwrap();
        let warm_events = warm.sink.take_events().unwrap();
        // Cold: miss marker, job events, store marker. Warm: hit marker,
        // then the identical job events.
        assert!(matches!(cold_events[0], Event::CacheMiss { .. }));
        assert!(matches!(warm_events[0], Event::CacheHit { .. }));
        let job_of = |evs: &[Event]| -> Vec<Event> {
            evs.iter()
                .filter(|e| {
                    !matches!(
                        e,
                        Event::CacheHit { .. } | Event::CacheMiss { .. } | Event::CacheStore { .. }
                    )
                })
                .cloned()
                .collect()
        };
        assert_eq!(job_of(&cold_events), job_of(&warm_events));
        assert_eq!(
            warm.recorder.snapshot().counter("work.done"),
            Some(3),
            "hit merges the stored metrics"
        );
        let s = store.stats();
        assert_eq!((s.misses, s.hits, s.stores), (1, 1, 1));
    }

    #[test]
    fn undecodable_entry_is_healed_and_recomputed() {
        let store = Store::new(CacheConfig::default());
        let k = Key::of(&"healing");
        // Plant a payload that is valid at the store layer but garbage
        // as a bundle.
        match store.lookup_or_lead(k) {
            Lookup::Lead(lease) => {
                store.put(k, b"not json at all".to_vec());
                drop(lease);
            }
            Lookup::Hit(..) => panic!("fresh store cannot hit"),
        }
        let mut obs = RunObs::disabled();
        let got: u64 = run_keyed(&store, k, &mut obs, |_| 7);
        assert_eq!(got, 7);
        assert_eq!(store.stats().invalidations, 1);
        // The recompute re-stored a good bundle: next call hits.
        let mut obs2 = RunObs::disabled();
        let again: u64 = run_keyed(&store, k, &mut obs2, |_| panic!("must hit"));
        assert_eq!(again, 7);
    }

    #[test]
    fn cached_is_transparent_when_disabled() {
        let _guard = test_guard();
        relsim_cache::configure(None);
        let mut obs = RunObs::buffered();
        let v: u64 = cached("off/v1", &1u8, &mut obs, |o| {
            o.emit(Event::RunEnd {
                tick: 1,
                quanta: 1,
                migrations: 0,
                instructions: 1,
            });
            9
        });
        assert_eq!(v, 9);
        let events = obs.sink.take_events().unwrap();
        assert_eq!(events.len(), 1, "no cache markers when disabled");
        assert!(matches!(events[0], Event::RunEnd { .. }));
    }
}
