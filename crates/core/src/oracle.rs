//! The offline oracle scheduler study (Section 2.4 of the paper).
//!
//! Using isolated per-core-type measurements and assuming no shared-
//! resource interference, every static assignment of applications to core
//! types is enumerated; the assignment with the lowest predicted SSER and
//! the one with the highest predicted STP are reported, quantifying the
//! *potential* of reliability-aware scheduling (Figure 3).

use crate::isolated::ReferenceTable;
use relsim_cpu::CoreKind;
use serde::{Deserialize, Serialize};

/// Predicted metrics of one static schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleSchedule {
    /// Which applications (by index into the workload) run on big cores.
    pub on_big: Vec<usize>,
    /// Predicted SSER (in IFR-normalized units; comparable within a
    /// workload).
    pub sser: f64,
    /// Predicted STP.
    pub stp: f64,
}

/// Outcome of the oracle study for one workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleOutcome {
    /// Benchmarks in the workload.
    pub benchmarks: Vec<String>,
    /// The SSER-optimal schedule.
    pub best_sser: OracleSchedule,
    /// The STP-optimal schedule.
    pub best_stp: OracleSchedule,
}

impl OracleOutcome {
    /// SER gain of the reliability-optimal schedule relative to the
    /// performance-optimal one (positive = reduction), as in Figure 3.
    pub fn ser_gain(&self) -> f64 {
        1.0 - self.best_sser.sser / self.best_stp.sser
    }

    /// STP loss of the reliability-optimal schedule relative to the
    /// performance-optimal one (positive = loss).
    pub fn stp_loss(&self) -> f64 {
        1.0 - self.best_sser.stp / self.best_stp.stp
    }
}

/// Predicted per-app wSER rate on a core type, from isolated data: the
/// application's ABC rate scaled by its slowdown versus the isolated big
/// core.
fn wser_rate(refs: &ReferenceTable, name: &str, kind: CoreKind) -> f64 {
    let on = refs.get(name, kind).expect("benchmark measured");
    let big = refs.get(name, CoreKind::Big).expect("benchmark measured");
    if on.ips <= 0.0 {
        return 0.0;
    }
    on.abc_rate * (big.ips / on.ips)
}

/// Predicted per-app STP contribution on a core type.
fn progress(refs: &ReferenceTable, name: &str, kind: CoreKind) -> f64 {
    let on = refs.get(name, kind).expect("benchmark measured");
    let big = refs.get(name, CoreKind::Big).expect("benchmark measured");
    if big.ips <= 0.0 {
        return 0.0;
    }
    on.ips / big.ips
}

/// Enumerate all assignments of `benchmarks` to `n_big` big cores (the
/// rest go to small cores) and return the SSER- and STP-optimal
/// schedules.
///
/// # Panics
///
/// Panics if `n_big` exceeds the workload size or a benchmark is missing
/// from the reference table.
pub fn oracle_schedules(
    refs: &ReferenceTable,
    benchmarks: &[String],
    n_big: usize,
) -> OracleOutcome {
    let n = benchmarks.len();
    assert!(n_big <= n, "more big cores than applications");
    let mut best_sser: Option<OracleSchedule> = None;
    let mut best_stp: Option<OracleSchedule> = None;

    // Enumerate subsets of size n_big via bitmask.
    for mask in 0u32..(1 << n) {
        if mask.count_ones() as usize != n_big {
            continue;
        }
        let mut sser = 0.0;
        let mut stp = 0.0;
        let mut on_big = Vec::with_capacity(n_big);
        for (i, name) in benchmarks.iter().enumerate() {
            let kind = if mask & (1 << i) != 0 {
                on_big.push(i);
                CoreKind::Big
            } else {
                CoreKind::Small
            };
            sser += wser_rate(refs, name, kind);
            stp += progress(refs, name, kind);
        }
        let sched = OracleSchedule { on_big, sser, stp };
        if best_sser.as_ref().is_none_or(|b| sched.sser < b.sser) {
            best_sser = Some(sched.clone());
        }
        if best_stp.as_ref().is_none_or(|b| sched.stp > b.stp) {
            best_stp = Some(sched);
        }
    }

    OracleOutcome {
        benchmarks: benchmarks.to_vec(),
        best_sser: best_sser.expect("at least one schedule"),
        best_stp: best_stp.expect("at least one schedule"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isolated::ReferenceTable;
    use relsim_cpu::CoreConfig;
    use relsim_trace::spec_profile;

    fn small_table() -> ReferenceTable {
        let profiles: Vec<_> = ["milc", "gobmk", "hmmer", "mcf"]
            .iter()
            .map(|n| spec_profile(n).unwrap())
            .collect();
        ReferenceTable::build(&profiles, &CoreConfig::big(), &CoreConfig::small(), 150_000)
    }

    #[test]
    fn oracle_enumerates_and_orders_schedules() {
        let refs = small_table();
        let names: Vec<String> = ["milc", "gobmk", "hmmer", "mcf"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let o = oracle_schedules(&refs, &names, 2);
        assert_eq!(o.best_sser.on_big.len(), 2);
        assert_eq!(o.best_stp.on_big.len(), 2);
        // The SSER-best schedule cannot be worse than the STP-best one on
        // SSER, by construction.
        assert!(o.best_sser.sser <= o.best_stp.sser + 1e-12);
        assert!(o.best_stp.stp >= o.best_sser.stp - 1e-12);
        assert!(o.ser_gain() >= -1e-12, "gain {}", o.ser_gain());
    }

    #[test]
    fn oracle_puts_high_abc_apps_on_small_cores() {
        let refs = small_table();
        // milc has a much higher big-core ABC rate than gobmk; with one
        // big core, the SSER oracle should give the big core to gobmk.
        let names: Vec<String> = vec!["milc".into(), "gobmk".into()];
        let o = oracle_schedules(&refs, &names, 1);
        assert_eq!(o.best_sser.on_big, vec![1], "gobmk on big: {o:?}");
    }

    #[test]
    #[should_panic(expected = "more big cores")]
    fn too_many_big_cores_rejected() {
        let refs = small_table();
        let names: Vec<String> = vec!["milc".into()];
        let _ = oracle_schedules(&refs, &names, 2);
    }
}
