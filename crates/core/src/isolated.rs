//! Isolated single-application reference runs.
//!
//! The paper's metrics need per-benchmark reference data from isolated
//! big-core execution (reference IPS for SSER's `T_ref` and STP's
//! normalization), and the motivation figures (1, 2, 5) are isolated-run
//! characterizations. This module runs one application alone on one core
//! with perfect ACE counters and reports everything those uses need.

use relsim_ace::{avf, AbcStack, AceCounter, CounterKind};
use relsim_cpu::{Core, CoreConfig, CoreKind, CpiStack};
use relsim_mem::{PrivateCacheConfig, SharedMem, SharedMemConfig};
use relsim_trace::{BenchmarkProfile, TraceGenerator};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Outcome of one isolated run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IsolatedResult {
    /// Benchmark name.
    pub name: String,
    /// Core type it ran on.
    pub kind: CoreKind,
    /// Run length in ticks.
    pub ticks: u64,
    /// Instructions committed.
    pub instructions: u64,
    /// Total ACE bit-time (perfect counters).
    pub abc: f64,
    /// Per-structure ABC breakdown.
    pub stack: AbcStack,
    /// Architectural vulnerability factor over the run.
    pub avf: f64,
    /// Instructions per tick.
    pub ips: f64,
    /// ACE bit-time per tick.
    pub abc_rate: f64,
    /// CPI stack.
    pub cpi: CpiStack,
}

/// Run `profile` alone on a core of the given configuration for
/// `duration` ticks (with pre-warmed caches) and measure it.
pub fn run_isolated(
    profile: &BenchmarkProfile,
    core_cfg: &CoreConfig,
    duration: u64,
    seed: u64,
) -> IsolatedResult {
    run_isolated_with(
        profile,
        core_cfg,
        PrivateCacheConfig::default(),
        duration,
        seed,
    )
}

/// Like [`run_isolated`], with an explicit private-cache configuration
/// (e.g. to enable the L2 prefetcher in ablation studies).
pub fn run_isolated_with(
    profile: &BenchmarkProfile,
    core_cfg: &CoreConfig,
    cache_cfg: PrivateCacheConfig,
    duration: u64,
    seed: u64,
) -> IsolatedResult {
    let mut core = Core::new(core_cfg.clone(), cache_cfg);
    let mut shared = SharedMem::new(SharedMemConfig::default());
    let mut counter = AceCounter::new(core_cfg, CounterKind::Perfect);
    let mut gen = TraceGenerator::new(profile.clone(), seed, 0);
    let (base, span) = gen.address_span();
    let warm = span.min(32 << 20);
    shared.warm_region(base + span - warm, warm);

    for t in 0..duration {
        core.tick(t, &mut gen, &mut shared, &mut counter);
    }

    let abc = counter.abc(duration);
    IsolatedResult {
        name: profile.name.clone(),
        kind: core_cfg.kind,
        ticks: duration,
        instructions: core.committed(),
        abc,
        stack: counter.stack(duration),
        avf: avf(abc, core_cfg.total_bits(), duration),
        ips: core.committed() as f64 / duration as f64,
        abc_rate: abc / duration as f64,
        cpi: *core.cpi_stack(),
    }
}

/// Cached isolated-run results for a set of benchmarks on both core types.
///
/// Building the table simulates each benchmark once per core type; all
/// downstream uses (reference IPS, AVF classification, oracle schedules)
/// read from the cache.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
#[serde(from = "Vec<IsolatedResult>", into = "Vec<IsolatedResult>")]
pub struct ReferenceTable {
    entries: HashMap<(String, CoreKind), IsolatedResult>,
}

impl From<Vec<IsolatedResult>> for ReferenceTable {
    fn from(v: Vec<IsolatedResult>) -> Self {
        let entries = v
            .into_iter()
            .map(|r| ((r.name.clone(), r.kind), r))
            .collect();
        ReferenceTable { entries }
    }
}

impl From<ReferenceTable> for Vec<IsolatedResult> {
    fn from(t: ReferenceTable) -> Self {
        let mut v: Vec<IsolatedResult> = t.entries.into_values().collect();
        v.sort_by(|a, b| {
            (&a.name, a.kind == CoreKind::Small).cmp(&(&b.name, b.kind == CoreKind::Small))
        });
        v
    }
}

impl ReferenceTable {
    /// Build the table for `profiles`, running each for `duration` ticks
    /// per core type. `big`/`small` give the core configurations (allowing
    /// e.g. the half-frequency small core of Section 6.4). The
    /// `profiles × {big, small}` grid is sharded across the job pool;
    /// each run is seeded identically to the serial implementation, so
    /// the table is the same at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if any isolated run panics — the table is the foundation of
    /// every downstream metric, so a partial table is never useful.
    ///
    /// Each isolated run is individually content-addressed (profile,
    /// core config, duration, seed), so rebuilding a table — including
    /// ablation variants that perturb one core parameter — recomputes
    /// only the runs whose inputs actually changed.
    pub fn build(
        profiles: &[BenchmarkProfile],
        big: &CoreConfig,
        small: &CoreConfig,
        duration: u64,
    ) -> Self {
        const SEED: u64 = 1;
        let grid: Vec<(Option<relsim_cache::Key>, (&BenchmarkProfile, &CoreConfig))> = profiles
            .iter()
            .flat_map(|p| [(p, big), (p, small)])
            .map(|(p, cfg)| {
                let key = crate::cache::key_if_enabled("isolated/v1", &(p, cfg, duration, SEED));
                (key, (p, cfg))
            })
            .collect();
        let names: Vec<(String, CoreKind)> = profiles
            .iter()
            .flat_map(|p| [(p.name.clone(), big.kind), (p.name.clone(), small.kind)])
            .collect();
        let results = crate::pool::scatter_map_cached("isolated", grid, |_, (p, cfg)| {
            run_isolated(p, cfg, duration, SEED)
        });
        let mut entries = HashMap::new();
        let mut failed: Vec<String> = Vec::new();
        for (slot, (name, kind)) in results.into_iter().zip(names) {
            match slot {
                Some(r) => {
                    entries.insert((r.name.clone(), r.kind), r);
                }
                None => failed.push(format!("({name}, {kind})")),
            }
        }
        assert!(
            failed.is_empty(),
            "isolated characterization failed for {}",
            failed.join(", ")
        );
        ReferenceTable { entries }
    }

    /// A stable hex digest of the table's full contents, for embedding
    /// in downstream cache keys: any change to any isolated result
    /// changes every key derived from the table.
    pub fn fingerprint(&self) -> String {
        relsim_cache::Key::of(self).hex()
    }

    /// Look up one isolated result.
    pub fn get(&self, name: &str, kind: CoreKind) -> Option<&IsolatedResult> {
        self.entries.get(&(name.to_owned(), kind))
    }

    /// Reference (isolated big-core) instructions per tick for `name`.
    ///
    /// # Panics
    ///
    /// Panics if the benchmark is not in the table.
    pub fn ref_ips(&self, name: &str) -> f64 {
        self.get(name, CoreKind::Big)
            .unwrap_or_else(|| panic!("{name:?} not in reference table"))
            .ips
    }

    /// All benchmark names in the table.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .entries
            .keys()
            .filter(|(_, k)| *k == CoreKind::Big)
            .map(|(n, _)| n.clone())
            .collect();
        names.sort();
        names
    }

    /// Big-core AVFs, sorted ascending (the order of Figure 1).
    pub fn sorted_big_avfs(&self) -> Vec<(String, f64)> {
        let mut v: Vec<(String, f64)> = self
            .entries
            .iter()
            .filter(|((_, k), _)| *k == CoreKind::Big)
            .map(|((n, _), r)| (n.clone(), r.avf))
            .collect();
        v.sort_by(|a, b| a.1.total_cmp(&b.1));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relsim_trace::spec_profile;

    const TICKS: u64 = 150_000;

    #[test]
    fn isolated_run_produces_consistent_measurements() {
        let p = spec_profile("hmmer").unwrap();
        let r = run_isolated(&p, &CoreConfig::big(), TICKS, 1);
        assert_eq!(r.kind, CoreKind::Big);
        assert!(r.instructions > 0);
        assert!(r.abc > 0.0);
        assert!((r.ips - r.instructions as f64 / TICKS as f64).abs() < 1e-12);
        assert!(r.avf > 0.0 && r.avf < 1.0, "AVF {}", r.avf);
        assert!((r.stack.total() - r.abc).abs() < 1e-6);
    }

    #[test]
    fn isolated_runs_are_deterministic() {
        let p = spec_profile("gobmk").unwrap();
        let a = run_isolated(&p, &CoreConfig::big(), TICKS, 7);
        let b = run_isolated(&p, &CoreConfig::big(), TICKS, 7);
        assert_eq!(a.instructions, b.instructions);
        assert_eq!(a.abc, b.abc);
    }

    #[test]
    fn big_core_faster_but_more_vulnerable_than_small() {
        let p = spec_profile("milc").unwrap();
        let big = run_isolated(&p, &CoreConfig::big(), TICKS, 1);
        let small = run_isolated(&p, &CoreConfig::small(), TICKS, 1);
        assert!(big.ips > small.ips, "big core is faster");
        assert!(
            big.abc_rate > small.abc_rate,
            "big core exposes more ACE bits per tick: {} vs {}",
            big.abc_rate,
            small.abc_rate
        );
    }

    #[test]
    fn reference_table_round_trips() {
        let profiles: Vec<_> = ["hmmer", "mcf"]
            .iter()
            .map(|n| spec_profile(n).unwrap())
            .collect();
        let t = ReferenceTable::build(&profiles, &CoreConfig::big(), &CoreConfig::small(), 100_000);
        assert_eq!(t.names(), vec!["hmmer".to_owned(), "mcf".to_owned()]);
        assert!(t.ref_ips("hmmer") > t.ref_ips("mcf"));
        assert!(t.get("mcf", CoreKind::Small).is_some());
        let avfs = t.sorted_big_avfs();
        assert_eq!(avfs.len(), 2);
        assert!(avfs[0].1 <= avfs[1].1);
    }
}
