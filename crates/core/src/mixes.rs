//! Benchmark classification and multiprogram workload construction
//! (Section 5 of the paper).
//!
//! Benchmarks are classified by big-core AVF: the 8 highest are *high
//! sensitivity* (H), the 8 lowest *low sensitivity* (L), the rest *medium*
//! (M). Two-program mixes come in 6 categories (HH, HM, HL, MM, ML, LL);
//! four- and eight-program mixes double the letters (HHHH, HHMM, HHLL,
//! MMMM, MMLL, LLLL and so on). Six workloads are generated per category,
//! benchmarks never repeat within a mix, and every benchmark appears at
//! least once across the set (pools are drawn without replacement and
//! reshuffled on exhaustion).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Sensitivity category of a benchmark (by big-core AVF).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Category {
    /// High sensitivity (highest AVF).
    H,
    /// Medium sensitivity.
    M,
    /// Low sensitivity (lowest AVF).
    L,
}

impl std::fmt::Display for Category {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Category::H => write!(f, "H"),
            Category::M => write!(f, "M"),
            Category::L => write!(f, "L"),
        }
    }
}

/// The H/M/L classification of a benchmark set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Classification {
    /// High-sensitivity benchmarks (top 8 by AVF).
    pub high: Vec<String>,
    /// Medium-sensitivity benchmarks.
    pub medium: Vec<String>,
    /// Low-sensitivity benchmarks (bottom 8 by AVF).
    pub low: Vec<String>,
}

impl Classification {
    /// Classify from `(name, avf)` pairs: top `group` by AVF are H, bottom
    /// `group` are L, the rest M. The paper uses `group = 8`.
    ///
    /// # Panics
    ///
    /// Panics if there are fewer than `2 * group + 1` benchmarks.
    pub fn from_avfs(avfs: &[(String, f64)], group: usize) -> Self {
        assert!(
            avfs.len() > 2 * group,
            "need more than {} benchmarks",
            2 * group
        );
        let mut sorted = avfs.to_vec();
        sorted.sort_by(|a, b| a.1.total_cmp(&b.1));
        let low = sorted[..group].iter().map(|(n, _)| n.clone()).collect();
        let medium = sorted[group..sorted.len() - group]
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        let high = sorted[sorted.len() - group..]
            .iter()
            .map(|(n, _)| n.clone())
            .collect();
        Classification { high, medium, low }
    }

    /// The category of one benchmark, if classified.
    pub fn category_of(&self, name: &str) -> Option<Category> {
        if self.high.iter().any(|n| n == name) {
            Some(Category::H)
        } else if self.medium.iter().any(|n| n == name) {
            Some(Category::M)
        } else if self.low.iter().any(|n| n == name) {
            Some(Category::L)
        } else {
            None
        }
    }

    fn pool(&self, c: Category) -> &[String] {
        match c {
            Category::H => &self.high,
            Category::M => &self.medium,
            Category::L => &self.low,
        }
    }
}

/// One multiprogram workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mix {
    /// Category label, e.g. `"HHLL"`.
    pub category: String,
    /// Benchmark names (no duplicates).
    pub benchmarks: Vec<String>,
}

/// Category patterns for the paper's 2/4/8-program mixes.
pub fn category_patterns(apps: usize) -> Vec<Vec<Category>> {
    use Category::{H, L, M};
    let base: [Vec<Category>; 6] = [
        vec![H, H],
        vec![H, M],
        vec![H, L],
        vec![M, M],
        vec![M, L],
        vec![L, L],
    ];
    let doublings = match apps {
        2 => 1,
        4 => 2,
        8 => 4,
        _ => panic!("unsupported mix size {apps} (use 2, 4 or 8)"),
    };
    base.into_iter()
        .map(|p| {
            p.into_iter()
                .flat_map(|c| std::iter::repeat_n(c, doublings))
                .collect()
        })
        .collect()
}

/// Draw benchmarks by category without replacement, reshuffling a pool
/// when it runs dry — this is what guarantees full benchmark coverage.
struct PoolDrawer<'a> {
    class: &'a Classification,
    rng: SmallRng,
    pools: [Vec<String>; 3],
}

impl<'a> PoolDrawer<'a> {
    fn new(class: &'a Classification, seed: u64) -> Self {
        PoolDrawer {
            class,
            rng: SmallRng::seed_from_u64(seed),
            pools: [Vec::new(), Vec::new(), Vec::new()],
        }
    }

    fn pool_index(c: Category) -> usize {
        match c {
            Category::H => 0,
            Category::M => 1,
            Category::L => 2,
        }
    }

    /// Draw one benchmark of category `c` not already in `exclude`.
    fn draw(&mut self, c: Category, exclude: &[String]) -> String {
        let idx = Self::pool_index(c);
        if self.pools[idx].is_empty() {
            let mut fresh = self.class.pool(c).to_vec();
            fresh.shuffle(&mut self.rng);
            self.pools[idx] = fresh;
        }
        // Find a candidate not already used in this mix.
        if let Some(pos) = self.pools[idx].iter().position(|n| !exclude.contains(n)) {
            return self.pools[idx].remove(pos);
        }
        // Everything left collides with the mix; draw from a fresh copy of
        // the pool restricted to non-excluded benchmarks (coverage of the
        // in-flight pool is unaffected).
        let mut fresh = self.class.pool(c).to_vec();
        fresh.retain(|n| !exclude.contains(n));
        assert!(
            !fresh.is_empty(),
            "category {c} has too few benchmarks for this mix"
        );
        fresh.shuffle(&mut self.rng);
        fresh.remove(0)
    }
}

/// Generate the paper's workload set: `per_category` mixes for each of the
/// six category patterns of `apps`-program workloads.
///
/// # Panics
///
/// Panics if `apps` is not 2, 4 or 8, or a category pool is too small to
/// fill a pattern without duplicates.
pub fn generate_mixes(
    class: &Classification,
    apps: usize,
    per_category: usize,
    seed: u64,
) -> Vec<Mix> {
    let patterns = category_patterns(apps);
    let mut drawer = PoolDrawer::new(class, seed);
    let mut mixes = Vec::new();
    for pattern in &patterns {
        let label: String = pattern.iter().map(|c| c.to_string()).collect();
        for _ in 0..per_category {
            let mut benchmarks: Vec<String> = Vec::with_capacity(apps);
            for &c in pattern {
                let b = drawer.draw(c, &benchmarks);
                benchmarks.push(b);
            }
            mixes.push(Mix {
                category: label.clone(),
                benchmarks,
            });
        }
    }
    mixes
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_classification() -> Classification {
        // 29 synthetic benchmarks with distinct AVFs.
        let avfs: Vec<(String, f64)> = (0..29)
            .map(|i| (format!("b{i:02}"), i as f64 / 29.0))
            .collect();
        Classification::from_avfs(&avfs, 8)
    }

    #[test]
    fn classification_sizes_match_paper() {
        let c = demo_classification();
        assert_eq!(c.high.len(), 8);
        assert_eq!(c.low.len(), 8);
        assert_eq!(c.medium.len(), 13);
        assert_eq!(c.category_of("b00"), Some(Category::L));
        assert_eq!(c.category_of("b28"), Some(Category::H));
        assert_eq!(c.category_of("b14"), Some(Category::M));
        assert_eq!(c.category_of("nope"), None);
    }

    #[test]
    fn patterns_follow_the_paper() {
        let p2 = category_patterns(2);
        assert_eq!(p2.len(), 6);
        assert!(p2.iter().all(|p| p.len() == 2));
        let p4 = category_patterns(4);
        assert!(p4.iter().all(|p| p.len() == 4));
        use Category::{H, L};
        assert!(p4.contains(&vec![H, H, L, L]));
        let p8 = category_patterns(8);
        assert!(p8.iter().all(|p| p.len() == 8));
    }

    #[test]
    #[should_panic(expected = "unsupported mix size")]
    fn bad_mix_size_rejected() {
        let _ = category_patterns(3);
    }

    #[test]
    fn mixes_have_no_duplicates_and_match_categories() {
        let class = demo_classification();
        for apps in [2usize, 4, 8] {
            let mixes = generate_mixes(&class, apps, 6, 42);
            assert_eq!(mixes.len(), 36);
            for m in &mixes {
                assert_eq!(m.benchmarks.len(), apps);
                let mut dedup = m.benchmarks.clone();
                dedup.sort();
                dedup.dedup();
                assert_eq!(dedup.len(), apps, "duplicates in {m:?}");
                // Category letters match the benchmarks drawn.
                for (b, c) in m.benchmarks.iter().zip(m.category.chars()) {
                    let expect = match c {
                        'H' => Category::H,
                        'M' => Category::M,
                        _ => Category::L,
                    };
                    assert_eq!(class.category_of(b), Some(expect));
                }
            }
        }
    }

    #[test]
    fn every_benchmark_appears_at_least_once_in_four_program_set() {
        let class = demo_classification();
        let mixes = generate_mixes(&class, 4, 6, 7);
        let mut used: Vec<String> = mixes.iter().flat_map(|m| m.benchmarks.clone()).collect();
        used.sort();
        used.dedup();
        assert_eq!(used.len(), 29, "all 29 benchmarks used: got {}", used.len());
    }

    #[test]
    fn generation_is_deterministic() {
        let class = demo_classification();
        let a = generate_mixes(&class, 4, 6, 99);
        let b = generate_mixes(&class, 4, 6, 99);
        assert_eq!(a, b);
        let c = generate_mixes(&class, 4, 6, 100);
        assert_ne!(a, c, "different seeds give different sets");
    }
}
